"""Live monitoring: the event store + streaming TAG detection.

A security-operations scenario over the paper's "each access to a
computer by an external network" workload: events are appended to an
:class:`~repro.store.EventStore` as they arrive and simultaneously fed
to a :class:`~repro.automata.streaming.StreamingMatcher` watching for

    failed-login -> failed-login (same hour)
                 -> privileged-access (same calendar day as the first)

Detections fire online, the moment the pattern completes; afterwards
the stored history is snapshotted and mined for what ELSE correlates
with the intrusions.

Run with:  python examples/live_monitoring.py
"""

import random

from repro import TCG, EventStructure, standard_system
from repro.automata import StreamingMatcher, build_tag
from repro.constraints import ComplexEventType
from repro.granularity.gregorian import SECONDS_PER_DAY, SECONDS_PER_HOUR
from repro.io.csvlog import format_timestamp
from repro.mining import EventDiscoveryProblem
from repro.store import EventStore

D, H = SECONDS_PER_DAY, SECONDS_PER_HOUR


def intrusion_pattern(system):
    hour = system.get("hour")
    day = system.get("day")
    return EventStructure(
        ["probe", "probe2", "escalate"],
        {
            ("probe", "probe2"): [TCG(0, 0, hour)],
            ("probe2", "escalate"): [TCG(0, 12, hour)],
            ("probe", "escalate"): [TCG(0, 0, day)],
        },
    )


def simulated_feed(rng, days=20):
    """Yield (etype, time) events in arrival order."""
    events = []
    for day_index in range(days):
        base = day_index * D
        for _ in range(rng.randrange(3, 7)):
            t = base + rng.randrange(0, D)
            etype = rng.choice(
                ["login", "logout", "failed-login", "file-read"]
            )
            events.append((etype, t))
        if day_index % 4 == 2:  # plant an intrusion chain
            t0 = base + rng.randrange(8, 14) * H
            events.append(("failed-login", t0))
            events.append(("failed-login", t0 + 20 * 60))
            events.append(("privileged-access", t0 + 2 * H))
            events.append(("exfiltration", t0 + 3 * H))
    events.sort(key=lambda e: e[1])
    return events


def main():
    system = standard_system()
    structure = intrusion_pattern(system)
    pattern = ComplexEventType(
        structure,
        {
            "probe": "failed-login",
            "probe2": "failed-login",
            "escalate": "privileged-access",
        },
    )
    matcher = StreamingMatcher(
        build_tag(pattern), horizon_seconds=2 * D
    )
    store = EventStore()

    rng = random.Random(2026)
    print("streaming...\n")
    for etype, time in simulated_feed(rng):
        store.append(etype, time)
        for detection in matcher.feed(etype, time):
            print(
                "ALERT %s: two failed logins in one hour, then "
                "privileged access (chain started %s)"
                % (
                    format_timestamp(detection.detected_at),
                    format_timestamp(detection.anchor_time),
                )
            )
    print(
        "\nprocessed %d events, %d live anchors left, %d detections"
        % (
            matcher.events_processed,
            matcher.live_anchors,
            matcher.detections_emitted,
        )
    )

    # Post-hoc: what else tends to follow the privileged access?
    print("\nmining the stored history for follow-ups...")
    hour = system.get("hour")
    followup = EventStructure(
        ["pa", "next"], {("pa", "next"): [TCG(0, 4, hour)]}
    )
    problem = EventDiscoveryProblem(followup, 0.7, "privileged-access")
    outcome = store.mine(problem, system)
    for cet in outcome.solutions:
        print(
            "  %.0f%%  privileged-access -> %s within 4 hours"
            % (100 * outcome.frequencies[cet], cet.assignment["next"])
        )


if __name__ == "__main__":
    main()
