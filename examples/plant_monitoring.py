"""Industrial-plant monitoring: consistency checking before mining.

The paper stresses that inconsistent event structures "should be
discarded even before the data mining process starts" (Section 3.1) and
that consistency checking is NP-hard (Theorem 1) while the approximate
propagation is a sound polynomial filter (Theorem 2).

This example plays a plant engineer authoring malfunction-precursor
patterns:

* one pattern is subtly inconsistent across granularities and is
  rejected by propagation instantly;
* one hides a disjunction (the Figure 1(b) effect) that propagation
  cannot see but the exact checker exposes;
* the remaining sound pattern is mined from a synthetic plant log.

Run with:  python examples/plant_monitoring.py
"""

import random

from repro import TCG, EventSequence, EventStructure, standard_system
from repro.constraints import (
    ComplexEventType,
    check_consistency_exact,
    distance_values,
    propagate,
)
from repro.granularity.gregorian import SECONDS_PER_DAY
from repro.mining import EventDiscoveryProblem, discover, planted_sequence

D = SECONDS_PER_DAY


def main():
    system = standard_system()
    hour = system.get("hour")
    day = system.get("day")
    week = system.get("week")
    month = system.get("month")
    year = system.get("year")

    # -- Pattern A: cross-granularity contradiction ------------------
    # "overheat and shutdown in the same hour, but 2-5 days apart".
    bad = EventStructure(
        ["overheat", "shutdown"],
        {
            ("overheat", "shutdown"): [TCG(0, 0, hour), TCG(2, 5, day)],
        },
    )
    result = propagate(bad, system)
    print("Pattern A consistent?", result.consistent, "(refuted in",
          result.iterations, "propagation iterations)")

    # -- Pattern B: a hidden disjunction ------------------------------
    # Both maintenance audits happen in the first month of a year, at
    # most a year of months apart: their true distance is 0 or 12.
    audit = EventStructure(
        ["a1", "marker1", "a2", "marker2"],
        {
            ("a1", "marker1"): [TCG(11, 11, month), TCG(0, 0, year)],
            ("a1", "a2"): [TCG(0, 12, month)],
            ("a2", "marker2"): [TCG(11, 11, month), TCG(0, 0, year)],
        },
    )
    print("\nPattern B (audit gadget):")
    print("  propagation keeps the convex interval:",
          propagate(audit, system).interval("a1", "a2", "month"))
    exact = distance_values(
        audit, system, "a1", "a2", month, window_seconds=3 * 366 * D
    )
    print("  exact realisable month distances   :", exact)
    report = check_consistency_exact(audit, system, window_seconds=3 * 366 * D)
    print("  exact consistency:", report.consistent,
          "(%d search nodes)" % report.nodes_explored)

    # -- Pattern C: mine malfunction precursors -----------------------
    # overheat -> pressure-drop within 12 hours, malfunction the next
    # calendar day, all inside one week.
    precursor = EventStructure(
        ["overheat", "drop", "malfunction"],
        {
            ("overheat", "drop"): [TCG(0, 12, hour)],
            ("overheat", "malfunction"): [TCG(1, 1, day), TCG(0, 0, week)],
        },
    )
    target = ComplexEventType(
        precursor,
        {
            "overheat": "sensor-overheat",
            "drop": "pressure-drop",
            "malfunction": "malfunction",
        },
    )
    rng = random.Random(7)
    sequence, planted = planted_sequence(
        target,
        system,
        n_roots=25,
        confidence=0.8,
        rng=rng,
        noise_types=["valve-open", "pressure-drop", "shutdown"],
        noise_events_per_root=6,
        root_spacing_seconds=9 * D,
    )
    print(
        "\nPattern C: mining %d events (%d precursor chains planted)"
        % (len(sequence), planted)
    )
    problem = EventDiscoveryProblem(
        precursor,
        min_confidence=0.6,
        reference_type="sensor-overheat",
        candidates={"malfunction": frozenset(["malfunction"])},
    )
    outcome = discover(problem, sequence, system)
    for cet in outcome.solutions:
        print(
            "  %.0f%%  overheat -> %s (<=12h) with %s next day, same week"
            % (
                100 * outcome.frequencies[cet],
                cet.assignment["drop"],
                cet.assignment["malfunction"],
            )
        )
    print(
        "  pipeline: %d -> %d events, %d -> %d anchors, %d candidate "
        "patterns scanned"
        % (
            outcome.stats.sequence_events_before,
            outcome.stats.sequence_events_after,
            outcome.stats.roots_before,
            outcome.stats.roots_after,
            outcome.candidates_evaluated,
        )
    )


if __name__ == "__main__":
    main()
