"""X8 - the MTV95 contrast: granularity constraints vs fixed windows.

The paper's introduction argues that single-window episode patterns
(Mannila-Toivonen-Verkamo style) cannot express relationships like
"within the same day".  This bench quantifies that: a workload of
planted same-day pairs plus cross-midnight decoys is mined by

* the TCG pattern ``[0,0]day`` (compiled to a TAG), and
* the best possible fixed-seconds window baseline,

and precision/recall against the planted ground truth is reported.
The TCG matcher is exact; *every* fixed window either loses recall or
admits the decoys.
"""

import random

import pytest

from repro.constraints import TCG, EventStructure
from repro.core import compile_pattern
from repro.granularity.gregorian import SECONDS_PER_DAY, SECONDS_PER_HOUR
from repro.mining import Event, EventSequence, SerialEpisode, occurs_within

D, H = SECONDS_PER_DAY, SECONDS_PER_HOUR


def same_day_workload(n_days, rng):
    """Per day: one anchor; half are true same-day pairs, half are
    cross-midnight decoys (closer in seconds but on different days)."""
    events = []
    truth = {}  # anchor time -> is a true same-day pair
    for day_index in range(n_days):
        base = day_index * D
        if rng.random() < 0.5:
            anchor = base + 8 * H
            events.append(Event("alarm", anchor))
            events.append(Event("reset", anchor + 12 * H))  # same day
            truth[anchor] = True
        else:
            anchor = base + 23 * H
            events.append(Event("alarm", anchor))
            events.append(Event("reset", anchor + 5 * H))  # next day!
            truth[anchor] = False
    return EventSequence(events), truth


def evaluate(predict, sequence, truth):
    """Precision/recall of a per-anchor predicate vs planted truth."""
    from repro.mining import evaluate_anchors

    by_time = {
        sequence[index].time: index
        for index in sequence.occurrence_indices("alarm")
    }
    scored = evaluate_anchors(
        truth, lambda anchor_time: predict(by_time[anchor_time])
    )
    return scored.precision, scored.recall


@pytest.fixture(scope="module")
def workload():
    return same_day_workload(120, random.Random(88))


def test_x8_tcg_pattern_is_exact(benchmark, system, workload):
    sequence, truth = workload
    structure = EventStructure(
        ["A", "B"], {("A", "B"): [TCG(0, 0, system.get("day"))]}
    )
    matcher = compile_pattern(structure, {"A": "alarm", "B": "reset"}, system)

    def run():
        return evaluate(
            lambda index: matcher.occurs_at(sequence, index), sequence, truth
        )

    precision, recall = benchmark.pedantic(run, rounds=2, iterations=1)
    print("\nX8 TCG [0,0]day: precision %.2f recall %.2f" % (precision, recall))
    assert precision == 1.0
    assert recall == 1.0


@pytest.mark.parametrize("window_hours", [5, 12, 18, 24])
def test_x8_fixed_window_baseline(benchmark, workload, window_hours):
    sequence, truth = workload
    episode = SerialEpisode(("alarm", "reset"))
    window = window_hours * H

    def run():
        return evaluate(
            lambda index: occurs_within(sequence, episode, index, window),
            sequence,
            truth,
        )

    precision, recall = benchmark.pedantic(run, rounds=2, iterations=1)
    print(
        "\nX8 window %2dh: precision %.2f recall %.2f"
        % (window_hours, precision, recall)
    )
    # The paper's impossibility argument: any window with full recall
    # (>= 12h, to catch the 12h same-day pairs) admits every 5h
    # cross-midnight decoy, and any window keeping out the decoys
    # (< 5h) misses every true pair.
    if recall == 1.0:
        assert precision < 1.0
    if precision == 1.0:
        assert recall == 0.0
