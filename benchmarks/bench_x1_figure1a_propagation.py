"""X1 - Figure 1(a) + the Section 5.1 worked numbers.

Regenerates the derived constraint set Gamma'(X0, X3) of the stock
event structure under both conversion strategies and benchmarks the
approximate propagation (Theorem 2's polynomial algorithm).

Paper-reported: Gamma'(X0, X3) contains [0,1]week and [1,175]hour.
Measured (direct conversions): [0,2]week and [1,199]hour - same shape,
slightly wider because the abstract's table conventions are not fully
specified (see EXPERIMENTS.md and the DESIGN.md errata note).
"""

from repro.constraints import propagate
from repro.granularity import standard_system


def test_x1_derived_constraints_direct(benchmark, figure_1a, system):
    result = benchmark(propagate, figure_1a, system)
    assert result.consistent
    derived = result.intervals("X0", "X3")
    print("\nX1 Gamma'(X0,X3) [direct]: %s" % derived)
    print("   paper reports: week [0,1], hour [1,175]")
    assert derived["hour"] == (1, 199)
    assert derived["week"] == (0, 2)
    # The shape assertions that must survive any sound convention:
    assert derived["hour"][0] >= 1  # the b-day step forces >= 1 hour
    assert derived["hour"][1] <= 24 * 14  # bounded by ~2 weeks
    assert derived["week"][1] <= 2


def test_x1_six_day_week_reproduces_paper_exactly(benchmark):
    """The fidelity finding: under a Mon-Sat six-day business week the
    paper's Gamma'(X0,X3) hour bound [1,175] is reproduced EXACTLY, and
    the quoted [0,1]week is the true hull (verified by exact
    enumeration in the test suite; pairwise propagation soundly derives
    the convex [0,2])."""
    from repro.constraints import TCG, EventStructure

    system = standard_system(workdays=(0, 1, 2, 3, 4, 5))
    bday = system.get("b-day")
    hour = system.get("hour")
    week = system.get("week")
    structure = EventStructure(
        ["X0", "X1", "X2", "X3"],
        {
            ("X0", "X1"): [TCG(1, 1, bday)],
            ("X1", "X3"): [TCG(0, 1, week)],
            ("X0", "X2"): [TCG(0, 5, bday)],
            ("X2", "X3"): [TCG(0, 8, hour)],
        },
    )
    result = benchmark(propagate, structure, system)
    derived = result.intervals("X0", "X3")
    print(
        "\nX1 [six-day b-week] Gamma'(X0,X3): %s  (paper: hour [1,175], "
        "week [0,1])" % derived
    )
    assert derived["hour"] == (1, 175)  # exact match with the paper
    assert derived["week"] == (0, 2)  # sound hull; true hull is {0,1}


def test_x1_exact_week_hull_is_paper_value(benchmark):
    """Exact enumeration confirms the abstract's [0,1]week is the true
    minimal hull (pairwise propagation soundly stops at [0,2])."""
    from repro.constraints import TCG, EventStructure, distance_values

    system = standard_system(workdays=(0, 1, 2, 3, 4, 5))
    structure = EventStructure(
        ["X0", "X1", "X2", "X3"],
        {
            ("X0", "X1"): [TCG(1, 1, system.get("b-day"))],
            ("X1", "X3"): [TCG(0, 1, system.get("week"))],
            ("X0", "X2"): [TCG(0, 5, system.get("b-day"))],
            ("X2", "X3"): [TCG(0, 8, system.get("hour"))],
        },
    )
    values = benchmark.pedantic(
        distance_values,
        args=(structure, system, "X0", "X3", system.get("week")),
        kwargs={"window_seconds": 30 * 86400, "resolution": 3600},
        rounds=1,
        iterations=1,
    )
    print("\nX1 exact realisable week distances: %s (paper: [0,1])" % values)
    assert values == [0, 1]


def test_x1_derived_constraints_figure3(benchmark, system_fig3):
    from repro.constraints import TCG, EventStructure

    bday = system_fig3.get("b-day")
    hour = system_fig3.get("hour")
    week = system_fig3.get("week")
    structure = EventStructure(
        ["X0", "X1", "X2", "X3"],
        {
            ("X0", "X1"): [TCG(1, 1, bday)],
            ("X1", "X3"): [TCG(0, 1, week)],
            ("X0", "X2"): [TCG(0, 5, bday)],
            ("X2", "X3"): [TCG(0, 8, hour)],
        },
    )
    result = benchmark(propagate, structure, system_fig3)
    assert result.consistent
    derived = result.intervals("X0", "X3")
    print("\nX1 Gamma'(X0,X3) [figure3 tables]: %s" % derived)
    # The Figure 3 table method is sound but looser than direct.
    assert derived["hour"][0] <= 1
    assert derived["hour"][1] >= 199


def test_x1_all_pairs_table(benchmark, figure_1a, system):
    """The full derived-constraint table for the structure."""

    def run():
        return propagate(figure_1a, system)

    result = benchmark(run)
    print("\nX1 derived constraints (direct conversions):")
    variables = figure_1a.variables
    for x in variables:
        for y in variables:
            if x == y or not figure_1a.has_path(x, y):
                continue
            print(
                "   %s -> %s : %s"
                % (
                    x,
                    y,
                    " & ".join(map(str, result.derived_tcgs(x, y))),
                )
            )
    assert result.iterations <= 6
