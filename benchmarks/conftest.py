"""Shared fixtures for the experiment benchmarks (X1-X10).

Each ``bench_x*.py`` regenerates one artifact of the paper (figure,
worked number, or theorem-level claim); see DESIGN.md's experiment
index and EXPERIMENTS.md for the paper-vs-measured record.
"""

import random

import pytest

from repro.constraints import TCG, ComplexEventType, EventStructure
from repro.granularity import standard_system
from repro.mining import planted_sequence


@pytest.fixture(scope="session")
def system():
    return standard_system()


@pytest.fixture(scope="session")
def system_fig3():
    return standard_system(conversion_mode="figure3")


@pytest.fixture(scope="session")
def figure_1a(system):
    bday = system.get("b-day")
    hour = system.get("hour")
    week = system.get("week")
    return EventStructure(
        ["X0", "X1", "X2", "X3"],
        {
            ("X0", "X1"): [TCG(1, 1, bday)],
            ("X1", "X3"): [TCG(0, 1, week)],
            ("X0", "X2"): [TCG(0, 5, bday)],
            ("X2", "X3"): [TCG(0, 8, hour)],
        },
    )


@pytest.fixture(scope="session")
def figure_1b(system):
    month = system.get("month")
    year = system.get("year")
    return EventStructure(
        ["X0", "X1", "X2", "X3"],
        {
            ("X0", "X1"): [TCG(11, 11, month), TCG(0, 0, year)],
            ("X0", "X2"): [TCG(0, 12, month)],
            ("X2", "X3"): [TCG(11, 11, month), TCG(0, 0, year)],
        },
    )


@pytest.fixture(scope="session")
def example1_cet(figure_1a):
    return ComplexEventType(
        figure_1a,
        {
            "X0": "IBM-rise",
            "X1": "IBM-earnings-report",
            "X2": "HP-rise",
            "X3": "IBM-fall",
        },
    )


@pytest.fixture(scope="session")
def stock_workload(system, example1_cet):
    """The planted stock feed used by X7/X9/X10 (40 anchors, 90%)."""
    rng = random.Random(1996)
    sequence, planted = planted_sequence(
        example1_cet,
        system,
        n_roots=40,
        confidence=0.9,
        rng=rng,
        noise_types=["HP-fall", "DEC-rise", "DEC-fall", "SUN-rise"],
        noise_events_per_root=8,
    )
    return sequence, planted
