"""X9 - Examples 1 and 2 end to end.

Regenerates the paper's running example as a complete mining run: the
Figure 1(a) structure, the Example 2 discovery problem
``(S, 0.8, IBM-rise, psi)`` with ``psi(X3) = {IBM-fall}``, on a
synthetic feed with the Example 1 complex event planted at 90%
confidence among distractor types.  The expected solution is the
Example 1 assignment (earnings report / HP rise), recovered with its
frequency.
"""

import pytest

from repro.mining import EventDiscoveryProblem, discover


def test_x9_example2_discovery(benchmark, system, figure_1a, example1_cet, stock_workload):
    sequence, planted = stock_workload
    problem = EventDiscoveryProblem(
        figure_1a,
        min_confidence=0.8,
        reference_type="IBM-rise",
        candidates={"X3": frozenset(["IBM-fall"])},
    )
    outcome = benchmark.pedantic(
        discover, args=(problem, sequence, system), rounds=1, iterations=1
    )
    assignments = outcome.solution_assignments()
    print(
        "\nX9 solutions at alpha=0.8 (planted %d/40): %s"
        % (planted, assignments)
    )
    assert dict(example1_cet.assignment) in assignments
    (solution,) = outcome.solutions
    frequency = outcome.frequencies[solution]
    print("X9 recovered frequency: %.2f (planted rate %.2f)" % (
        frequency, planted / 40))
    assert frequency >= planted / 40


def test_x9_free_variables_variant(benchmark, system, figure_1a, example1_cet, stock_workload):
    """Example 2's variation with psi empty: all non-root variables
    free.  The planted pattern must still surface."""
    sequence, _ = stock_workload
    problem = EventDiscoveryProblem(
        figure_1a, min_confidence=0.8, reference_type="IBM-rise"
    )
    outcome = benchmark.pedantic(
        discover, args=(problem, sequence, system), rounds=1, iterations=1
    )
    print(
        "\nX9 (psi = free) solutions: %s" % outcome.solution_assignments()
    )
    assert dict(example1_cet.assignment) in outcome.solution_assignments()


def test_x9_raising_threshold_empties_solutions(benchmark, system, figure_1a, stock_workload):
    sequence, _ = stock_workload
    problem = EventDiscoveryProblem(
        figure_1a, min_confidence=0.99, reference_type="IBM-rise"
    )
    outcome = benchmark.pedantic(
        discover, args=(problem, sequence, system), rounds=1, iterations=1
    )
    assert outcome.solutions == []
