"""X2 - Figure 1(b): the disjunction hidden in multiple granularities.

Regenerates the paper's argument that the month/year gadget forces the
X0..X2 distance to be *either 0 or 12 months*: sound propagation keeps
the convex hull [0, 12] (incompleteness, as Theorem 1 predicts), while
the exact exponential analysis recovers exactly {0, 12}.
"""

from repro.constraints import (
    check_consistency_exact,
    distance_values,
    propagate,
)
from repro.granularity.gregorian import SECONDS_PER_DAY

THREE_YEARS = 3 * 366 * SECONDS_PER_DAY


def test_x2_propagation_keeps_convex_hull(benchmark, figure_1b, system):
    result = benchmark(propagate, figure_1b, system)
    assert result.consistent  # sound: must not refute a satisfiable gadget
    hull = result.interval("X0", "X2", "month")
    print("\nX2 propagation X0->X2 month interval: %s (paper: [0, 12])" % (hull,))
    assert hull == (0, 12)


def test_x2_exact_distances_are_0_or_12(benchmark, figure_1b, system):
    values = benchmark.pedantic(
        distance_values,
        args=(figure_1b, system, "X0", "X2", "month", THREE_YEARS),
        rounds=3,
        iterations=1,
    )
    print("\nX2 exact realisable month distances: %s (paper: {0, 12})" % values)
    assert values == [0, 12]


def test_x2_exact_consistency_with_witness(benchmark, figure_1b, system):
    report = benchmark.pedantic(
        check_consistency_exact,
        args=(figure_1b, system),
        kwargs={"window_seconds": THREE_YEARS},
        rounds=3,
        iterations=1,
    )
    assert report.completed and report.consistent
    assert figure_1b.is_satisfied_by(report.witness)
    month = system.get("month")
    for variable in ("X0", "X2"):
        # Both events land in a January (the first month of a year).
        assert month.tick_of(report.witness[variable]) % 12 == 0
    print(
        "\nX2 witness months: %s"
        % {
            v: month.tick_of(t)
            for v, t in sorted(report.witness.items())
        }
    )
