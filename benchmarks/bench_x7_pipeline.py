"""X7 - Section 5: naive vs optimised event discovery.

Regenerates the paper's central systems claim: steps 1-4 (consistency
gate, sequence reduction, reference reduction, candidate screening)
"make the mining process effective" without changing the solutions.
Reports, per step, how much work was eliminated, and benchmarks both
solvers end to end on the planted stock workload.
"""

import pytest

from repro.mining import EventDiscoveryProblem, discover, naive_discover


@pytest.fixture(scope="module")
def problem(figure_1a):
    return EventDiscoveryProblem(
        figure_1a,
        min_confidence=0.8,
        reference_type="IBM-rise",
        candidates={"X3": frozenset(["IBM-fall"])},
    )


def test_x7_naive_discovery(benchmark, system, problem, stock_workload):
    sequence, _ = stock_workload
    outcome = benchmark.pedantic(
        naive_discover, args=(problem, sequence, system), rounds=1, iterations=1
    )
    print(
        "\nX7 naive: %d candidates, %d automaton starts, %d solutions"
        % (
            outcome.candidates_evaluated,
            outcome.automaton_starts,
            len(outcome.solutions),
        )
    )
    assert len(outcome.solutions) == 1


def test_x7_optimised_discovery(benchmark, system, problem, stock_workload):
    sequence, _ = stock_workload
    outcome = benchmark.pedantic(
        discover, args=(problem, sequence, system), rounds=1, iterations=1
    )
    stats = outcome.stats
    print(
        "\nX7 optimised: sequence %d->%d, anchors %d->%d, candidates "
        "%s->%s, %d TAG candidates, %d automaton starts"
        % (
            stats.sequence_events_before,
            stats.sequence_events_after,
            stats.roots_before,
            stats.roots_after,
            stats.candidates_before,
            stats.candidates_after_depth1,
            outcome.candidates_evaluated,
            outcome.automaton_starts,
        )
    )
    assert len(outcome.solutions) == 1


def test_x7_equivalence_and_reduction_factors(
    benchmark, system, problem, stock_workload
):
    """The headline table: identical solutions, reduced work."""
    sequence, _ = stock_workload

    def both():
        return (
            naive_discover(problem, sequence, system),
            discover(problem, sequence, system),
        )

    naive, optimised = benchmark.pedantic(both, rounds=1, iterations=1)
    assert sorted(map(str, naive.solution_assignments())) == sorted(
        map(str, optimised.solution_assignments())
    )
    for cet, frequency in optimised.frequencies.items():
        assert naive.frequencies[cet] == pytest.approx(frequency)
    candidate_factor = naive.candidates_evaluated / max(
        1, optimised.candidates_evaluated
    )
    start_factor = naive.automaton_starts / max(1, optimised.automaton_starts)
    print(
        "\nX7 reduction: candidates %dx, automaton starts %dx"
        % (candidate_factor, start_factor)
    )
    assert candidate_factor >= 10
    assert start_factor >= 10


@pytest.mark.parametrize("confidence", [0.5, 0.7, 0.9])
def test_x7_confidence_sweep(benchmark, system, figure_1a, stock_workload, confidence):
    """Lower thresholds keep more candidates alive after screening."""
    sequence, _ = stock_workload
    problem = EventDiscoveryProblem(
        figure_1a,
        min_confidence=confidence,
        reference_type="IBM-rise",
        candidates={"X3": frozenset(["IBM-fall"])},
    )
    outcome = benchmark.pedantic(
        discover, args=(problem, sequence, system), rounds=1, iterations=1
    )
    print(
        "\nX7 alpha=%.1f: %d candidates scanned, %d solutions"
        % (confidence, outcome.candidates_evaluated, len(outcome.solutions))
    )
