"""X3 - Theorem 1: NP-hardness via the SUBSET SUM reduction.

Regenerates the reduction empirically: gadget consistency decides
(CRT-compatible) SUBSET SUM, decoded witnesses are valid subsets, and
the exact checker's node counts exhibit the exponential blow-up on
unsatisfiable instances that the theorem predicts - while the DP
oracle and the polynomial propagation stay cheap.

Includes the reproduction's errata case: (2, 3, 4) target 9 is subset-
sum-solvable but the published gadget is inconsistent (see DESIGN.md).
"""

import pytest

from repro.constraints import propagate
from repro.hardness import (
    SubsetSumInstance,
    crt_compatible_subset_exists,
    decide_via_reduction,
    has_subset_sum,
    reduction_structure,
)

#: Pairwise-coprime instance sweep: (numbers, target, solvable).
COPRIME_INSTANCES = [
    ((3,), 3, True),
    ((3,), 2, False),
    ((3, 5), 8, True),
    ((3, 5), 7, False),
    ((3, 5, 7), 12, True),
    ((3, 5, 7), 11, False),
]


@pytest.mark.parametrize("numbers,target,solvable", COPRIME_INSTANCES)
def test_x3_reduction_decides_coprime_instances(
    benchmark, system, numbers, target, solvable
):
    instance = SubsetSumInstance(numbers, target)
    outcome = benchmark.pedantic(
        decide_via_reduction, args=(instance, system), rounds=1, iterations=1
    )
    print(
        "\nX3 %s target %d: consistent=%s nodes=%d (oracle: %s)"
        % (numbers, target, outcome.consistent, outcome.nodes_explored, solvable)
    )
    assert outcome.completed
    assert outcome.consistent == solvable == has_subset_sum(instance)
    if outcome.consistent:
        assert sum(numbers[i] for i in outcome.witness_subset) == target


def test_x3_unsat_explores_more_nodes(benchmark, system):
    """The exponential signature: refutation costs far more search."""
    sat = decide_via_reduction(SubsetSumInstance((3, 5, 7), 12), system)
    unsat = benchmark.pedantic(
        decide_via_reduction,
        args=(SubsetSumInstance((3, 5, 7), 11), system),
        rounds=1,
        iterations=1,
    )
    print(
        "\nX3 nodes: satisfiable=%d unsatisfiable=%d (ratio %.0fx)"
        % (
            sat.nodes_explored,
            unsat.nodes_explored,
            unsat.nodes_explored / max(1, sat.nodes_explored),
        )
    )
    assert unsat.nodes_explored > sat.nodes_explored


def test_x3_exponential_scaling_curve(benchmark, system):
    """Refutation nodes vs instance size k - the Theorem 1 curve."""

    def run():
        rows = []
        for numbers, target in [((3,), 2), ((3, 5), 7), ((3, 5, 7), 11)]:
            outcome = decide_via_reduction(
                SubsetSumInstance(numbers, target), system
            )
            assert outcome.completed and not outcome.consistent
            rows.append((len(numbers), outcome.nodes_explored))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nX3 refutation nodes by k: %s" % rows)
    nodes = [n for _, n in rows]
    # Superlinear growth: each step multiplies the work severalfold.
    assert nodes[1] > 2 * nodes[0] or nodes[2] > 2 * nodes[1]
    assert nodes[2] > 10 * nodes[0]


def test_x3_propagation_is_cheap_on_gadgets(benchmark, system):
    """Theorem 2's polynomial filter cannot decide these instances but
    runs orders of magnitude faster than the exact search."""
    structure = reduction_structure(SubsetSumInstance((3, 5, 7), 11), system)
    result = benchmark(propagate, structure, system)
    # Approximate propagation does not refute the (unsatisfiable)
    # gadget: completeness would contradict Theorem 1.
    assert result.consistent


def test_x3_errata_counterexample(benchmark, system):
    """(2,3,4)/9: solvable SUBSET SUM, inconsistent gadget - the
    completeness gap this reproduction found in the published proof."""
    instance = SubsetSumInstance((2, 3, 4), 9)
    outcome = benchmark.pedantic(
        decide_via_reduction, args=(instance, system), rounds=1, iterations=1
    )
    assert has_subset_sum(instance)
    assert not crt_compatible_subset_exists(instance)
    assert outcome.completed and not outcome.consistent
    print(
        "\nX3 errata: (2,3,4)/9 subset-sum-solvable=True, gadget "
        "consistent=False (CRT-incompatible residues)"
    )
