"""X6 - Theorem 4: TAG pattern-matching complexity.

The theorem bounds matching by
``O(|sigma| * (|S| * min(|sigma|, (|V| K)^p))^2)``.
This bench regenerates the empirically relevant structure of that
bound: near-linear scaling in the sequence length, growth with the
constraint range K, and the configuration-set cap
``min(|sigma|, (|V| K)^p)``.
"""

import random

import pytest

from repro.automata import TagMatcher, build_tag
from repro.constraints import TCG, ComplexEventType, EventStructure
from repro.mining.events import Event, EventSequence


def chain_cet(system, k_hours):
    hour = system.get("hour")
    structure = EventStructure(
        ["A", "B", "C"],
        {
            ("A", "B"): [TCG(0, k_hours, hour)],
            ("B", "C"): [TCG(0, k_hours, hour)],
        },
    )
    return ComplexEventType(structure, {"A": "a", "B": "b", "C": "c"})


def noisy_sequence(length, rng, spacing=600):
    types = ["a", "b", "c", "n1", "n2"]
    return EventSequence(
        Event(rng.choice(types), i * spacing + rng.randrange(0, 60))
        for i in range(length)
    )


@pytest.mark.parametrize("length", [500, 1000, 2000, 4000])
def test_x6_scaling_with_sequence_length(benchmark, system, length):
    rng = random.Random(length)
    cet = chain_cet(system, k_hours=6)
    matcher = TagMatcher(build_tag(cet))
    sequence = noisy_sequence(length, rng)

    count = benchmark.pedantic(
        matcher.count_occurrences, args=(sequence,), rounds=2, iterations=1
    )
    print("\nX6 |sigma|=%d -> %d matched anchors" % (length, count))


@pytest.mark.parametrize("k_hours", [2, 8, 32])
def test_x6_scaling_with_range_k(benchmark, system, k_hours):
    """Larger K admits more alive configurations per anchor."""
    rng = random.Random(k_hours)
    cet = chain_cet(system, k_hours=k_hours)
    matcher = TagMatcher(build_tag(cet))
    sequence = noisy_sequence(1500, rng)

    def run():
        peaks = []
        for index in sequence.occurrence_indices("a")[:40]:
            outcome = matcher.match_from(sequence, index)
            peaks.append(outcome.peak_configurations)
        return max(peaks) if peaks else 0

    peak = benchmark.pedantic(run, rounds=2, iterations=1)
    print("\nX6 K=%dh -> peak configurations %d" % (k_hours, peak))


def test_x6_configuration_bound(benchmark, system):
    """Peak configurations never exceed min(|sigma|, (|V| K)^p) + 1."""
    rng = random.Random(9)
    cet = chain_cet(system, k_hours=4)
    build = build_tag(cet)
    matcher = TagMatcher(build)
    sequence = noisy_sequence(800, rng)
    v = max(len(chain) for chain in build.chains)
    k = 4 + 1  # max range in the constraints (hours), inclusive
    p = len(build.chains)
    bound = min(len(sequence), (v * k) ** p) + 1

    def run():
        worst = 0
        for index in sequence.occurrence_indices("a"):
            outcome = matcher.match_from(sequence, index)
            worst = max(worst, outcome.peak_configurations)
        return worst

    worst = benchmark.pedantic(run, rounds=2, iterations=1)
    print(
        "\nX6 observed peak %d vs Theorem 4 bound min(|sigma|, (|V|K)^p)"
        " + 1 = %d" % (worst, bound)
    )
    assert worst <= bound


def test_x6_horizon_prunes_scanning(benchmark, system):
    """A propagation-derived horizon keeps scans short per anchor."""
    rng = random.Random(10)
    cet = chain_cet(system, k_hours=4)
    unbounded = TagMatcher(build_tag(cet))
    bounded = TagMatcher(build_tag(cet), horizon_seconds=8 * 3600)
    sequence = noisy_sequence(3000, rng)
    anchors = sequence.occurrence_indices("a")

    def run_bounded():
        return [bounded.match_from(sequence, i).events_scanned for i in anchors]

    scanned_bounded = benchmark.pedantic(run_bounded, rounds=2, iterations=1)
    scanned_unbounded = [
        unbounded.match_from(sequence, i).events_scanned for i in anchors
    ]
    for b_index, anchor in enumerate(anchors):
        assert bounded.occurs_at(sequence, anchor) == unbounded.occurs_at(
            sequence, anchor
        )
    print(
        "\nX6 mean events scanned per anchor: bounded %.0f vs "
        "unbounded %.0f"
        % (
            sum(scanned_bounded) / len(scanned_bounded),
            sum(scanned_unbounded) / len(scanned_unbounded),
        )
    )
    assert sum(scanned_bounded) <= sum(scanned_unbounded)
