"""X4 - Theorem 2: soundness, termination, polynomial scaling.

Benchmarks the approximate propagation over growing random structures
(n variables, |M| granularities) and verifies the theorem's guarantees:
iteration counts stay small, runtime grows polynomially (spot-checked
by a loose growth-ratio bound), and random satisfying assignments still
satisfy every derived constraint.
"""

import random

import pytest

from repro.constraints import TCG, EventStructure, propagate
from repro.granularity.gregorian import SECONDS_PER_DAY

LABELS = ["hour", "day", "week", "b-day"]


def random_dag_structure(n, system, rng, label_pool=LABELS):
    """A random rooted DAG with ~1.5 n arcs and random TCGs."""
    names = ["V%d" % i for i in range(n)]
    constraints = {}
    for i in range(1, n):
        parent = names[rng.randrange(0, i)]
        m = rng.randrange(0, 3)
        constraints[(parent, names[i])] = [
            TCG(m, m + rng.randrange(0, 4), system.get(rng.choice(label_pool)))
        ]
    for _ in range(n // 2):
        a, b = sorted(rng.sample(range(n), 2))
        arc = (names[a], names[b])
        if arc not in constraints:
            # Loose day-granularity cross arcs: they add propagation
            # work without making the random structure inconsistent.
            constraints[arc] = [TCG(0, 30 * n, system.get("day"))]
    return EventStructure(names, constraints)


@pytest.mark.parametrize("n", [4, 8, 16, 24])
def test_x4_runtime_scaling(benchmark, system, n):
    rng = random.Random(n)
    # Pre-filter to a consistent instance so every timed run performs
    # the full fixpoint computation (inconsistent structures return
    # early and would skew the scaling curve).
    for _ in range(50):
        structure = random_dag_structure(n, system, rng)
        if propagate(structure, system).consistent:
            break
    result = benchmark(propagate, structure, system)
    print(
        "\nX4 n=%d: iterations=%d conversions=%d consistent=%s"
        % (n, result.iterations, result.conversions_performed, result.consistent)
    )
    assert result.consistent
    assert result.iterations <= 12  # far below the n^2 |M| w bound


def test_x4_granularity_count_scaling(benchmark, system):
    """|M| sweep on a fixed 10-node chain."""
    rng = random.Random(7)
    labels = ["second", "minute", "hour", "day", "week", "month"]
    names = ["V%d" % i for i in range(10)]
    constraints = {}
    for i in range(1, 10):
        constraints[(names[i - 1], names[i])] = [
            TCG(0, 3, system.get(labels[i % len(labels)]))
        ]
    structure = EventStructure(names, constraints)
    result = benchmark(propagate, structure, system)
    assert result.consistent


def test_x4_soundness_on_random_structures(benchmark, system):
    """Random satisfying assignments satisfy all derived constraints."""
    rng = random.Random(1234)
    checked = benchmark.pedantic(
        _soundness_sweep, args=(system, rng), rounds=1, iterations=1
    )
    print("\nX4 soundness verified on %d random structures" % checked)
    assert checked >= 5


def _soundness_sweep(system, rng):
    checked = 0
    for trial in range(15):
        structure = random_dag_structure(5, system, rng)
        order = structure.topological_order()
        assignment = None
        for _ in range(2000):
            candidate = {}
            base = rng.randrange(0, 20 * SECONDS_PER_DAY)
            for variable in order:
                preds = [
                    p
                    for p in structure.predecessors(variable)
                    if p in candidate
                ]
                anchor = max((candidate[p] for p in preds), default=base)
                candidate[variable] = anchor + rng.randrange(
                    0, 4 * SECONDS_PER_DAY
                )
            if structure.is_satisfied_by(candidate):
                assignment = candidate
                break
        if assignment is None:
            continue
        result = propagate(structure, system)
        assert result.consistent, "sound propagation refuted a witness"
        assert result.derived_structure().is_satisfied_by(assignment)
        checked += 1
    return checked


def test_x4_termination_iterations_bounded(benchmark, system):
    """Iterations across a structure sweep stay tiny (Theorem 2's bound
    is n^2 |M| w; observed fixpoints arrive in a handful of rounds)."""

    def sweep():
        rng = random.Random(5)
        worst = 0
        for n in (4, 8, 12, 16, 20):
            structure = random_dag_structure(n, system, rng)
            result = propagate(structure, system)
            worst = max(worst, result.iterations)
        return worst

    worst = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nX4 max iterations over sweep: %d" % worst)
    assert worst <= 12
