"""X5 - Figure 2 / Theorem 3: TAG construction from complex event types.

Regenerates the TAG of the paper's Figure 2 (the Example 1 automaton:
two chains, 6 reachable product states, chain-local granularity clocks,
ANY self-loops) and verifies the polynomial-time construction claim on
a structure-size sweep.
"""

import pytest

from repro.automata import build_tag
from repro.constraints import TCG, ComplexEventType, EventStructure


def test_x5_figure2_automaton(benchmark, example1_cet):
    build = benchmark(build_tag, example1_cet)
    tag = build.tag
    print(
        "\nX5 Figure 2 TAG: %d states, %d transitions, clocks %s, "
        "%d chains"
        % (
            len(tag.states),
            len(tag.transitions),
            sorted(tag.clocks),
            len(build.chains),
        )
    )
    assert len(build.chains) == 2  # the paper's p = 2 decomposition
    assert len(tag.states) == 6  # S0S0, S1S1, S1S2, S2S1, S2S2, S3S3
    assert len(tag.clocks) == 4  # b-day+week and b-day+hour per chain
    # Every state carries the Figure 2 "ANY" self-loop.
    for state in tag.states:
        assert any(
            t.symbol == "*" and t.target == state
            for t in tag.transitions_from(state)
        )


@pytest.mark.parametrize("length", [2, 4, 8, 16, 32])
def test_x5_construction_scales_with_chain_length(benchmark, system, length):
    hour = system.get("hour")
    names = ["V%d" % i for i in range(length)]
    constraints = {
        (names[i - 1], names[i]): [TCG(0, 3, hour)]
        for i in range(1, length)
    }
    structure = EventStructure(names, constraints)
    cet = ComplexEventType(structure, {v: "e%s" % v for v in names})
    build = benchmark(build_tag, cet)
    assert len(build.tag.states) == length + 1
    print(
        "\nX5 chain length %d -> %d states, %d transitions"
        % (length, len(build.tag.states), len(build.tag.transitions))
    )


@pytest.mark.parametrize("width", [2, 3, 4])
def test_x5_construction_scales_with_chain_count(benchmark, system, width):
    """Fan-out/fan-in diamonds: p parallel chains of length 3."""
    hour = system.get("hour")
    day = system.get("day")
    names = ["mid%d" % i for i in range(width)]
    constraints = {}
    for name in names:
        constraints[("root", name)] = [TCG(0, 6, hour)]
        constraints[(name, "sink")] = [TCG(0, 1, day)]
    structure = EventStructure(["root"] + names + ["sink"], constraints)
    assignment = {v: "e_%s" % v for v in structure.variables}
    cet = ComplexEventType(structure, assignment)
    build = benchmark(build_tag, cet)
    # Reachable product states: root/sink synchronise all chains, the
    # middles advance independently -> 2^width + 2 states.
    assert len(build.chains) == width
    assert len(build.tag.states) == 2 ** width + 2
    print(
        "\nX5 p=%d chains -> %d states (2^p + 2)"
        % (width, len(build.tag.states))
    )
