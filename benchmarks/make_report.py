"""Regenerate the paper-vs-measured summary in one run.

A standalone (non-pytest) harness that recomputes the headline numbers
of every experiment and prints them as the tables EXPERIMENTS.md
records.  Useful for a quick end-to-end validation:

    python benchmarks/make_report.py
"""

import random
import sys
import time

from repro.constraints import (
    TCG,
    ComplexEventType,
    EventStructure,
    distance_values,
    propagate,
)
from repro.granularity import second, standard_system
from repro.granularity.gregorian import SECONDS_PER_DAY, SECONDS_PER_HOUR
from repro.hardness import (
    SubsetSumInstance,
    crt_compatible_subset_exists,
    decide_via_reduction,
    has_subset_sum,
)
from repro.mining import (
    EventDiscoveryProblem,
    discover,
    naive_discover,
    planted_sequence,
)

D, H = SECONDS_PER_DAY, SECONDS_PER_HOUR


def figure_1a(system):
    return EventStructure(
        ["X0", "X1", "X2", "X3"],
        {
            ("X0", "X1"): [TCG(1, 1, system.get("b-day"))],
            ("X1", "X3"): [TCG(0, 1, system.get("week"))],
            ("X0", "X2"): [TCG(0, 5, system.get("b-day"))],
            ("X2", "X3"): [TCG(0, 8, system.get("hour"))],
        },
    )


def figure_1b(system):
    month = system.get("month")
    year = system.get("year")
    return EventStructure(
        ["X0", "X1", "X2", "X3"],
        {
            ("X0", "X1"): [TCG(11, 11, month), TCG(0, 0, year)],
            ("X0", "X2"): [TCG(0, 12, month)],
            ("X2", "X3"): [TCG(11, 11, month), TCG(0, 0, year)],
        },
    )


def x1(system):
    print("== X1: Figure 1(a) derived constraints ==")
    result = propagate(figure_1a(system), system)
    derived = result.intervals("X0", "X3")
    print("  Mon-Fri b-week: week %s  hour %s" % (
        derived.get("week"), derived.get("hour")))
    sixday = standard_system(workdays=(0, 1, 2, 3, 4, 5))
    result6 = propagate(figure_1a(sixday), sixday)
    derived6 = result6.intervals("X0", "X3")
    print("  Mon-Sat b-week: week %s  hour %s" % (
        derived6.get("week"), derived6.get("hour")))
    print("  paper quotes:   week (0, 1)  hour (1, 175) -- the hour")
    print("  bound matches EXACTLY under the six-day convention; the")
    print("  week hull {0,1} is confirmed by exact enumeration (X1).")


def x2(system):
    print("\n== X2: Figure 1(b) hidden disjunction ==")
    gadget = figure_1b(system)
    hull = propagate(gadget, system).interval("X0", "X2", "month")
    values = distance_values(
        gadget, system, "X0", "X2", "month", 3 * 366 * D
    )
    print("  propagation hull: %s   exact set: %s   paper: [0,12] / {0,12}"
          % (hull, values))


def x3(system):
    print("\n== X3: SUBSET SUM reduction ==")
    for numbers, target in [((3, 5, 7), 12), ((3, 5, 7), 11), ((2, 3, 4), 9)]:
        instance = SubsetSumInstance(numbers, target)
        outcome = decide_via_reduction(instance, system)
        print(
            "  %s target %2d: oracle=%-5s gadget=%-5s refined=%-5s nodes=%d"
            % (
                numbers,
                target,
                has_subset_sum(instance),
                outcome.consistent,
                crt_compatible_subset_exists(instance),
                outcome.nodes_explored,
            )
        )


def x7_x9(system):
    print("\n== X7/X9: Example 2 discovery, naive vs optimised ==")
    structure = figure_1a(system)
    target = ComplexEventType(
        structure,
        {
            "X0": "IBM-rise",
            "X1": "IBM-earnings-report",
            "X2": "HP-rise",
            "X3": "IBM-fall",
        },
    )
    rng = random.Random(1996)
    sequence, planted = planted_sequence(
        target,
        system,
        n_roots=40,
        confidence=0.9,
        rng=rng,
        noise_types=["HP-fall", "DEC-rise", "DEC-fall", "SUN-rise"],
        noise_events_per_root=8,
    )
    problem = EventDiscoveryProblem(
        structure, 0.8, "IBM-rise", {"X3": frozenset(["IBM-fall"])}
    )
    t0 = time.perf_counter()
    naive = naive_discover(problem, sequence, system)
    naive_seconds = time.perf_counter() - t0
    t0 = time.perf_counter()
    optimised = discover(problem, sequence, system)
    optimised_seconds = time.perf_counter() - t0
    assert sorted(map(str, naive.solution_assignments())) == sorted(
        map(str, optimised.solution_assignments())
    )
    print(
        "  planted %d/40; solutions agree (%d found)"
        % (planted, len(optimised.solutions))
    )
    print(
        "  naive    : %3d candidates %5d starts %6.2fs"
        % (naive.candidates_evaluated, naive.automaton_starts, naive_seconds)
    )
    print(
        "  optimised: %3d candidates %5d starts %6.2fs"
        % (
            optimised.candidates_evaluated,
            optimised.automaton_starts,
            optimised_seconds,
        )
    )


def x8(system):
    print("\n== X8: same-day TCG vs fixed windows ==")
    from repro.core import compile_pattern
    from repro.mining import EventSequence, SerialEpisode, occurs_within

    rng = random.Random(88)
    events, truth = [], {}
    for day_index in range(120):
        base = day_index * D
        if rng.random() < 0.5:
            anchor = base + 8 * H
            events += [("alarm", anchor), ("reset", anchor + 12 * H)]
            truth[anchor] = True
        else:
            anchor = base + 23 * H
            events += [("alarm", anchor), ("reset", anchor + 5 * H)]
            truth[anchor] = False
    sequence = EventSequence(events)
    pair = EventStructure(
        ["A", "B"], {("A", "B"): [TCG(0, 0, system.get("day"))]}
    )
    matcher = compile_pattern(pair, {"A": "alarm", "B": "reset"}, system)

    def score(predict):
        tp = fp = fn = 0
        for index in sequence.occurrence_indices("alarm"):
            anchor = sequence[index].time
            predicted = predict(index)
            if predicted and truth[anchor]:
                tp += 1
            elif predicted:
                fp += 1
            elif truth[anchor]:
                fn += 1
        precision = tp / (tp + fp) if tp + fp else 1.0
        recall = tp / (tp + fn) if tp + fn else 1.0
        return precision, recall

    precision, recall = score(lambda i: matcher.occurs_at(sequence, i))
    print("  TCG [0,0]day : precision %.2f recall %.2f" % (precision, recall))
    episode = SerialEpisode(("alarm", "reset"))
    for hours in (5, 12, 24):
        precision, recall = score(
            lambda i, w=hours * H: occurs_within(sequence, episode, i, w)
        )
        print(
            "  window %3dh  : precision %.2f recall %.2f"
            % (hours, precision, recall)
        )


def main():
    system = standard_system()
    x1(system)
    x2(system)
    x3(system)
    x7_x9(system)
    x8(system)
    print("\nreport complete.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
