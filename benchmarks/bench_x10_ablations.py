"""X10 - ablations of this implementation's design choices.

Quantifies the decisions DESIGN.md calls out:

* lazy (telescoped) clock valuations vs the paper's strict run
  semantics - identical answers on reduced sequences, and the match
  counts they produce on raw sequences;
* screening depth 0 / 1 / 2 - candidate and automaton-start counts;
* the propagation-derived horizon - events scanned per anchor.
"""

import pytest

from repro.automata import TagMatcher, build_tag
from repro.mining import (
    EventDiscoveryProblem,
    discover,
    reduce_sequence,
)


@pytest.fixture(scope="module")
def problem(figure_1a):
    return EventDiscoveryProblem(
        figure_1a,
        min_confidence=0.8,
        reference_type="IBM-rise",
        candidates={"X3": frozenset(["IBM-fall"])},
    )


@pytest.mark.parametrize("depth", [0, 1, 2])
def test_x10_screening_depth(benchmark, system, problem, stock_workload, depth):
    sequence, _ = stock_workload
    outcome = benchmark.pedantic(
        discover,
        args=(problem, sequence, system),
        kwargs={"screen_depth": depth},
        rounds=1,
        iterations=1,
    )
    print(
        "\nX10 screen_depth=%d: %d candidates, %d automaton starts, "
        "%d solutions"
        % (
            depth,
            outcome.candidates_evaluated,
            outcome.automaton_starts,
            len(outcome.solutions),
        )
    )
    assert len(outcome.solutions) == 1  # answers never change


def test_x10_lazy_vs_strict_clocks(benchmark, system, example1_cet, stock_workload):
    """Strict vs lazy clock semantics - the Theorem 3 errata, measured.

    Under the paper's literal run definition, a run dies whenever ANY
    clock granularity fails to cover an event's timestamp - even an
    event whose own TCGs never mention that granularity (e.g. an
    IBM-fall on a Saturday, legal for its week/hour constraints, kills
    the b-day clocks).  So strict matching under-counts genuine complex
    events; the lazy telescoped semantics recognises exactly the
    binding semantics.  The two agree on sequences every clock
    granularity covers.
    """
    sequence, _ = stock_workload
    structure = example1_cet.structure
    allowed = {v: None for v in structure.variables}
    reduced = reduce_sequence(structure, sequence, allowed)
    granularities = structure.granularities()
    fully_covered = sequence.filtered(
        lambda e: all(t.tick_of(e.time) is not None for t in granularities)
    )
    lazy = TagMatcher(build_tag(example1_cet), strict=False)
    strict = TagMatcher(build_tag(example1_cet), strict=True)

    def run():
        return (
            lazy.count_occurrences(sequence),
            strict.count_occurrences(sequence),
            lazy.count_occurrences(reduced),
            strict.count_occurrences(fully_covered),
            lazy.count_occurrences(fully_covered),
        )

    lazy_raw, strict_raw, lazy_red, strict_cov, lazy_cov = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print(
        "\nX10 matches - raw: lazy %d / strict %d; reduced lazy %d; "
        "fully-covered: lazy %d / strict %d"
        % (lazy_raw, strict_raw, lazy_red, lazy_cov, strict_cov)
    )
    assert strict_raw <= lazy_raw  # strict only loses matches
    assert lazy_red == lazy_raw  # reduction never changes lazy answers
    assert strict_cov == lazy_cov  # equality once coverage is total


def test_x10_streaming_vs_batch(benchmark, system, example1_cet, stock_workload):
    """One streaming pass equals per-anchor batch matching, cheaper."""
    from repro.automata import StreamingMatcher

    sequence, _ = stock_workload
    batch = TagMatcher(build_tag(example1_cet))
    expected = {
        sequence[i].time for i in batch.matching_roots(sequence)
    }

    def run():
        streaming = StreamingMatcher(
            build_tag(example1_cet), horizon_seconds=14 * 86400
        )
        return {
            d.anchor_time for d in streaming.feed_sequence(sequence)
        }

    detected = benchmark.pedantic(run, rounds=2, iterations=1)
    print(
        "\nX10 streaming detections %d == batch matches %d"
        % (len(detected), len(expected))
    )
    assert detected == expected


def test_x10_conversion_mode_ablation(benchmark, figure_1a):
    """Direct boundary-scan conversions vs the paper's Figure 3 tables:
    tightness of the derived root-to-leaf windows (which drive both the
    matcher horizon and the screening windows)."""
    from repro.constraints import propagate
    from repro.granularity import second, standard_system

    def run():
        rows = {}
        for mode in ("direct", "figure3"):
            system = standard_system(conversion_mode=mode)
            result = propagate(
                figure_1a, system, extra_granularities=[second()]
            )
            rows[mode] = result.interval("X0", "X3", "second")
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    direct_lo, direct_hi = rows["direct"]
    table_lo, table_hi = rows["figure3"]
    print(
        "\nX10 root window (seconds): direct [%d, %d] vs figure3 "
        "[%d, %d] (%.1f%% tighter span)"
        % (
            direct_lo,
            direct_hi,
            table_lo,
            table_hi,
            100.0 * (1 - (direct_hi - direct_lo) / (table_hi - table_lo)),
        )
    )
    # Both sound; direct never looser.
    assert table_lo <= direct_lo
    assert table_hi >= direct_hi


def test_x10_horizon_ablation(benchmark, system, example1_cet, stock_workload):
    sequence, _ = stock_workload
    from repro.core import compile_pattern

    with_horizon = compile_pattern(
        example1_cet.structure, example1_cet.assignment, system
    )
    without = TagMatcher(build_tag(example1_cet))

    def run():
        scanned_with = scanned_without = 0
        for index in sequence.occurrence_indices("IBM-rise"):
            scanned_with += with_horizon.match_from(sequence, index).events_scanned
            scanned_without += without.match_from(sequence, index).events_scanned
        return scanned_with, scanned_without

    scanned_with, scanned_without = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print(
        "\nX10 events scanned: horizon %d vs no horizon %d (%.1fx)"
        % (
            scanned_with,
            scanned_without,
            scanned_without / max(1, scanned_with),
        )
    )
    assert scanned_with <= scanned_without
    assert with_horizon.count_occurrences(sequence) == without.count_occurrences(
        sequence
    )
