"""Execute the Python code blocks of the documentation.

Keeps README.md and docs/TUTORIAL.md honest: every ```python fence is
executed (in order, sharing one namespace per document) inside a temp
working directory pre-seeded with the small files the snippets expect.
"""

import os
import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

_FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def python_blocks(path: Path):
    return _FENCE.findall(path.read_text())


def run_blocks(blocks, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    (tmp_path / "events.csv").write_text(
        "event_type,timestamp\nALERT,36000\nACK,118800\nPAGE,126000\n"
    )
    namespace = {}
    for number, block in enumerate(blocks, start=1):
        try:
            exec(compile(block, "<doc-block-%d>" % number, "exec"), namespace)
        except Exception as exc:  # pragma: no cover - failure reporting
            pytest.fail(
                "documentation block %d failed: %s\n---\n%s"
                % (number, exc, block)
            )


class TestTutorialSnippets:
    def test_all_blocks_execute(self, tmp_path, monkeypatch):
        blocks = python_blocks(REPO_ROOT / "docs" / "TUTORIAL.md")
        assert len(blocks) >= 6
        run_blocks(blocks, tmp_path, monkeypatch)


class TestReadmeSnippets:
    def test_quickstart_block_executes(self, tmp_path, monkeypatch):
        blocks = python_blocks(REPO_ROOT / "README.md")
        assert blocks, "README should contain a python quickstart"
        run_blocks(blocks, tmp_path, monkeypatch)


class TestApiDocSnippets:
    def test_import_blocks_execute(self, tmp_path, monkeypatch):
        blocks = python_blocks(REPO_ROOT / "docs" / "API.md")
        assert blocks
        run_blocks(blocks, tmp_path, monkeypatch)


class TestPerformanceSnippets:
    def test_all_blocks_execute(self, tmp_path, monkeypatch):
        blocks = python_blocks(REPO_ROOT / "docs" / "PERFORMANCE.md")
        assert len(blocks) >= 4
        run_blocks(blocks, tmp_path, monkeypatch)


class TestResilienceSnippets:
    def test_all_blocks_execute(self, tmp_path, monkeypatch):
        blocks = python_blocks(REPO_ROOT / "docs" / "RESILIENCE.md")
        assert len(blocks) >= 5
        run_blocks(blocks, tmp_path, monkeypatch)


class TestObservabilitySnippets:
    def test_all_blocks_execute(self, tmp_path, monkeypatch):
        blocks = python_blocks(REPO_ROOT / "docs" / "OBSERVABILITY.md")
        assert len(blocks) >= 6
        run_blocks(blocks, tmp_path, monkeypatch)
