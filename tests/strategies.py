"""Shared hypothesis strategies for the test suite."""

from hypothesis import strategies as st

from repro.constraints import TCG, EventStructure
from repro.granularity import day, hour, week

GRANULARITY_FACTORIES = [hour, day, week]


@st.composite
def rooted_dags(draw, max_nodes: int = 8):
    """Random rooted DAGs with TCG-labelled arcs.

    Each non-root node gets at least one earlier parent; a few extra
    forward arcs are sprinkled in.  Granularities are gap-free (hour /
    day / week) so every structure is satisfiable somewhere.
    """
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    names = ["N%d" % i for i in range(n)]
    arcs = set()
    for i in range(1, n):
        parent = draw(st.integers(min_value=0, max_value=i - 1))
        arcs.add((names[parent], names[i]))
    extra = draw(st.integers(min_value=0, max_value=n))
    for _ in range(extra):
        a = draw(st.integers(min_value=0, max_value=n - 2))
        b = draw(st.integers(min_value=a + 1, max_value=n - 1))
        arcs.add((names[a], names[b]))
    constraints = {}
    for arc in sorted(arcs):
        pick = draw(st.integers(min_value=0, max_value=2))
        m = draw(st.integers(min_value=0, max_value=3))
        span = draw(st.integers(min_value=0, max_value=4))
        constraints[arc] = [
            TCG(m, m + span, GRANULARITY_FACTORIES[pick]())
        ]
    return EventStructure(names, constraints)
