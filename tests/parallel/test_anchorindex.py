"""The posting-list anchor index: exactness, screening, maintenance."""

import random

import pytest

from repro.automata.builder import build_tag
from repro.automata.matching import TagMatcher
from repro.constraints import TCG, ComplexEventType, EventStructure
from repro.core.api import compile_pattern
from repro.mining.events import EventSequence
from repro.store import EventStore
from repro.store.anchorindex import AnchorIndex


def _random_events(rng, n=200, types=("a", "b", "c"), span=10_000):
    times = sorted(rng.randrange(0, span) for _ in range(n))
    return [(rng.choice(types), t) for t in times]


class TestAnchorIndexQueries:
    def test_has_in_window_agrees_with_brute_force(self):
        rng = random.Random(7)
        events = _random_events(rng)
        index = AnchorIndex.from_events(events)
        for _ in range(300):
            etype = rng.choice(["a", "b", "c", "zzz"])
            start = rng.randrange(-100, 10_100)
            stop = start + rng.randrange(-10, 500)
            expected = any(
                e == etype and start <= t <= stop for e, t in events
            )
            assert index.has_in_window(etype, start, stop) == expected

    def test_count_and_positions_agree_with_brute_force(self):
        rng = random.Random(8)
        events = _random_events(rng)
        index = AnchorIndex.from_events(events)
        for _ in range(200):
            etype = rng.choice(["a", "b", "c"])
            start = rng.randrange(0, 10_000)
            stop = start + rng.randrange(0, 800)
            expected = [
                position
                for position, (e, t) in enumerate(events)
                if e == etype and start <= t <= stop
            ]
            assert list(
                index.positions_in_window(etype, start, stop)
            ) == expected
            assert index.count_in_window(etype, start, stop) == len(expected)

    def test_empty_and_inverted_windows(self):
        index = AnchorIndex.from_events([("a", 10)])
        assert not index.has_in_window("a", 20, 5)
        assert index.count_in_window("a", 20, 5) == 0
        assert index.positions_in_window("a", 20, 5) == ()
        assert not index.has_in_window("missing", 0, 100)

    def test_viable_anchors_without_requirements_is_passthrough(self):
        index = AnchorIndex.from_events([("a", 10)])
        anchors = [(3, 10), (9, 400)]
        assert index.viable_anchors(anchors, ()) == [3, 9]

    def test_viable_anchors_preserve_order_and_refute_soundly(self):
        events = [("r", 0), ("a", 50), ("r", 1000), ("r", 2000), ("a", 2040)]
        index = AnchorIndex.from_events(events)
        anchors = [(0, 0), (2, 1000), (3, 2000)]
        viable = index.viable_anchors(anchors, [("a", 0, 100)])
        # Roots at t=0 and t=2000 have an "a" within 100 s; t=1000 not.
        assert viable == [0, 3]


class TestMatcherAnchorRequirements:
    def test_screen_never_changes_the_matched_set(self, system):
        hour = system.get("hour")
        structure = EventStructure(
            ["R", "A"], {("R", "A"): [TCG(0, 1, hour)]}
        )
        rng = random.Random(3)
        events = sorted(
            [("r", rng.randrange(0, 200_000)) for _ in range(30)]
            + [("a", rng.randrange(0, 200_000)) for _ in range(30)],
            key=lambda event: event[1],
        )
        sequence = EventSequence(events)
        cet = ComplexEventType(structure, {"R": "r", "A": "a"})
        plain = TagMatcher(build_tag(cet, system=system))
        screened = compile_pattern(structure, cet.assignment, system)
        assert screened.anchor_requirements
        assert list(screened.matching_roots(sequence)) == list(
            plain.matching_roots(sequence)
        )
        assert screened.count_occurrences(
            sequence
        ) == plain.count_occurrences(sequence)

    def test_compile_pattern_derives_requirements(self, system):
        hour = system.get("hour")
        structure = EventStructure(
            ["R", "A"], {("R", "A"): [TCG(0, 2, hour)]}
        )
        matcher = compile_pattern(structure, {"R": "r", "A": "a"}, system)
        ((etype, lo, hi),) = matcher.anchor_requirements
        assert etype == "a"
        assert lo <= 0 and hi >= 3600  # the window covers 0..2 hours


class TestStoreIndexMaintenance:
    def test_incremental_append_matches_rebuilt_index(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "debug")
        store = EventStore()
        rng = random.Random(5)
        t = 0
        for _ in range(120):
            t += rng.randrange(0, 50)
            store.append(rng.choice(["a", "b"]), t)
        incremental = store.anchor_index()
        rebuilt = EventStore.from_sequence(store.snapshot()).anchor_index()
        for etype in ("a", "b"):
            assert incremental.positions(etype) == rebuilt.positions(etype)

    def test_out_of_order_append_still_yields_a_correct_index(
        self, monkeypatch
    ):
        monkeypatch.setenv("REPRO_OBS", "debug")
        store = EventStore()
        for etype, time in [("a", 100), ("b", 50), ("a", 75), ("b", 200)]:
            store.append(etype, time)
        index = store.anchor_index()
        assert index.has_in_window("b", 40, 60)
        assert index.count_in_window("a", 0, 100) == 2

    def test_snapshot_index_sees_extended_events(self):
        store = EventStore()
        store.extend([("a", 10), ("a", 20)])
        assert store.anchor_index().count_in_window("a", 0, 100) == 2
        store.extend([("a", 30)])
        assert store.anchor_index().count_in_window("a", 0, 100) == 3
