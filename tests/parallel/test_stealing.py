"""Unit tests for the work-stealing scheduler."""

import pytest

from repro.obs import counter_deltas, metrics_snapshot
from repro.parallel.stealing import StealScheduler


def _drain(scheduler, lane):
    out = []
    while True:
        item = scheduler.next_for(lane)
        if item is None:
            return out
        out.append(item)


class TestInitialPlan:
    def test_contiguous_blocks_per_lane(self):
        scheduler = StealScheduler(list("abcdefg"), lanes=3)
        assert len(scheduler) == 7
        # ceil(7/3) = 3: blocks abc / def / g.
        assert scheduler.pending(0) == 3
        assert scheduler.pending(1) == 3
        assert scheduler.pending(2) == 1

    def test_more_lanes_than_units(self):
        scheduler = StealScheduler(["only"], lanes=4)
        assert scheduler.pending(0) == 1
        assert all(scheduler.pending(lane) == 0 for lane in (1, 2, 3))
        assert scheduler.next_for(0) == (0, "only")
        assert scheduler.next_for(0) is None

    def test_empty_plan(self):
        scheduler = StealScheduler([], lanes=2)
        assert len(scheduler) == 0
        assert scheduler.next_for(0) is None
        assert scheduler.next_for(1) is None
        assert scheduler.steals == 0

    def test_lane_floor_is_one(self):
        scheduler = StealScheduler(["a", "b"], lanes=0)
        assert scheduler.lanes == 1
        assert _drain(scheduler, 0) == [(0, "a"), (1, "b")]


class TestStealing:
    def test_own_deque_first_in_plan_order(self):
        scheduler = StealScheduler(list("abcd"), lanes=2)
        assert scheduler.next_for(0) == (0, "a")
        assert scheduler.next_for(1) == (2, "c")
        assert scheduler.steals == 0

    def test_idle_lane_steals_tail_half(self):
        scheduler = StealScheduler(list("abcdef"), lanes=2)
        # Lane 1 drains its own block (def)...
        assert [scheduler.next_for(1) for _ in range(3)] == [
            (3, "d"), (4, "e"), (5, "f"),
        ]
        # ...then steals the tail half of lane 0's untouched block
        # (abc): tail half rounded up = (b, c), served in plan order.
        assert scheduler.next_for(1) == (1, "b")
        assert scheduler.steals == 1
        assert scheduler.pending(1) == 1
        # The victim keeps the head of its own block.
        assert scheduler.next_for(0) == (0, "a")
        assert scheduler.next_for(1) == (2, "c")

    def test_richest_victim_ties_break_low(self):
        scheduler = StealScheduler(list("abcdef"), lanes=3)
        # Lanes 0 and 1 both hold 2 units; lane 2 drains then steals.
        assert _drain_n(scheduler, 2, 2) == [(4, "e"), (5, "f")]
        item = scheduler.next_for(2)
        # Tie between lanes 0 and 1 breaks toward lane 0: its tail
        # unit (index 1) moves.
        assert item == (1, "b")
        assert scheduler.pending(0) == 1
        assert scheduler.pending(1) == 2

    def test_steals_counter_and_metric(self, obs_on):
        before = metrics_snapshot()
        scheduler = StealScheduler(list("abcd"), lanes=2)
        _drain(scheduler, 0)  # drains own block then steals lane 1's
        deltas = counter_deltas(before, metrics_snapshot())
        assert scheduler.steals >= 1
        assert (
            deltas.get("repro_parallel_steals_total", 0)
            == scheduler.steals
        )

    def test_all_units_served_exactly_once_any_interleaving(self):
        """Alternating greedy lanes: every unit index appears exactly
        once across lanes regardless of steal pattern."""
        units = list(range(23))
        scheduler = StealScheduler(units, lanes=4)
        served = []
        lane = 0
        while True:
            item = scheduler.next_for(lane % 4)
            lane += 3  # stride the lanes to provoke steals
            if item is None and len(served) == len(units):
                break
            if item is not None:
                served.append(item[0])
        assert sorted(served) == units


def _drain_n(scheduler, lane, n):
    return [scheduler.next_for(lane) for _ in range(n)]
