"""CLI acceptance: ``repro mine --parallel`` vs the serial engine."""

import json

import pytest

from repro.cli import main
from repro.constraints import TCG, EventStructure
from repro.io import dump_json, problem_to_dict, write_events
from repro.mining import EventDiscoveryProblem, EventSequence
from repro.parallel import fork_available


@pytest.fixture(autouse=True)
def _unkill_parallel(monkeypatch):
    """Neutralise an ambient ``REPRO_PARALLEL=off`` (the CI kill-switch
    job): these tests set the knobs they need explicitly."""
    monkeypatch.delenv("REPRO_PARALLEL", raising=False)


@pytest.fixture
def mine_inputs(tmp_path, system):
    hour = system.get("hour")
    structure = EventStructure(
        ["R", "A", "B"],
        {
            ("R", "A"): [TCG(0, 2, hour)],
            ("A", "B"): [TCG(0, 2, hour)],
        },
    )
    problem = EventDiscoveryProblem(structure, 0.2, "r")
    problem_path = str(tmp_path / "problem.json")
    dump_json(problem_to_dict(problem), problem_path)
    events = []
    for i in range(16):
        t = i * 20_000
        events.append(("r", t))
        if i % 2 == 0:
            events.append(("a", t + 3_000))
        if i % 4 != 3:
            events.append(("b", t + 6_000))
    events_path = str(tmp_path / "events.csv")
    write_events(
        EventSequence(sorted(events, key=lambda e: e[1])), events_path
    )
    return problem_path, events_path


@pytest.mark.skipif(
    not fork_available(), reason="no fork start method on this platform"
)
class TestMineParallelCli:
    def test_parallel_output_is_identical_to_serial(
        self, mine_inputs, capsys
    ):
        problem_path, events_path = mine_inputs
        assert main(["mine", problem_path, events_path]) == 0
        serial_out = capsys.readouterr().out
        assert main(
            ["mine", problem_path, events_path, "--parallel", "2"]
        ) == 0
        parallel_out = capsys.readouterr().out
        assert serial_out == parallel_out
        # Every solution line is valid JSON (the machine-readable
        # contract downstream tooling parses).
        for line in serial_out.strip().splitlines():
            json.loads(line.split("  ", 1)[1])

    def test_shard_size_and_auto_workers_accepted(
        self, mine_inputs, capsys, monkeypatch
    ):
        monkeypatch.setenv("REPRO_PARALLEL_MAX_WORKERS", "2")
        problem_path, events_path = mine_inputs
        assert main(["mine", problem_path, events_path]) == 0
        serial_out = capsys.readouterr().out
        assert main(
            [
                "mine", problem_path, events_path,
                "--parallel", "auto", "--shard-size", "3",
            ]
        ) == 0
        assert capsys.readouterr().out == serial_out

    def test_bad_parallel_value_is_a_usage_error(
        self, mine_inputs, capsys
    ):
        problem_path, events_path = mine_inputs
        assert main(
            ["mine", problem_path, events_path, "--parallel", "lots"]
        ) == 2
        assert "--parallel" in capsys.readouterr().err

    def test_trace_nests_worker_spans_under_the_scan(
        self, mine_inputs, tmp_path, capsys, obs_on
    ):
        problem_path, events_path = mine_inputs
        trace_path = str(tmp_path / "trace.json")
        assert main(
            [
                "--trace", trace_path,
                "mine", problem_path, events_path, "--parallel", "2",
            ]
        ) == 0
        capsys.readouterr()
        with open(trace_path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)

        def find(node, name):
            found = []
            if node["name"] == name:
                found.append(node)
            for child in node.get("children", ()):
                found.extend(find(child, name))
            return found

        scans = [
            scan
            for root in payload["spans"]
            for scan in find(root, "mine.scan")
        ]
        assert scans
        workers = [
            child
            for scan in scans
            for child in find(scan, "mine.worker")
        ]
        assert workers, "worker spans must nest under mine.scan"
        # Worker spans recorded in the pool carry the worker's pid.
        assert all("pid" in w["attributes"] for w in workers)


class TestKillSwitchCli:
    def test_env_off_forces_serial_with_identical_output(
        self, mine_inputs, capsys, monkeypatch
    ):
        problem_path, events_path = mine_inputs
        assert main(["mine", problem_path, events_path]) == 0
        serial_out = capsys.readouterr().out
        monkeypatch.setenv("REPRO_PARALLEL", "off")
        assert main(
            ["mine", problem_path, events_path, "--parallel", "4"]
        ) == 0
        assert capsys.readouterr().out == serial_out
