"""Unit tests for the time-shard planner and its soundness checks."""

import pytest

from repro.mining.events import EventSequence
from repro.parallel import (
    check_shard_invariants,
    plan_shards,
    resolve_shard_size,
)


def _sequence(times, etype="r"):
    return EventSequence([(etype, t) for t in times])


class TestResolveShardSize:
    def test_auto_aims_at_four_shards_per_worker(self):
        assert resolve_shard_size("auto", 80, workers=2) == 10
        assert resolve_shard_size(None, 80, workers=2) == 10

    def test_auto_floors_at_one_root(self):
        assert resolve_shard_size("auto", 3, workers=8) == 1

    def test_explicit_size_passes_through(self):
        assert resolve_shard_size(7, 100, workers=4) == 7

    @pytest.mark.parametrize("bad", [0, -1])
    def test_non_positive_rejected(self, bad):
        with pytest.raises(ValueError):
            resolve_shard_size(bad, 10, workers=1)


class TestPlanShards:
    def test_empty_roots_plan_nothing(self):
        sequence = _sequence([0, 100])
        assert plan_shards(sequence, [], horizon=50) == []

    def test_no_horizon_forces_single_shard(self):
        sequence = _sequence([0, 100, 200, 300])
        shards = plan_shards(
            sequence, [1, 3], horizon=None, shard_size=1
        )
        assert len(shards) == 1
        shard = shards[0]
        assert shard.roots == (1, 3)
        assert shard.event_lo == 1
        assert shard.event_hi == len(sequence)
        assert shard.end_time == 300
        check_shard_invariants(shards, sequence, [1, 3], None)

    def test_partition_and_overlap(self):
        times = [0, 50, 100, 150, 200, 250, 300, 350]
        sequence = _sequence(times)
        roots = list(range(len(times)))
        shards = plan_shards(sequence, roots, horizon=120, shard_size=3)
        assert [shard.roots for shard in shards] == [
            (0, 1, 2),
            (3, 4, 5),
            (6, 7),
        ]
        # Each shard's window extends past its last owned root by the
        # horizon, covering every event a run from that root may read.
        assert shards[0].end_time == 100 + 120
        assert shards[0].event_hi >= 5  # events up to t=220 -> index 4
        check_shard_invariants(shards, sequence, roots, 120)

    def test_boundary_straddling_events_stay_inside_the_slice(self):
        # The companion of the last root in shard 0 lives at the far
        # edge of its horizon (t = root + horizon exactly); the slice
        # must still cover it even though it lies past the next shard's
        # first root.
        sequence = EventSequence(
            [("r", 0), ("r", 100), ("a", 100 + 0), ("r", 500), ("a", 600)]
        )
        shards = plan_shards(
            sequence, [0, 1, 3], horizon=100, shard_size=1
        )
        shard = shards[1]  # owns root at position 1 (t=100)
        assert shard.end_time == 200
        # Position 2 holds the t=100 companion; position 4 (t=600) is
        # out of reach.
        assert shard.event_hi >= 3
        check_shard_invariants(shards, sequence, [0, 1, 3], 100)

    def test_covering_horizon_short_circuits_to_one_shard(self):
        """When the first root's horizon already reaches the last
        event, every shard's slice would span the whole tail anyway:
        the planner short-circuits to one full-coverage shard instead
        of slicing near-identical overlapping windows."""
        sequence = _sequence([0, 100, 200, 300])
        roots = [0, 1, 2, 3]
        shards = plan_shards(sequence, roots, horizon=300, shard_size=1)
        assert len(shards) == 1
        shard = shards[0]
        assert shard.roots == tuple(roots)
        assert shard.event_lo == 0
        assert shard.event_hi == len(sequence)
        assert shard.end_time == 300 + 300
        check_shard_invariants(shards, sequence, roots, 300)

    def test_non_covering_horizon_still_slices(self):
        sequence = _sequence([0, 100, 200, 300])
        roots = [0, 1, 2, 3]
        shards = plan_shards(sequence, roots, horizon=150, shard_size=1)
        assert len(shards) > 1
        check_shard_invariants(shards, sequence, roots, 150)

    def test_invariant_check_catches_a_truncated_slice(self):
        sequence = _sequence([0, 100, 200, 300])
        roots = [0, 1, 2, 3]
        shards = plan_shards(sequence, roots, horizon=150, shard_size=2)
        from dataclasses import replace

        bad = list(shards)
        bad[0] = replace(bad[0], event_hi=bad[0].roots[-1])
        with pytest.raises(AssertionError):
            check_shard_invariants(bad, sequence, roots, 150)

    def test_invariant_check_catches_a_dropped_root(self):
        sequence = _sequence([0, 100, 200, 300])
        roots = [0, 1, 2, 3]
        shards = plan_shards(sequence, roots, horizon=150, shard_size=2)
        with pytest.raises(AssertionError):
            check_shard_invariants(shards[:-1], sequence, roots, 150)

    def test_auto_shard_size_uses_worker_count(self):
        sequence = _sequence(list(range(0, 1600, 10)))
        roots = list(range(160))
        shards = plan_shards(
            sequence, roots, horizon=50, shard_size="auto", workers=4
        )
        # auto aims at ~4 shards per worker.
        assert len(shards) == 16
        check_shard_invariants(shards, sequence, roots, 50)
