"""Unit tests for the work-sharded scan engine (pool and inline)."""

from unittest import mock

import pytest

from repro.automata.builder import build_tag
from repro.automata.matching import TagMatcher
from repro.constraints import TCG, ComplexEventType, EventStructure
from repro.mining.events import EventSequence
from repro.obs import counter_deltas, metrics_snapshot
from repro.parallel import (
    candidate_requirements,
    fork_available,
    parallel_disabled,
    parallel_scan,
    resolve_workers,
)


class TestEnvironmentKnobs:
    @pytest.mark.parametrize("value", ["off", "0", "false", "no", " OFF "])
    def test_kill_switch_values(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_PARALLEL", value)
        assert parallel_disabled()
        assert resolve_workers(4) == 1
        assert resolve_workers("auto") == 1

    @pytest.mark.parametrize("value", ["", "2", "auto"])
    def test_non_off_values_do_not_disable(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_PARALLEL", value)
        assert not parallel_disabled()

    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_PARALLEL", raising=False)
        assert resolve_workers(None) == 1

    def test_env_integer_is_the_default_worker_count(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "3")
        monkeypatch.delenv("REPRO_PARALLEL_MAX_WORKERS", raising=False)
        assert resolve_workers(None) == 3
        # An explicit request wins over the env default.
        assert resolve_workers(2) == 2

    def test_auto_uses_cpu_count(self, monkeypatch):
        monkeypatch.delenv("REPRO_PARALLEL", raising=False)
        monkeypatch.delenv("REPRO_PARALLEL_MAX_WORKERS", raising=False)
        with mock.patch("os.cpu_count", return_value=6):
            assert resolve_workers("auto") == 6
            monkeypatch.setenv("REPRO_PARALLEL", "auto")
            assert resolve_workers(None) == 6

    def test_max_workers_cap(self, monkeypatch):
        monkeypatch.delenv("REPRO_PARALLEL", raising=False)
        monkeypatch.setenv("REPRO_PARALLEL_MAX_WORKERS", "2")
        assert resolve_workers(8) == 2
        assert resolve_workers(1) == 1

    @pytest.mark.parametrize("bad", [0, -2, "0"])
    def test_non_positive_requests_rejected(self, monkeypatch, bad):
        monkeypatch.delenv("REPRO_PARALLEL", raising=False)
        with pytest.raises(ValueError):
            resolve_workers(bad)

    def test_fork_available_reports_platform_truth(self):
        import multiprocessing

        assert fork_available() == (
            "fork" in multiprocessing.get_all_start_methods()
        )


class TestCandidateRequirements:
    def test_requirements_follow_windows_sorted_by_variable(self):
        assignment = {"R": "r", "B": "b", "A": "a"}
        windows = {"B": (5, 10), "A": (0, 3)}
        assert candidate_requirements(assignment, windows, "R") == (
            ("a", 0, 3),
            ("b", 5, 10),
        )

    def test_root_and_unassigned_variables_are_skipped(self):
        assignment = {"R": "r", "A": "a"}
        windows = {"R": (0, 0), "A": (1, 2), "C": (3, 4)}
        assert candidate_requirements(assignment, windows, "R") == (
            ("a", 1, 2),
        )


def _workload(system):
    """A two-candidate scan problem with a known serial answer."""
    hour = system.get("hour")
    structure = EventStructure(
        ["R", "A"], {("R", "A"): [TCG(0, 1, hour)]}
    )
    sequence = EventSequence(
        [
            ("r", 0),
            ("a", 1800),        # matches candidate a for root 0
            ("r", 40_000),
            ("b", 41_000),      # matches candidate b for root 2
            ("r", 80_000),      # matches nothing
            ("a", 200_000),     # out of every window
        ]
    )
    roots = [0, 2, 4]
    candidates = [{"R": "r", "A": "a"}, {"R": "r", "A": "b"}]
    windows = {"A": (0, 7200)}
    horizon = 7200
    return structure, sequence, roots, candidates, windows, horizon


def _serial_counts(system, structure, sequence, roots, candidates, horizon):
    counts = []
    for assignment in candidates:
        matcher = TagMatcher(
            build_tag(ComplexEventType(structure, assignment), system=system),
            horizon_seconds=horizon,
        )
        counts.append(
            sum(1 for root in roots if matcher.occurs_at(sequence, root))
        )
    return counts


class TestParallelScan:
    @pytest.mark.parametrize("shard_size", ["auto", 1, 2, 5])
    def test_inline_matches_direct_serial_counting(
        self, system, shard_size
    ):
        structure, sequence, roots, candidates, windows, horizon = _workload(
            system
        )
        expected = _serial_counts(
            system, structure, sequence, roots, candidates, horizon
        )
        results, report = parallel_scan(
            sequence,
            system,
            structure,
            candidates,
            windows,
            roots,
            horizon,
            workers=2,
            shard_size=shard_size,
            executor="inline",
        )
        assert [result.hits for result in results] == expected
        assert report["executor"] == "inline"
        # With REPRO_BATCH active the grid is groups x shards (both
        # candidates share a clock signature -> one group), otherwise
        # candidates x shards.
        grain = report["batch_groups"] or len(candidates)
        assert report["tasks"] == grain * report["shards"]

    def test_anchor_screen_reduces_starts_without_changing_hits(
        self, system
    ):
        structure, sequence, roots, candidates, windows, horizon = _workload(
            system
        )
        screened, _ = parallel_scan(
            sequence, system, structure, candidates, windows, roots,
            horizon, workers=1, executor="inline", anchor_screen=True,
        )
        unscreened, _ = parallel_scan(
            sequence, system, structure, candidates, windows, roots,
            horizon, workers=1, executor="inline", anchor_screen=False,
        )
        assert [r.hits for r in screened] == [r.hits for r in unscreened]
        assert sum(r.starts for r in unscreened) == len(roots) * len(
            candidates
        )
        assert sum(r.starts for r in screened) < sum(
            r.starts for r in unscreened
        )

    @pytest.mark.skipif(
        not fork_available(), reason="no fork start method on this platform"
    )
    def test_pool_matches_inline(self, system):
        structure, sequence, roots, candidates, windows, horizon = _workload(
            system
        )
        inline, _ = parallel_scan(
            sequence, system, structure, candidates, windows, roots,
            horizon, workers=2, shard_size=2, executor="inline",
        )
        pooled, report = parallel_scan(
            sequence, system, structure, candidates, windows, roots,
            horizon, workers=2, shard_size=2, executor="pool",
        )
        assert [(r.hits, r.starts) for r in pooled] == [
            (r.hits, r.starts) for r in inline
        ]
        assert report["executor"] == "pool"
        assert report["workers"] == 2

    def test_pool_without_fork_falls_back_inline(self, system, obs_on):
        structure, sequence, roots, candidates, windows, horizon = _workload(
            system
        )
        before = metrics_snapshot()
        with mock.patch(
            "repro.parallel.engine.fork_available", return_value=False
        ):
            _, report = parallel_scan(
                sequence, system, structure, candidates, windows, roots,
                horizon, workers=2, executor="pool",
            )
        assert report["executor"] == "inline"
        deltas = counter_deltas(before, metrics_snapshot())
        assert deltas.get("repro_parallel_fallback_total", 0) == 1

    def test_scan_metrics_account_shards_and_tasks(self, system, obs_on):
        structure, sequence, roots, candidates, windows, horizon = _workload(
            system
        )
        before = metrics_snapshot()
        _, report = parallel_scan(
            sequence, system, structure, candidates, windows, roots,
            horizon, workers=1, shard_size=1, executor="inline",
        )
        deltas = counter_deltas(before, metrics_snapshot())
        assert deltas.get("repro_mine_shards_total") == report["shards"]
        assert deltas.get("repro_parallel_tasks_total") == report["tasks"]
        assert report["shards"] == len(roots)

    def test_no_roots_yields_empty_results_fast(self, system):
        structure, sequence, _, candidates, windows, horizon = _workload(
            system
        )
        results, report = parallel_scan(
            sequence, system, structure, candidates, windows, [],
            horizon, workers=2, executor="inline",
        )
        assert [(r.hits, r.starts) for r in results] == [(0, 0), (0, 0)]
        assert report["shards"] == 0

    def test_merged_tag_counters_match_starts(self, system, obs_on):
        """Pool workers' metric deltas merge back exactly: the global
        run counter moves by precisely the automaton starts."""
        if not fork_available():
            pytest.skip("no fork start method on this platform")
        structure, sequence, roots, candidates, windows, horizon = _workload(
            system
        )
        before = metrics_snapshot()
        results, _ = parallel_scan(
            sequence, system, structure, candidates, windows, roots,
            horizon, workers=2, shard_size=1, executor="pool",
        )
        deltas = counter_deltas(before, metrics_snapshot())
        starts = sum(result.starts for result in results)
        assert deltas.get("repro_tag_runs_total", 0) == starts
