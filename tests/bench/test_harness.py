"""Unit tests for the benchmark harness and its regression gate."""

import json
import os

import pytest

from repro.bench import (
    EXPERIMENT_NAMES,
    PROFILES,
    BenchmarkRegression,
    assert_no_regressions,
    compare_payloads,
    format_comparison,
    load_payload,
    run_suite,
    save_payload,
)
from repro.bench.harness import SCHEMA_VERSION


def _payload(medians):
    return {
        "schema": SCHEMA_VERSION,
        "profile": "quick",
        "engine": "fallback",
        "repeats": 1,
        "experiments": {
            name: {"median_seconds": s, "repeats": 1, "counters": {}}
            for name, s in medians.items()
        },
    }


class TestRunSuite:
    def test_subset_run_shape(self):
        payload = run_suite(engine="fallback", experiments=["X1", "X5"])
        assert payload["schema"] == SCHEMA_VERSION
        assert payload["engine"] == "fallback"
        assert payload["repeats"] == PROFILES["quick"]["repeats"]
        assert sorted(payload["experiments"]) == ["X1", "X5"]
        for run in payload["experiments"].values():
            assert run["median_seconds"] >= 0
            assert run["counters"]
        assert "conversion_cache" in payload
        assert "size_tables" in payload

    def test_counters_are_deterministic(self):
        first = run_suite(engine="fallback", experiments=["X1"])
        second = run_suite(engine="fallback", experiments=["X1"])
        assert (
            first["experiments"]["X1"]["counters"]
            == second["experiments"]["X1"]["counters"]
        )

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError):
            run_suite(profile="warp-speed")

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ValueError):
            run_suite(experiments=["X1", "X99"])

    def test_all_eighteen_experiments_registered(self):
        assert EXPERIMENT_NAMES == tuple(
            "X%d" % i for i in range(1, 19)
        )

    def test_x15_service_churn_counters(self):
        payload = run_suite(experiments=["X15"])
        counters = payload["experiments"]["X15"]["counters"]
        assert counters["tenants"] == 500
        assert counters["events"] == 1500
        assert counters["all_tenants_detected"]
        assert counters["detections"] == counters["tenants"]
        # 500 sessions through 32 resident slots: constant churn.
        assert counters["evictions"] > counters["tenants"]
        assert counters["rehydrations"] > counters["tenants"]
        assert counters["events_per_second"] > 0


class TestTraceDir:
    def test_trace_dir_writes_one_trace_per_experiment(self, tmp_path):
        from repro.obs import configure, load_trace, obs_enabled

        trace_dir = str(tmp_path / "traces")
        previous = obs_enabled()
        configure(True)
        try:
            payload = run_suite(
                engine="fallback", experiments=["X1", "X5"],
                trace_dir=trace_dir,
            )
        finally:
            configure(previous)
        for name in ["X1", "X5"]:
            record = payload["experiments"][name]
            trace = load_trace(record["trace_file"])
            assert os.path.basename(record["trace_file"]) == (
                "%s.json" % name
            )
            # One bench.<name> root per repeat, all one trace.
            roots = trace["spans"]
            assert len(roots) == record["repeats"]
            assert all(r["name"] == "bench.%s" % name for r in roots)
            assert all(
                r["trace_id"] == trace["trace_id"] for r in roots
            )
            slowest = record["slowest_spans"]
            assert 0 < len(slowest) <= 5
            durations = [row["duration_ms"] for row in slowest]
            assert durations == sorted(durations, reverse=True)
            assert slowest[0]["trace_id"] == trace["trace_id"]
            assert all(row["span_id"] for row in slowest)

    def test_without_trace_dir_records_are_unchanged(self):
        payload = run_suite(engine="fallback", experiments=["X1"])
        record = payload["experiments"]["X1"]
        assert "trace_file" not in record
        assert "slowest_spans" not in record


class TestSlowestSpans:
    def test_ranks_across_nesting(self):
        from repro.bench.harness import slowest_spans

        trace = {
            "trace_id": "t",
            "spans": [{
                "name": "root", "span_id": "r", "trace_id": "t",
                "duration_ns": 5_000_000,
                "children": [
                    {"name": "deep", "span_id": "d", "trace_id": "t",
                     "duration_ns": 9_000_000, "children": []},
                ],
            }],
        }
        rows = slowest_spans(trace, limit=2)
        assert [row["name"] for row in rows] == ["deep", "root"]
        assert rows[0]["duration_ms"] == 9.0


class TestComparePayloads:
    def test_equal_payloads_never_regress(self):
        payload = _payload({"X1": 0.5, "X4": 2.0})
        rows = compare_payloads(payload, payload)
        assert rows and not any(row["regressed"] for row in rows)

    def test_large_slowdown_regresses(self):
        rows = compare_payloads(
            _payload({"X4": 1.0}), _payload({"X4": 0.5})
        )
        (row,) = rows
        assert row["ratio"] == pytest.approx(2.0)
        assert row["regressed"]

    def test_within_tolerance_is_ok(self):
        rows = compare_payloads(
            _payload({"X4": 1.2}), _payload({"X4": 1.0}), tolerance=0.25
        )
        assert not rows[0]["regressed"]

    def test_jitter_floor_protects_tiny_experiments(self):
        """A 0.4 ms experiment tripling stays under the absolute
        floor: jitter, not a regression."""
        rows = compare_payloads(
            _payload({"X3": 0.0012}), _payload({"X3": 0.0004})
        )
        assert rows[0]["ratio"] == pytest.approx(3.0)
        assert not rows[0]["regressed"]
        rows = compare_payloads(
            _payload({"X3": 0.0012}),
            _payload({"X3": 0.0004}),
            min_delta_seconds=0.0,
        )
        assert rows[0]["regressed"]

    def test_sub_floor_experiments_are_informational_only(self):
        """Both medians under the jitter floor: the row is reported
        for the record but can neither pass nor fail the gate."""
        rows = compare_payloads(
            _payload({"X3": 0.004}), _payload({"X3": 0.001})
        )
        (row,) = rows
        assert row["informational"]
        assert not row["regressed"]
        assert "info (under jitter floor)" in format_comparison(rows)
        # One median above the floor: a real measurement, pass/fail
        # semantics apply again.
        rows = compare_payloads(
            _payload({"X3": 0.048}), _payload({"X3": 0.04})
        )
        (row,) = rows
        assert not row["informational"]
        assert not row["regressed"]  # within tolerance
        rows = compare_payloads(
            _payload({"X3": 0.2}), _payload({"X3": 0.04})
        )
        (row,) = rows
        assert not row["informational"]
        assert row["regressed"]

    def test_missing_experiments_never_regress(self):
        rows = compare_payloads(
            _payload({"X1": 0.5, "X2": 0.5}), _payload({"X1": 0.5})
        )
        by_name = {row["experiment"]: row for row in rows}
        assert by_name["X2"]["ratio"] is None
        assert not by_name["X2"]["regressed"]
        assert by_name["X2"]["warning"] == "missing from baseline"
        assert by_name["X1"]["warning"] is None

    def test_missing_from_current_is_flagged(self):
        rows = compare_payloads(
            _payload({"X1": 0.5}), _payload({"X1": 0.5, "X3": 0.2})
        )
        by_name = {row["experiment"]: row for row in rows}
        assert by_name["X3"]["ratio"] is None
        assert not by_name["X3"]["regressed"]
        assert by_name["X3"]["warning"] == "missing from current run"

    def test_unknown_experiment_keys_are_reported_not_dropped(self):
        """A payload from a different harness version (unknown keys)
        still produces rows, with a warning, instead of silently
        vanishing from the delta table."""
        rows = compare_payloads(
            _payload({"X1": 0.5, "X99": 1.0}),
            _payload({"X1": 0.5, "X99": 0.9}),
        )
        by_name = {row["experiment"]: row for row in rows}
        assert "X99" in by_name
        row = by_name["X99"]
        assert row["ratio"] == pytest.approx(1.0 / 0.9)
        assert not row["regressed"]
        assert "unknown experiment" in row["warning"]
        table = format_comparison(rows)
        assert "X99" in table
        assert "warning" in table

    def test_unknown_and_missing_warnings_combine(self):
        rows = compare_payloads(
            _payload({"X99": 1.0}), _payload({})
        )
        (row,) = rows
        assert "unknown experiment" in row["warning"]
        assert "missing from baseline" in row["warning"]
        assert row["ratio"] is None

    def test_warning_surfaces_in_delta_table(self):
        from repro.bench.harness import comparison_delta_table

        current = _payload({"X99": 1.0})
        baseline = _payload({"X99": 0.9})
        rows = compare_payloads(current, baseline)
        table = comparison_delta_table(current, baseline, rows)
        assert "warning" in table["X99"]
        assert "unknown experiment" in table["X99"]["warning"]

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            compare_payloads(_payload({}), _payload({}), tolerance=-0.1)

    def test_assert_no_regressions_raises_with_names(self):
        rows = compare_payloads(
            _payload({"X4": 10.0}), _payload({"X4": 1.0})
        )
        with pytest.raises(BenchmarkRegression, match="X4"):
            assert_no_regressions(rows)
        assert_no_regressions([])

    def test_format_comparison_mentions_verdicts(self):
        rows = compare_payloads(
            _payload({"X1": 0.5, "X4": 10.0}),
            _payload({"X1": 0.5, "X4": 1.0}),
        )
        table = format_comparison(rows)
        assert "REGRESSED" in table
        assert "ok" in table
        assert "X4" in table


class TestPayloadIO:
    def test_save_load_roundtrip(self, tmp_path):
        payload = _payload({"X1": 0.125})
        path = str(tmp_path / "BENCH_test.json")
        save_payload(payload, path)
        assert load_payload(path) == payload

    def test_saved_json_is_stable(self, tmp_path):
        path = str(tmp_path / "BENCH_test.json")
        save_payload(_payload({"X1": 0.125}), path)
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        assert text.endswith("\n")
        assert text == json.dumps(
            _payload({"X1": 0.125}), indent=2, sort_keys=True
        ) + "\n"

    def test_wrong_schema_rejected(self, tmp_path):
        path = str(tmp_path / "BENCH_bad.json")
        payload = _payload({})
        payload["schema"] = 99
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        with pytest.raises(ValueError):
            load_payload(path)

    def test_checked_in_payload_loads(self):
        """The committed BENCH_pr2.json stays loadable and claims the
        X4 speedup the acceptance gate requires on this hardware."""
        root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
        payload = load_payload(os.path.join(root, "BENCH_pr2.json"))
        counters = payload["experiments"]["X4"]["counters"]
        assert counters["speedup_vs_reference"] >= 1.0

    def test_checked_in_pr6_payload_covers_the_service(self):
        """BENCH_pr6.json carries the X15 eviction-churn run and its
        fleet-scale bit-identity verdict."""
        root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
        payload = load_payload(os.path.join(root, "BENCH_pr6.json"))
        counters = payload["experiments"]["X15"]["counters"]
        assert counters["all_tenants_detected"]
        assert counters["evictions"] > counters["tenants"] == 500
        rows = compare_payloads(payload, payload)
        assert not any(row["regressed"] for row in rows)

    def test_checked_in_pr7_payload_covers_columnar_matching(self):
        """BENCH_pr7.json carries the X16 columnar batch-matching run:
        a 10^6-event store matched bit-identically through both paths
        with at least the 5x speedup the acceptance gate requires."""
        root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
        payload = load_payload(os.path.join(root, "BENCH_pr7.json"))
        counters = payload["experiments"]["X16"]["counters"]
        assert counters["identical_to_reference"]
        assert counters["events"] == 1_000_000
        assert counters["speedup"] >= 5.0
        rows = compare_payloads(payload, payload)
        assert not any(row["regressed"] for row in rows)

    def test_checked_in_pr9_payload_covers_batched_frontier(self):
        """BENCH_pr9.json carries the X17 batched frontier run: a
        64-candidate frontier scanned through the object, single-dense
        and batched paths with identical match sets and at least the
        3x speedup the acceptance gate requires."""
        root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
        payload = load_payload(os.path.join(root, "BENCH_pr9.json"))
        counters = payload["experiments"]["X17"]["counters"]
        assert counters["identical_to_reference"]
        assert counters["candidates"] == 64
        assert counters["speedup_batched_vs_single_dense"] >= 3.0
        rows = compare_payloads(payload, payload)
        assert not any(row["regressed"] for row in rows)

    def test_checked_in_pr10_payload_covers_calendar_algebra(self):
        """BENCH_pr10.json carries the X18 calendar-algebra run:
        month/quarter/business-month TCG propagation and batched month
        clock matching, compiled vs sweep, bit-identical with at least
        the 5x clock-matching speedup the acceptance gate requires."""
        root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
        payload = load_payload(os.path.join(root, "BENCH_pr10.json"))
        counters = payload["experiments"]["X18"]["counters"]
        assert counters["identical_to_sweep"]
        assert counters["propagation_identical_to_sweep"]
        assert counters["events"] == 20_000
        assert counters["speedup_clock_vs_sweep"] >= 5.0
        rows = compare_payloads(payload, payload)
        assert not any(row["regressed"] for row in rows)
