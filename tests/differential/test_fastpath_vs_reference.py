"""Differential oracle: fast-path propagation vs the pure-Python
reference.

The fast engines (persistent matrices + incremental re-closure, with
or without the numpy kernel) are only allowed to exist because they
are *exactly* equal to the paper-faithful reference loop - same derived
intervals, same consistency verdicts - on every input.  These
properties enforce that contract case by case, plus the metamorphic
and soundness properties that hold for any correct implementation:

* tightening an input arc never loosens a derived interval;
* a brute-force witness of the original structure satisfies every
  derived constraint (Theorem 2 soundness).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints import (
    STP,
    TCG,
    EventStructure,
    InconsistentSTP,
    check_consistency_exact,
    have_numpy,
    propagate,
)
from repro.constraints.propagation import resolve_engine
from repro.granularity import standard_system
from repro.granularity.gregorian import SECONDS_PER_DAY

from ..strategies import rooted_dags

SYSTEM = standard_system()

FAST_ENGINES = [
    "fallback",
    pytest.param(
        "numpy",
        marks=pytest.mark.skipif(
            not have_numpy(), reason="numpy not importable"
        ),
    ),
]


@pytest.mark.parametrize("engine", FAST_ENGINES)
class TestEnginesExactlyEqual:
    """The core oracle: bit-identical intervals and verdicts."""

    @given(structure=rooted_dags())
    @settings(max_examples=200, deadline=None)
    def test_equal_on_random_structures(self, engine, structure):
        reference = propagate(structure, SYSTEM, engine="python")
        fast = propagate(structure, SYSTEM, engine=engine)
        assert fast.consistent == reference.consistent
        assert fast.groups == reference.groups
        assert fast.engine == engine
        assert reference.engine == "python"

    @given(structure=rooted_dags(), data=st.data())
    @settings(max_examples=200, deadline=None)
    def test_equal_after_injected_contradiction(self, engine, structure, data):
        """Inconsistent inputs refute identically (same verdict; the
        groups at the point of detection also agree)."""
        variables = structure.variables
        x = variables[0]
        y = variables[-1]
        constraints = dict(structure.constraints)
        arc = (x, y)
        extra = TCG(0, 0, SYSTEM.get("hour"))
        constraints[arc] = list(constraints.get(arc, ())) + [extra]
        structure = EventStructure(variables, constraints)
        reference = propagate(structure, SYSTEM, engine="python")
        fast = propagate(structure, SYSTEM, engine=engine)
        assert fast.consistent == reference.consistent
        assert fast.groups == reference.groups


class TestKernelsExactlyEqual:
    """The STP layer underneath: numpy closure == python closure."""

    @pytest.mark.skipif(not have_numpy(), reason="numpy not importable")
    @given(data=st.data())
    @settings(max_examples=200, deadline=None)
    def test_closure_matrices_identical(self, data):
        n = data.draw(st.integers(min_value=1, max_value=7))
        names = ["v%d" % i for i in range(n)]
        n_arcs = data.draw(st.integers(min_value=0, max_value=2 * n))
        constraints = []
        for _ in range(n_arcs):
            i = data.draw(st.integers(min_value=0, max_value=n - 1))
            j = data.draw(st.integers(min_value=0, max_value=n - 1))
            if i == j:
                continue
            lo = data.draw(st.integers(min_value=-50, max_value=50))
            span = data.draw(st.integers(min_value=0, max_value=60))
            constraints.append(((names[i], names[j]), lo, lo + span))
        outcomes = {}
        for kernel in ("python", "numpy"):
            stp = STP(names, kernel=kernel)
            try:
                for (x, y), lo, hi in constraints:
                    stp.add(x, y, lo, hi)
                stp.closure()
            except InconsistentSTP:
                outcomes[kernel] = "inconsistent"
            else:
                outcomes[kernel] = stp._dist
        assert outcomes["python"] == outcomes["numpy"]

    @pytest.mark.skipif(not have_numpy(), reason="numpy not importable")
    def test_large_magnitudes_fall_back_to_exact_python(self):
        """Bounds past the float64 exact-integer range must not go
        through float arithmetic; the kernel guard falls back."""
        big = 2 ** 55
        stp = STP(["a", "b", "c"], kernel="numpy")
        stp.add("a", "b", big, big + 1)
        stp.add("b", "c", big, big + 1)
        assert not stp._numpy_exact()
        stp.closure()
        assert stp.interval("a", "c") == (2 * big, 2 * big + 2)


@pytest.mark.parametrize("engine", FAST_ENGINES)
class TestMetamorphicTightening:
    """Tightening any input arc never loosens any derived interval."""

    @given(structure=rooted_dags(), data=st.data())
    @settings(max_examples=200, deadline=None)
    def test_tightened_outputs_nested(self, engine, structure, data):
        base = propagate(structure, SYSTEM, engine=engine)
        if not base.consistent:
            return
        arcs = sorted(structure.constraints)
        arc = arcs[data.draw(st.integers(0, len(arcs) - 1))]
        original = structure.constraints[arc][0]
        lo_bump = data.draw(st.integers(0, original.n - original.m))
        hi_cut = data.draw(
            st.integers(0, original.n - original.m - lo_bump)
        )
        tightened = TCG(
            original.m + lo_bump,
            original.n - hi_cut,
            original.granularity,
        )
        constraints = dict(structure.constraints)
        constraints[arc] = [tightened] + list(constraints[arc][1:])
        result = propagate(
            EventStructure(structure.variables, constraints),
            SYSTEM,
            engine=engine,
        )
        if not result.consistent:
            return  # tightening may reveal an inconsistency; never hides one
        for label, group in base.groups.items():
            new_group = result.groups.get(label, {})
            for pair, (lo, hi) in group.items():
                assert pair in new_group
                new_lo, new_hi = new_group[pair]
                assert new_lo >= lo
                assert new_hi <= hi


@pytest.mark.parametrize("engine", FAST_ENGINES)
class TestSoundnessVsBruteForce:
    """Theorem 2 soundness against the exact backtracking search."""

    @given(structure=rooted_dags(max_nodes=4))
    @settings(max_examples=200, deadline=None)
    def test_witness_satisfies_derived_constraints(self, engine, structure):
        result = propagate(structure, SYSTEM, engine=engine)
        report = check_consistency_exact(
            structure,
            SYSTEM,
            window_seconds=120 * SECONDS_PER_DAY,
            max_nodes=200_000,
        )
        if not report.completed or report.witness is None:
            return
        # A structure with a genuine occurrence can never be refuted.
        assert result.consistent
        witness = report.witness
        for x in structure.variables:
            for y in structure.variables:
                if x == y or not structure.has_path(x, y):
                    continue
                for derived in result.derived_tcgs(x, y):
                    assert derived.is_satisfied(witness[x], witness[y]), (
                        "witness %r violates derived %s on (%s, %s)"
                        % (witness, derived, x, y)
                    )


def test_resolve_engine_rejects_unknown():
    with pytest.raises(ValueError):
        resolve_engine("cuda")


def test_auto_resolves_to_an_available_engine():
    resolved = resolve_engine("auto")
    assert resolved == ("numpy" if have_numpy() else "fallback")


def test_counters_reported(system):
    """The fast path reports its closure and cache counters."""
    structure = EventStructure(
        ["a", "b"], {("a", "b"): [TCG(0, 3, system.get("day"))]}
    )
    result = propagate(structure, SYSTEM, engine="fallback")
    assert result.closures_full >= 1
    assert result.closures_incremental >= 0
    assert (
        result.conversion_cache_hits + result.conversion_cache_misses
        == result.conversions_performed
    )
