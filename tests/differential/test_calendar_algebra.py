"""Differential oracle for the calendar-algebra compiler (PR 10).

The algebra rules (Gregorian 400-year cycle, business-calendar
overlays, and the closed operators) are only allowed to exist because
their forms are **bit-identical** to the ground truth: the types' own
``tick_of``/``tick_bounds`` and the sweep size tables wherever the
sweep is exact.  Hypothesis drives random holidays, random instants,
random ``k`` and random operator expressions through both paths; a
second pass pins the pure-python batch kernel against the numpy one.
"""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.granularity import (
    BusinessDayType,
    CompiledSizeTable,
    ConversionCache,
    SizeTable,
    compile_normal_form,
    standard_system,
)
from repro.granularity.combinators import (
    FilteredType,
    GroupedType,
    NthSubgranuleType,
    ShiftedType,
    UnionType,
)
from repro.granularity.intersection import IntersectionType, business_hours
from repro.granularity.calendar import day, month, year
from repro.granularity.gregorian import (
    DAYS_PER_400_YEARS,
    MONTHS_PER_400_YEARS,
    SECONDS_PER_DAY,
)
from repro.granularity.normalform import clock_ticks_of

DAY = SECONDS_PER_DAY
CYCLE_SECONDS = DAYS_PER_400_YEARS * DAY

pytestmark = pytest.mark.skipif(
    os.environ.get("REPRO_SIZETABLE") == "sweep",
    reason="suite compiles forms; sweep mode disables the compiler",
)


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
def fresh(label):
    """A fresh stock type instance (no cross-example cached state)."""
    return standard_system(cache=ConversionCache()).get(label)


@st.composite
def holiday_bdays(draw):
    """Business days with a random (possibly empty) holiday set."""
    days = draw(
        st.lists(
            st.integers(min_value=0, max_value=120),
            max_size=8,
            unique=True,
        )
    )
    return BusinessDayType(holidays=days)


@st.composite
def calendar_expressions(draw):
    """Random compilable calendar expressions over small operands."""
    kind = draw(
        st.sampled_from(
            ["group", "filter", "intersect", "union", "shift", "nth"]
        )
    )
    if kind == "group":
        n = draw(st.integers(min_value=2, max_value=9))
        offset = draw(st.integers(min_value=0, max_value=5))
        return GroupedType(day(), n, offset=offset)
    if kind == "filter":
        modulus = draw(st.integers(min_value=2, max_value=9))
        residues = draw(
            st.sets(
                st.integers(min_value=0, max_value=modulus - 1),
                min_size=1,
                max_size=modulus,
            )
        )
        return FilteredType(
            day(),
            lambda i, m=modulus, rs=frozenset(residues): i % m in rs,
            "f-%d" % modulus,
            predicate_period=modulus,
        )
    if kind == "intersect":
        start = draw(st.integers(min_value=0, max_value=11))
        hours = draw(st.integers(min_value=1, max_value=12))
        return business_hours(
            draw(holiday_bdays()), start, start + hours
        )
    if kind == "union":
        bday = draw(holiday_bdays())
        weekend_day = draw(st.integers(min_value=5, max_value=6))
        weekend = FilteredType(
            day(),
            lambda i, w=weekend_day: i % 7 == w,
            "we-%d" % weekend_day,
            predicate_period=7,
        )
        return UnionType(bday, weekend)
    if kind == "shift":
        delta = draw(
            st.integers(min_value=-2 * DAY, max_value=2 * DAY).filter(
                bool
            )
        )
        return ShiftedType(day(), delta)
    weekday = draw(st.integers(min_value=0, max_value=6))
    n = draw(st.integers(min_value=1, max_value=4))
    weekdays = FilteredType(
        day(),
        lambda i, w=weekday: i % 7 == w,
        "wd-%d" % weekday,
        predicate_period=7,
    )
    return NthSubgranuleType(weekdays, month(), n)


# ----------------------------------------------------------------------
# Gregorian cycle types: conversions bit-identical to the calendar
# ----------------------------------------------------------------------
@pytest.mark.parametrize("factory", [month, year])
@given(data=st.data())
@settings(max_examples=150, deadline=None)
def test_gregorian_tick_conversions_identical(factory, data):
    ttype = factory()
    form = compile_normal_form(ttype)
    second = data.draw(
        st.integers(min_value=0, max_value=3 * CYCLE_SECONDS),
        label="second",
    )
    assert form.tick_of_instant(second) == ttype.tick_of(second)
    index = data.draw(
        st.integers(min_value=0, max_value=3 * form.period_ticks),
        label="index",
    )
    assert form.instant_of_tick(index) == ttype.tick_bounds(index)


_SWEEP_REFERENCES = {}


def full_cycle_sweep(label):
    """A sweep whose horizon covers a whole Gregorian cycle.

    The stock sweep horizon (512 ticks) never reaches a non-leap
    century year, so its month/year minima are only minima *within the
    window* - the compiled backend legitimately finds tighter (true)
    extremes, e.g. 37-month windows spanning February 2100.  An exact
    reference needs every cycle phase in view: horizon ``3P + 2`` with
    exact region ``k <= P`` (``n // 2`` for undeclared types).
    """
    sweep = _SWEEP_REFERENCES.get(label)
    if sweep is None:
        ttype = fresh(label)
        period = compile_normal_form(ttype).period_ticks
        sweep = SizeTable(ttype, horizon=3 * period + 2)
        _SWEEP_REFERENCES[label] = sweep
    return sweep


@pytest.mark.parametrize("label", ["month", "year"])
@given(data=st.data())
@settings(max_examples=60, deadline=None)
def test_gregorian_size_tables_match_sweep(label, data):
    """Sampled k: compiled values equal the full-cycle sweep's."""
    sweep = full_cycle_sweep(label)
    compiled = CompiledSizeTable(fresh(label))
    k = data.draw(st.integers(min_value=1, max_value=256), label="k")
    assert compiled.minsize(k) == sweep.minsize(k)
    assert compiled.maxsize(k) == sweep.maxsize(k)
    assert compiled.mingap(k) == sweep.mingap(k)
    span = data.draw(
        st.integers(min_value=1, max_value=sweep.minsize(200)),
        label="span",
    )
    assert compiled.min_k_with_minsize_at_least(
        span, cap=256
    ) == sweep.min_k_with_minsize_at_least(span, cap=256)
    assert compiled.min_k_with_maxsize_greater(
        span, cap=256
    ) == sweep.min_k_with_maxsize_greater(span, cap=256)


# ----------------------------------------------------------------------
# Business days with random holidays
# ----------------------------------------------------------------------
@given(bday=holiday_bdays(), data=st.data())
@settings(max_examples=120, deadline=None)
def test_business_days_with_random_holidays(bday, data):
    form = compile_normal_form(bday)
    assert form.exact_cover
    second = data.draw(
        st.integers(min_value=0, max_value=300 * DAY), label="second"
    )
    assert form.tick_of_instant(second) == bday.tick_of(second)
    index = data.draw(st.integers(min_value=0, max_value=200), label="index")
    assert form.instant_of_tick(index) == bday.tick_bounds(index)
    assert form.distance(second, second // 2) == bday.distance(
        second, second // 2
    )


@given(bday=holiday_bdays(), data=st.data())
@settings(max_examples=40, deadline=None)
def test_business_day_tables_match_sweep(bday, data):
    sweep = SizeTable(bday)
    compiled = CompiledSizeTable(bday)
    limit = sweep._exact_limit(sweep.horizon)
    k = data.draw(st.integers(min_value=1, max_value=limit), label="k")
    assert compiled.minsize(k) == sweep.minsize(k)
    assert compiled.maxsize(k) == sweep.maxsize(k)
    assert compiled.mingap(k) == sweep.mingap(k)


# ----------------------------------------------------------------------
# Random operator expressions
# ----------------------------------------------------------------------
@given(ttype=calendar_expressions(), data=st.data())
@settings(max_examples=120, deadline=None)
def test_random_expressions_compile_identically(ttype, data):
    form = compile_normal_form(ttype)
    index = data.draw(
        st.integers(min_value=0, max_value=2 * form.period_ticks + 20),
        label="index",
    )
    assert form.instant_of_tick(index) == ttype.tick_bounds(index)
    horizon = form.instant_of_tick(form.prefix_ticks + form.period_ticks)[1]
    second = data.draw(
        st.integers(min_value=0, max_value=2 * horizon + 10), label="second"
    )
    if form.exact_cover:
        assert form.tick_of_instant(second) == ttype.tick_of(second)


# ----------------------------------------------------------------------
# Batch kernel: numpy vs pure-python fallback, both vs scalar
# ----------------------------------------------------------------------
@given(
    ttype=st.one_of(
        holiday_bdays(),
        st.builds(month),
        calendar_expressions(),
    ),
    data=st.data(),
)
@settings(max_examples=80, deadline=None)
def test_batch_kernels_bit_identical(ttype, data):
    form = compile_normal_form(ttype)
    horizon = form.instant_of_tick(form.prefix_ticks + form.period_ticks)[1]
    seconds = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=2 * horizon + 10),
            max_size=40,
        ),
        label="seconds",
    )
    vec_ticks, vec_defined = form.ticks_of_instants(seconds)
    # Scalar reference.
    for second, tick, ok in zip(seconds, vec_ticks, vec_defined):
        z = form.tick_of_instant(second)
        assert int(ok) == (0 if z is None else 1)
        assert int(tick) == (0 if z is None else z)
    # Pure-python fallback kernel must agree exactly; _batch_arrays
    # returning None routes ticks_of_instants down the scalar loop.
    object.__setattr__(form, "_batch_cache", None)
    try:
        py_ticks, py_defined = form.ticks_of_instants(seconds)
    finally:
        object.__setattr__(form, "_batch_cache", False)
    assert [int(v) for v in py_ticks] == [int(v) for v in vec_ticks]
    assert [int(v) for v in py_defined] == [int(v) for v in vec_defined]


@given(data=st.data())
@settings(max_examples=30, deadline=None)
def test_clock_ticks_of_matches_type_path(data):
    """The routed batch API vs the per-element reference loop."""
    ttype = fresh("month")
    seconds = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=2 * CYCLE_SECONDS),
            max_size=30,
        ),
        label="seconds",
    )
    ticks, defined = clock_ticks_of(ttype, seconds)
    assert [int(v) for v in defined] == [1] * len(seconds)
    assert [int(v) for v in ticks] == [ttype.tick_of(s) for s in seconds]


# ----------------------------------------------------------------------
# The numpy cycle generator vs the pure-python reference
# ----------------------------------------------------------------------
def test_cycle_generator_matches_python_reference():
    from repro.granularity import algebra
    from repro.granularity.gregorian import (
        cycle_month_lengths,
        cycle_year_lengths,
    )

    months = [int(v) for v in algebra._cycle_lengths("months")]
    years = [int(v) for v in algebra._cycle_lengths("years")]
    assert months == list(cycle_month_lengths())
    assert years == list(cycle_year_lengths())
    assert sum(months) == DAYS_PER_400_YEARS
    assert sum(years) == DAYS_PER_400_YEARS
    assert len(months) == MONTHS_PER_400_YEARS


def test_cycle_generator_fallback_matches(monkeypatch):
    """Force the pure-python branch and compare the compiled form."""
    from repro.granularity import algebra

    reference = algebra._lower_month(month())
    monkeypatch.setattr(algebra, "_np", None)
    fallback = algebra._lower_month(month())
    assert fallback.firsts == reference.firsts
    assert fallback.lasts == reference.lasts
