"""Serial vs parallel discovery: the bit-identical-results guarantee.

The parallel engine's contract is that sharding, anchor screening and
worker fan-out are pure execution strategy: for ANY shard size, worker
count and event layout (including matches that straddle shard
boundaries), ``discover(parallel=N)`` returns the same assignments,
frequencies and work counters as the serial engine.  Hypothesis
searches for a counterexample; the pool tests then confirm the same on
real forked workers.
"""

from unittest import mock

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints import TCG, EventStructure
from repro.granularity import standard_system
from repro.mining import EventDiscoveryProblem, EventSequence, discover
from repro.parallel import fork_available

SYSTEM = standard_system()
LABELS = ["hour", "day"]


@pytest.fixture(autouse=True)
def _unkill_parallel(monkeypatch):
    """These tests exercise the parallel engine itself, so the ambient
    kill switch (e.g. the CI job running tier-1 under
    ``REPRO_PARALLEL=off``) must not force them serial."""
    monkeypatch.delenv("REPRO_PARALLEL", raising=False)


def _assignment_keys(outcome):
    return sorted(
        str(sorted(assignment.items()))
        for assignment in outcome.solution_assignments()
    )


def _frequency_map(outcome):
    return {
        str(sorted(cet.assignment.items())): freq
        for cet, freq in outcome.frequencies.items()
    }


def _assert_equivalent(serial, parallel):
    assert _assignment_keys(serial) == _assignment_keys(parallel)
    assert _frequency_map(serial) == _frequency_map(parallel)
    assert serial.candidates_evaluated == parallel.candidates_evaluated
    assert serial.automaton_starts == parallel.automaton_starts
    assert serial.stats == parallel.stats
    assert serial == parallel  # parallelism report is excluded by design


@st.composite
def parallel_cases(draw):
    shape = draw(st.sampled_from(["chain2", "chain3", "fan"]))
    if shape == "chain2":
        names = ["R", "A"]
        arcs = [("R", "A")]
    elif shape == "chain3":
        names = ["R", "A", "B"]
        arcs = [("R", "A"), ("A", "B")]
    else:
        names = ["R", "A", "B"]
        arcs = [("R", "A"), ("R", "B")]
    constraints = {}
    for arc in arcs:
        label = draw(st.sampled_from(LABELS))
        m = draw(st.integers(min_value=0, max_value=2))
        span = draw(st.integers(min_value=0, max_value=3))
        constraints[arc] = [TCG(m, m + span, SYSTEM.get(label))]
    structure = EventStructure(names, constraints)
    types = ["t%d" % i for i in range(draw(st.integers(1, 3)))]
    # Hour-grained slots: tight enough that shard boundaries regularly
    # fall inside a root's horizon window (the straddling case).
    slots = draw(
        st.lists(
            st.integers(min_value=0, max_value=12 * 24),
            min_size=4,
            max_size=28,
            unique=True,
        )
    )
    events = [
        ("r" if draw(st.booleans()) else draw(st.sampled_from(types)), s * 3600)
        for s in sorted(slots)
    ]
    confidence = draw(st.sampled_from([0.2, 0.5, 0.8]))
    problem = EventDiscoveryProblem(structure, confidence, "r")
    workers = draw(st.integers(min_value=2, max_value=4))
    shard_size = draw(st.sampled_from(["auto", 1, 2, 3, 7]))
    screen_depth = draw(st.sampled_from([0, 1, 2]))
    return problem, EventSequence(events), workers, shard_size, screen_depth


class TestParallelSerialEquivalenceHypothesis:
    @given(case=parallel_cases())
    @settings(max_examples=200, deadline=None)
    def test_discover_is_bit_identical(self, case):
        problem, sequence, workers, shard_size, screen_depth = case
        serial = discover(
            problem, sequence, SYSTEM, screen_depth=screen_depth
        )
        # Forcing the inline executor keeps 200 examples fast; the task
        # grid, sharding, screening and merge logic are identical to
        # the pool path (TestRealWorkerPool covers the fork boundary).
        with mock.patch(
            "repro.parallel.engine.fork_available", return_value=False
        ):
            parallel = discover(
                problem,
                sequence,
                SYSTEM,
                screen_depth=screen_depth,
                parallel=workers,
                shard_size=shard_size,
            )
        if parallel.parallelism is not None:
            # None means the pipeline exited before the scan (no
            # reference events, inconsistency, or screening emptied a
            # pool) - equivalence still holds below.
            assert parallel.parallelism["executor"] == "inline"
        _assert_equivalent(serial, parallel)


@pytest.mark.skipif(
    not fork_available(), reason="no fork start method on this platform"
)
class TestRealWorkerPool:
    def _case(self):
        hour = SYSTEM.get("hour")
        structure = EventStructure(
            ["R", "A", "B"],
            {
                ("R", "A"): [TCG(0, 2, hour)],
                ("A", "B"): [TCG(0, 2, hour)],
            },
        )
        events = []
        for i in range(20):
            t = i * 10_000
            events.append(("r", t))
            if i % 2 == 0:
                events.append(("a", t + 3_000))
            if i % 3 != 2:
                events.append(("b", t + 6_500))
        sequence = EventSequence(sorted(events, key=lambda e: e[1]))
        return EventDiscoveryProblem(structure, 0.2, "r"), sequence

    @pytest.mark.parametrize("shard_size", ["auto", 1, 3])
    def test_two_worker_pool_is_bit_identical(self, shard_size):
        problem, sequence = self._case()
        serial = discover(problem, sequence, SYSTEM)
        parallel = discover(
            problem,
            sequence,
            SYSTEM,
            parallel=2,
            shard_size=shard_size,
        )
        assert parallel.parallelism["executor"] == "pool"
        assert parallel.parallelism["workers"] == 2
        _assert_equivalent(serial, parallel)

    def test_kill_switch_forces_serial_even_when_requested(
        self, monkeypatch
    ):
        problem, sequence = self._case()
        monkeypatch.setenv("REPRO_PARALLEL", "off")
        outcome = discover(problem, sequence, SYSTEM, parallel=4)
        assert outcome.parallelism is None
        monkeypatch.delenv("REPRO_PARALLEL")
        _assert_equivalent(discover(problem, sequence, SYSTEM), outcome)
