"""Differential oracle: compiled size tables vs the window sweep.

The compiled backend (periodic normal forms, closed-form
minsize/maxsize/mingap, bisection tick conversion) is only allowed to
exist because it is *exactly* equal to the sweep reference wherever
the sweep is exact - same table values, same search answers, same
conversion outcomes.  The sweep reference here is built with a horizon
of at least ``4 * period + 8`` so its exact region covers every probed
``k`` (up to three periods); the compiled backend is exact for every
``k`` by construction.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.granularity import (
    CompiledSizeTable,
    ConversionCache,
    SizeTable,
    compile_normal_form,
    convert_interval,
    standard_system,
)
from repro.granularity.base import UniformType
from repro.granularity.normalform import build_size_table, cached_normal_form
from repro.granularity.periodic import PeriodicPatternType

BACKENDS = ["compiled", "auto"]


# ----------------------------------------------------------------------
# Generated periodic types
# ----------------------------------------------------------------------
@st.composite
def periodic_types(draw):
    """Small random periodic pattern types (P <= 6 ticks per cycle)."""
    nseg = draw(st.integers(min_value=1, max_value=6))
    # 2*nseg distinct cut points make nseg disjoint ordered segments.
    cycle = draw(st.integers(min_value=2 * nseg, max_value=96))
    cuts = draw(
        st.lists(
            st.integers(min_value=0, max_value=cycle),
            min_size=2 * nseg,
            max_size=2 * nseg,
            unique=True,
        )
    )
    cuts.sort()
    segments = [
        (cuts[2 * i], cuts[2 * i + 1] - cuts[2 * i]) for i in range(nseg)
    ]
    phase = draw(st.integers(min_value=0, max_value=30))
    return PeriodicPatternType("gen", cycle, segments, phase=phase)


@st.composite
def uniform_types(draw):
    seconds = draw(st.integers(min_value=1, max_value=90))
    phase = draw(st.integers(min_value=0, max_value=45))
    return UniformType("genu", seconds, phase=phase)


def sweep_reference(ttype):
    """A sweep table whose exact region covers every probed k.

    The sweep extrapolates (soundly but inexactly) beyond
    ``horizon - period + 1``; probing k up to three periods plus the
    conversion bounds (k <= n + 1 <= 25 here) therefore needs
    ``horizon >= max(4P + 8, 32 + P)``.
    """
    period_ticks, _ = ttype.period_info()
    return SizeTable(
        ttype, horizon=max(4 * period_ticks + 8, 32 + period_ticks)
    )


# ----------------------------------------------------------------------
# Table-value identity
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
class TestTablesExactlyEqual:
    @given(ttype=periodic_types(), data=st.data())
    @settings(max_examples=120, deadline=None)
    def test_periodic_values_identical(self, backend, ttype, data):
        period_ticks, _ = ttype.period_info()
        reference = sweep_reference(ttype)
        compiled = build_size_table(ttype, backend=backend)
        assert compiled.backend == "compiled"
        k = data.draw(
            st.integers(min_value=1, max_value=3 * period_ticks),
            label="k",
        )
        assert compiled.minsize(k) == reference.minsize(k)
        assert compiled.maxsize(k) == reference.maxsize(k)
        assert compiled.mingap(k) == reference.mingap(k)

    @given(ttype=uniform_types(), data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_uniform_values_identical(self, backend, ttype, data):
        reference = sweep_reference(ttype)
        compiled = build_size_table(ttype, backend=backend)
        k = data.draw(st.integers(min_value=1, max_value=12), label="k")
        assert compiled.minsize(k) == reference.minsize(k)
        assert compiled.maxsize(k) == reference.maxsize(k)
        assert compiled.mingap(k) == reference.mingap(k)

    @given(ttype=periodic_types(), data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_searches_identical(self, backend, ttype, data):
        period_ticks, period_seconds = ttype.period_info()
        reference = sweep_reference(ttype)
        compiled = build_size_table(ttype, backend=backend)
        # Targets small enough that both searches resolve inside the
        # sweep's exact region (answers stay below ~3 periods of ticks).
        target = data.draw(
            st.integers(min_value=1, max_value=2 * period_seconds),
            label="target",
        )
        assert compiled.min_k_with_minsize_at_least(
            target
        ) == reference.min_k_with_minsize_at_least(target)
        assert compiled.min_k_with_maxsize_greater(
            target
        ) == reference.min_k_with_maxsize_greater(target)


# ----------------------------------------------------------------------
# Conversion identity (Figure 3 and the direct boundary scan)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
class TestConversionsExactlyEqual:
    @given(
        ttype=periodic_types(),
        m=st.integers(min_value=0, max_value=12),
        span=st.integers(min_value=0, max_value=12),
        target_seconds=st.integers(min_value=1, max_value=60),
    )
    @settings(max_examples=100, deadline=None)
    def test_figure3_identical(self, backend, ttype, m, span, target_seconds):
        target = UniformType("tgt", target_seconds)
        src_sweep = sweep_reference(ttype)
        tgt_sweep = sweep_reference(target)
        src_fast = build_size_table(ttype, backend=backend)
        tgt_fast = build_size_table(target, backend=backend)
        expected = convert_interval(m, m + span, src_sweep, tgt_sweep)
        actual = convert_interval(m, m + span, src_fast, tgt_fast)
        assert actual == expected

    @given(
        ttype=periodic_types(),
        m=st.integers(min_value=0, max_value=8),
        span=st.integers(min_value=0, max_value=8),
        mode=st.sampled_from(["direct", "figure3"]),
    )
    @settings(max_examples=100, deadline=None)
    def test_system_convert_identical(self, backend, ttype, m, span, mode):
        sweep_sys = standard_system(
            cache=ConversionCache(), sizetable_backend="sweep"
        )
        fast_sys = standard_system(
            cache=ConversionCache(), sizetable_backend=backend
        )
        for system in (sweep_sys, fast_sys):
            system.register(ttype)
        for source, target in (
            (ttype.label, "minute"),
            ("minute", ttype.label),
            (ttype.label, "hour"),
        ):
            expected = sweep_sys.convert(m, m + span, source, target, mode)
            actual = fast_sys.convert(m, m + span, source, target, mode)
            assert actual == expected, (source, target, mode)


# ----------------------------------------------------------------------
# tick_of / instant_of identity on exact-cover forms
# ----------------------------------------------------------------------
@given(ttype=periodic_types(), data=st.data())
@settings(max_examples=100, deadline=None)
def test_tick_conversion_identical(ttype, data):
    form = compile_normal_form(ttype)
    assert form.exact_cover
    _, period_seconds = ttype.period_info()
    second = data.draw(
        st.integers(min_value=0, max_value=4 * period_seconds + 60),
        label="second",
    )
    assert form.tick_of_instant(second) == ttype.tick_of(second)
    index = data.draw(st.integers(min_value=0, max_value=40), label="index")
    assert form.instant_of_tick(index) == ttype.tick_bounds(index)
    t1 = data.draw(
        st.integers(min_value=0, max_value=2 * period_seconds), label="t1"
    )
    t2 = data.draw(
        st.integers(min_value=0, max_value=2 * period_seconds), label="t2"
    )
    assert form.distance(t1, t2) == ttype.distance(t1, t2)


# ----------------------------------------------------------------------
# Exhaustive checks for the stock Gregorian/business types
# ----------------------------------------------------------------------
# Since the calendar-algebra compiler, every stock type lowers; the
# value is the period each is expected to lower *to*.
STOCK_EXPECTATIONS = {
    "second": 1,
    "minute": 1,
    "hour": 1,
    "day": 1,
    "week": 1,
    "month": 4800,
    "year": 400,
    "b-day": 5,
    "b-week": 1,
    "business-month": 4800,
}

# Types cheap enough for the exhaustive 3-period sweep comparison
# below (the 4800-tick Gregorian-cycle types are covered by the
# sampled Hypothesis suite in test_calendar_algebra.py instead).
SMALL_STOCK = ["second", "minute", "hour", "day", "week", "b-day"]


def test_stock_types_lower_exactly_as_expected():
    system = standard_system(cache=ConversionCache())
    for label, period_ticks in STOCK_EXPECTATIONS.items():
        form = cached_normal_form(system.get(label))
        assert form is not None, label
        assert form.period_ticks == period_ticks, label


@pytest.mark.parametrize("label", SMALL_STOCK)
def test_stock_types_exhaustively_identical(label):
    system = standard_system(cache=ConversionCache())
    ttype = system.get(label)
    period_ticks, _ = ttype.period_info()
    reference = sweep_reference(ttype)
    compiled = CompiledSizeTable(ttype)
    for k in range(1, 3 * period_ticks + 2):
        assert compiled.minsize(k) == reference.minsize(k), (label, k)
        assert compiled.maxsize(k) == reference.maxsize(k), (label, k)
        assert compiled.mingap(k) == reference.mingap(k), (label, k)
    form = compiled.form
    step = max(1, form.period_seconds // 97)
    for second in range(0, 2 * form.period_seconds, step):
        assert form.tick_of_instant(second) == ttype.tick_of(second), (
            label,
            second,
        )


def test_standard_system_conversions_identical_across_backends():
    """Every stock pair, both modes, a spread of intervals.

    Horizon 2600 keeps every search probe (worst case: years converted
    onto business days, ~2048 ticks) inside the sweep's exact region -
    beyond it the sweep *extrapolates* and the exact compiled values
    may legitimately produce tighter (still sound) intervals.
    """
    sweep_sys = standard_system(
        cache=ConversionCache(), sizetable_backend="sweep", horizon=2600
    )
    fast_sys = standard_system(
        cache=ConversionCache(), sizetable_backend="auto", horizon=2600
    )
    labels = sweep_sys.labels()
    for source in labels:
        for target in labels:
            if source == target:
                continue
            for m, n in ((0, 1), (1, 3), (2, 2)):
                for mode in ("direct", "figure3"):
                    expected = sweep_sys.convert(m, n, source, target, mode)
                    actual = fast_sys.convert(m, n, source, target, mode)
                    assert actual == expected, (source, target, m, n, mode)
