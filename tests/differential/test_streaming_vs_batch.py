"""Differential oracle: StreamingMatcher vs the batch TagMatcher.

The online matcher must detect exactly the anchors the batch scan
finds on the same (time-sorted) sequence - and keep doing so when
events arrive out of order within a ``max_lateness`` bound, because
the reorder buffer re-sorts them before the automaton sees anything.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata import StreamingMatcher, TagMatcher, build_tag
from repro.constraints import TCG, ComplexEventType, EventStructure
from repro.granularity import standard_system
from repro.granularity.gregorian import SECONDS_PER_HOUR
from repro.mining.events import EventSequence

H = SECONDS_PER_HOUR

SYSTEM = standard_system()


def _chain_cet() -> ComplexEventType:
    hour = SYSTEM.get("hour")
    structure = EventStructure(
        ["A", "B", "C"],
        {
            ("A", "B"): [TCG(0, 2, hour)],
            ("B", "C"): [TCG(0, 2, hour)],
        },
    )
    return ComplexEventType(structure, {"A": "a", "B": "b", "C": "c"})


def _diamond_cet() -> ComplexEventType:
    bday = SYSTEM.get("b-day")
    hour = SYSTEM.get("hour")
    week = SYSTEM.get("week")
    structure = EventStructure(
        ["X0", "X1", "X2", "X3"],
        {
            ("X0", "X1"): [TCG(1, 1, bday)],
            ("X1", "X3"): [TCG(0, 1, week)],
            ("X0", "X2"): [TCG(0, 5, bday)],
            ("X2", "X3"): [TCG(0, 8, hour)],
        },
    )
    return ComplexEventType(
        structure, {"X0": "a", "X1": "b", "X2": "c", "X3": "d"}
    )


CETS = {"chain": _chain_cet(), "diamond": _diamond_cet()}

ALPHABET = ["a", "b", "c", "d", "noise"]


@st.composite
def event_streams(draw, min_gap: int = 0, max_events: int = 25):
    """A time-sorted list of (etype, time) over the shared alphabet."""
    count = draw(st.integers(min_value=0, max_value=max_events))
    time = draw(st.integers(min_value=0, max_value=3 * H))
    events = []
    for _ in range(count):
        symbol = draw(st.sampled_from(ALPHABET))
        events.append((symbol, time))
        time += draw(st.integers(min_value=min_gap, max_value=3 * H))
    return events


def _batch_anchor_times(cet, events):
    sequence = EventSequence(events)
    matcher = TagMatcher(build_tag(cet, system=SYSTEM))
    return sorted(
        sequence[index].time for index in matcher.matching_roots(sequence)
    )


@pytest.mark.parametrize("pattern", sorted(CETS))
class TestStreamingEqualsBatch:
    @given(events=event_streams())
    @settings(max_examples=200, deadline=None)
    def test_same_anchors_in_order_delivery(self, pattern, events):
        cet = CETS[pattern]
        streaming = StreamingMatcher(build_tag(cet, system=SYSTEM))
        detections = streaming.feed_sequence(EventSequence(events))
        detections.extend(streaming.flush())
        assert sorted(d.anchor_time for d in detections) == (
            _batch_anchor_times(cet, events)
        )

    @given(events=event_streams())
    @settings(max_examples=200, deadline=None)
    def test_detection_bindings_are_occurrences(self, pattern, events):
        """Every streamed detection's bindings satisfy every TCG of the
        pattern (so the two matchers agree on *what* they found, not
        just on how many anchors)."""
        cet = CETS[pattern]
        structure = cet.structure
        streaming = StreamingMatcher(build_tag(cet, system=SYSTEM))
        detections = streaming.feed_sequence(EventSequence(events))
        detections.extend(streaming.flush())
        for detection in detections:
            bindings = detection.bindings
            assert bindings[structure.root] == detection.anchor_time
            for (x, y), tcgs in structure.constraints.items():
                for constraint in tcgs:
                    assert constraint.is_satisfied(bindings[x], bindings[y])

    @given(events=event_streams(min_gap=1), data=st.data())
    @settings(max_examples=200, deadline=None)
    def test_same_anchors_under_bounded_reordering(
        self, pattern, events, data
    ):
        """Deliveries jittered by at most ``max_lateness`` seconds are
        re-sorted by the reorder buffer: same detections as the batch
        scan of the sorted sequence, nothing dropped."""
        cet = CETS[pattern]
        lateness = data.draw(st.integers(min_value=0, max_value=2 * H))
        jitter = [
            data.draw(st.integers(min_value=0, max_value=lateness))
            for _ in events
        ]
        delivery = [
            event
            for _, event in sorted(
                zip(jitter, events), key=lambda pair: pair[1][1] + pair[0]
            )
        ]
        streaming = StreamingMatcher(
            build_tag(cet, system=SYSTEM), max_lateness=lateness
        )
        detections = []
        for etype, time in delivery:
            detections.extend(streaming.feed(etype, time))
        detections.extend(streaming.flush())
        assert streaming.late_events_dropped == 0
        assert sorted(d.anchor_time for d in detections) == (
            _batch_anchor_times(cet, events)
        )

    def test_shuffled_beyond_lateness_drops_but_never_invents(self, pattern):
        """Arbitrary shuffling with a finite buffer may lose matches,
        but every detection that survives is one the batch scan finds."""
        cet = CETS[pattern]
        rng = random.Random(11)
        events = [
            (rng.choice(ALPHABET), t * H // 2) for t in range(40)
        ]
        delivery = list(events)
        rng.shuffle(delivery)
        streaming = StreamingMatcher(
            build_tag(cet, system=SYSTEM), max_lateness=H
        )
        detections = []
        for etype, time in delivery:
            detections.extend(streaming.feed(etype, time))
        detections.extend(streaming.flush())
        batch_times = _batch_anchor_times(cet, events)
        for detection in detections:
            assert detection.anchor_time in batch_times
