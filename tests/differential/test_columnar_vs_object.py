"""Differential oracle: columnar batch matching vs the object path.

The columnar backend (``REPRO_COLUMNAR=on``) is only allowed to exist
because it is *bit-identical* to the object-based reference: same match
sets, same bindings, same anchor-index answers, same mining outcomes.
Hypothesis generates the stores and the patterns and shrinks any
disagreement to a minimal counterexample; the ``kernel`` fixture runs
every property under both the numpy and the pure-Python ``array``
kernels in one process (CI additionally runs the whole suite under
``REPRO_NO_NUMPY=1``).

Duplicate timestamps are generated on purpose (times are drawn with
replacement) and horizons are drawn from *realised event-time
differences*, so deadline comparisons land exactly on event boundaries
- the straddling cases where an off-by-one in the bisection cut would
show up.
"""

import os
from contextlib import contextmanager

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.store.columnar as columnar_module
from repro.automata import TagMatcher, build_tag
from repro.constraints import TCG, ComplexEventType, EventStructure
from repro.granularity import standard_system
from repro.mining.discovery import EventDiscoveryProblem, discover
from repro.mining.events import Event, EventSequence
from repro.store import ColumnarEventStore
from repro.store.anchorindex import AnchorIndex

from ..strategies import rooted_dags

SYSTEM = standard_system()

KERNELS = ["numpy", "fallback"]

RELAXED = settings(
    max_examples=200,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


@pytest.fixture(params=KERNELS)
def kernel(request, monkeypatch):
    """Run the test under one columnar kernel.

    ``fallback`` nulls the module's numpy binding, which every kernel
    branch consults dynamically - fresh views built under the patch use
    ``array('q')`` columns and bisect scans.
    """
    if request.param == "numpy":
        if columnar_module._np is None:
            pytest.skip("numpy unavailable")
    else:
        monkeypatch.setattr(columnar_module, "_np", None)
    return request.param


@contextmanager
def columnar_mode(mode):
    previous = os.environ.get("REPRO_COLUMNAR")
    os.environ["REPRO_COLUMNAR"] = mode
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop("REPRO_COLUMNAR", None)
        else:
            os.environ["REPRO_COLUMNAR"] = previous


# ----------------------------------------------------------------------
# Generators
# ----------------------------------------------------------------------
@st.composite
def stores_and_patterns(draw):
    """A random pattern plus a random store, duplicates included."""
    structure = draw(rooted_dags(max_nodes=4))
    types = ["e%d" % i for i in range(draw(st.integers(1, 3)))]
    assignment = {
        variable: draw(st.sampled_from(types))
        for variable in structure.variables
    }
    # Times drawn WITH replacement on a coarse grid: duplicate
    # timestamps are likely, which is exactly the tie-handling the
    # plan's bisect cuts must get right.
    slots = draw(
        st.lists(st.integers(0, 400), min_size=2, max_size=25)
    )
    events = [
        Event(draw(st.sampled_from(types + ["noise"])), slot * 1800)
        for slot in slots
    ]
    sequence = EventSequence(events)
    # Horizons drawn from realised time differences (plus a +-1 jitter
    # sometimes) make the deadline land exactly on event boundaries.
    horizon = None
    if draw(st.booleans()) and len(sequence) >= 2:
        i = draw(st.integers(0, len(sequence) - 2))
        j = draw(st.integers(i + 1, len(sequence) - 1))
        jitter = draw(st.sampled_from([-1, 0, 0, 0, 1]))
        horizon = max(0, sequence[j].time - sequence[i].time + jitter)
    strict = draw(st.booleans())
    return ComplexEventType(structure, assignment), sequence, horizon, strict


# ----------------------------------------------------------------------
# Property 1: match sets and bindings
# ----------------------------------------------------------------------
class TestMatchSets:
    @given(case=stores_and_patterns())
    @RELAXED
    def test_match_sets_and_bindings_identical(self, kernel, case):
        cet, sequence, horizon, strict = case
        matcher = TagMatcher(
            build_tag(cet, system=SYSTEM),
            strict=strict,
            horizon_seconds=horizon,
        )
        with columnar_mode("off"):
            roots_object = list(matcher.matching_roots(sequence))
            reference = {
                index: matcher.match_from(sequence, index)
                for index in sequence.occurrence_indices(
                    matcher.build.root_symbol
                )
            }
        with columnar_mode("on"):
            roots_columnar = list(matcher.matching_roots(sequence))
            runtime = matcher._columnar_runtime(sequence)
            assert runtime is not None
            for index, expected in reference.items():
                matched, bindings = runtime.match(index)
                assert matched == expected.matched, (
                    "index %d: columnar=%s object=%s" % (
                        index, matched, expected.matched,
                    )
                )
                assert bindings == expected.bindings
        assert roots_columnar == roots_object

    @given(case=stores_and_patterns())
    @RELAXED
    def test_anchor_screen_preserves_match_set(self, kernel, case):
        """Requirements derived from realised matches must not drop
        roots: the screened matching_roots equals the unscreened one
        when requirements are sound (here: the trivially sound
        whole-span window for each non-root variable)."""
        cet, sequence, horizon, strict = case
        if not len(sequence):
            return
        lo, hi = sequence.span()
        width = hi - lo
        requirements = [
            (cet.assignment[variable], -width, width)
            for variable in cet.structure.variables
            if variable != cet.structure.root
        ]
        build = build_tag(cet, system=SYSTEM)
        screened = TagMatcher(
            build,
            strict=strict,
            horizon_seconds=horizon,
            anchor_requirements=requirements,
        )
        plain = TagMatcher(build, strict=strict, horizon_seconds=horizon)
        with columnar_mode("on"):
            got = list(screened.matching_roots(sequence))
        with columnar_mode("off"):
            expected = list(plain.matching_roots(sequence))
        assert got == expected


# ----------------------------------------------------------------------
# Property 2: anchor-index postings and window queries
# ----------------------------------------------------------------------
@st.composite
def stores_and_windows(draw):
    types = ["e%d" % i for i in range(draw(st.integers(1, 4)))]
    slots = draw(st.lists(st.integers(0, 500), min_size=0, max_size=40))
    events = [
        Event(draw(st.sampled_from(types)), slot * 900)
        for slot in slots
    ]
    sequence = EventSequence(events)
    windows = draw(
        st.lists(
            st.tuples(
                st.sampled_from(types + ["absent"]),
                st.integers(-1000, 500 * 900),
                st.integers(-1000, 500 * 900),
            ),
            min_size=1,
            max_size=8,
        )
    )
    return sequence, windows


class TestAnchorIndexParity:
    @given(case=stores_and_windows())
    @RELAXED
    def test_postings_and_window_queries_identical(self, kernel, case):
        sequence, windows = case
        view = ColumnarEventStore.from_sequence(sequence)
        index = AnchorIndex.from_events(
            (e.etype, e.time) for e in sequence
        )
        assert sorted(view.types()) == sorted(index.types())
        for etype in index.types():
            positions, times = view.postings(etype)
            assert positions == index.positions(etype)
            assert times == tuple(
                sequence[p].time for p in index.positions(etype)
            )
        for etype, start, stop in windows:
            assert view.has_in_window(etype, start, stop) == \
                index.has_in_window(etype, start, stop)
            assert view.count_in_window(etype, start, stop) == \
                index.count_in_window(etype, start, stop)
            assert view.positions_in_window(etype, start, stop) == \
                index.positions_in_window(etype, start, stop)
            if not view.may_contain(etype, start, stop):
                # may_contain must stay a sound over-approximation.
                assert not view.has_in_window(etype, start, stop)

    @given(case=stores_and_windows())
    @RELAXED
    def test_screen_anchors_equals_per_anchor_viability(
        self, kernel, case
    ):
        sequence, windows = case
        if not len(sequence):
            return
        view = ColumnarEventStore.from_sequence(sequence)
        index = AnchorIndex.from_events(
            (e.etype, e.time) for e in sequence
        )
        anchor_times = [e.time for e in sequence]
        requirements = [
            (etype, min(lo, hi), max(lo, hi))
            for etype, lo, hi in windows[:3]
        ]
        mask = view.screen_anchors(anchor_times, requirements)
        assert mask == [
            index.viable(time, requirements) for time in anchor_times
        ]


# ----------------------------------------------------------------------
# Property 3: mining outcomes
# ----------------------------------------------------------------------
@st.composite
def mining_cases(draw):
    hour = SYSTEM.get("hour")
    m1 = draw(st.integers(0, 2))
    m2 = draw(st.integers(0, 2))
    structure = EventStructure(
        ["X0", "X1", "X2"],
        {
            ("X0", "X1"): [TCG(m1, m1 + draw(st.integers(0, 2)), hour)],
            ("X1", "X2"): [TCG(m2, m2 + draw(st.integers(0, 2)), hour)],
        },
    )
    types = ["ref", "a", "b"]
    slots = draw(st.lists(st.integers(0, 60), min_size=3, max_size=25))
    events = [
        Event(draw(st.sampled_from(types)), slot * 1800)
        for slot in slots
    ]
    confidence = draw(st.sampled_from([0.0, 0.25, 0.5]))
    return structure, EventSequence(events), confidence


def _outcome_fingerprint(outcome):
    return (
        sorted(
            tuple(sorted(cet.assignment.items()))
            for cet in outcome.solutions
        ),
        {
            tuple(sorted(cet.assignment.items())): frequency
            for cet, frequency in outcome.frequencies.items()
        },
        outcome.candidates_evaluated,
        outcome.automaton_starts,
    )


class TestMiningParity:
    @given(case=mining_cases())
    @RELAXED
    def test_mining_outcomes_identical(self, kernel, case):
        structure, sequence, confidence = case
        problem = EventDiscoveryProblem(
            structure=structure,
            min_confidence=confidence,
            reference_type="ref",
            candidates={"X1": frozenset(["a", "b"]), "X2": None},
        )
        with columnar_mode("on"):
            fast = discover(problem, sequence, SYSTEM)
        with columnar_mode("off"):
            reference = discover(problem, sequence, SYSTEM)
        assert _outcome_fingerprint(fast) == _outcome_fingerprint(
            reference
        )


# ----------------------------------------------------------------------
# Targeted edges: horizon straddling, duplicates, granularity gaps
# ----------------------------------------------------------------------
def _chain_cet(gap_lo, gap_hi, granularity="hour"):
    g = SYSTEM.get(granularity)
    structure = EventStructure(
        ["X0", "X1"], {("X0", "X1"): [TCG(gap_lo, gap_hi, g)]}
    )
    return ComplexEventType(structure, {"X0": "A", "X1": "B"})


class TestTargetedEdges:
    def assert_parity(self, matcher, sequence):
        with columnar_mode("off"):
            expected = list(matcher.matching_roots(sequence))
        with columnar_mode("on"):
            got = list(matcher.matching_roots(sequence))
        assert got == expected
        return expected

    def test_deadline_exactly_on_match_event(self, kernel):
        cet = _chain_cet(0, 2)
        sequence = EventSequence(
            [Event("A", 0), Event("B", 7200)]
        )
        # deadline == the B event's time: included on both paths.
        matcher = TagMatcher(
            build_tag(cet, system=SYSTEM), horizon_seconds=7200
        )
        assert self.assert_parity(matcher, sequence) == [0]
        # one second short: excluded on both paths.
        matcher = TagMatcher(
            build_tag(cet, system=SYSTEM), horizon_seconds=7199
        )
        assert self.assert_parity(matcher, sequence) == []

    def test_duplicate_timestamps_at_deadline(self, kernel):
        cet = _chain_cet(1, 1)
        sequence = EventSequence(
            [
                Event("A", 0),
                Event("B", 3600),
                Event("B", 3600),
                Event("A", 3600),
                Event("B", 7200),
            ]
        )
        for horizon in (3600, 3599, 7200, None):
            matcher = TagMatcher(
                build_tag(cet, system=SYSTEM), horizon_seconds=horizon
            )
            self.assert_parity(matcher, sequence)

    def test_strict_granularity_gap_kills_runs_on_both_paths(
        self, kernel
    ):
        """b-day gaps: a weekend event kills strict runs (even though
        nothing consumes it) and is ignored by lazy runs."""
        day = 86400
        cet = _chain_cet(1, 5, granularity="b-day")
        sequence = EventSequence(
            [
                Event("A", 0),  # Monday
                Event("noise", 5 * day),  # Saturday: the gap
                Event("B", 7 * day),  # next Monday
            ]
        )
        for strict in (False, True):
            matcher = TagMatcher(
                build_tag(cet, system=SYSTEM), strict=strict
            )
            roots = self.assert_parity(matcher, sequence)
            assert roots == ([] if strict else [0])

    def test_strict_uncovered_root_rejected_on_both_paths(self, kernel):
        day = 86400
        cet = _chain_cet(1, 5, granularity="b-day")
        sequence = EventSequence(
            [Event("A", 5 * day), Event("B", 7 * day)]  # Saturday root
        )
        for strict in (False, True):
            matcher = TagMatcher(
                build_tag(cet, system=SYSTEM), strict=strict
            )
            self.assert_parity(matcher, sequence)

    def test_eventstore_columnar_view_and_invalidation(self, kernel):
        from repro.store import EventStore

        store = EventStore()
        store.append("A", 10, {"k": 1})
        store.append("B", 20)
        view = store.columnar()
        assert len(view) == 2
        assert view.attributes_at(0) == {"k": 1}
        assert view.record_id_at(1) == 1
        assert store.columnar() is view  # cached
        store.append("A", 30)
        fresh = store.columnar()
        assert fresh is not view  # any write invalidates
        assert len(fresh) == 3
