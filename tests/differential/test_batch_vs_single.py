"""Differential oracle: batched frontier scanning vs single-candidate.

``REPRO_BATCH=off`` is the differential reference: the banked
:class:`~repro.automata.dense.DenseBatch` tables and the
:class:`~repro.automata.dense.BatchRuntime` frontier sweep are only
allowed to exist because they are *bit-identical* to running each
candidate's dense automaton alone - same match sets, same bindings,
same support counts, same mining fingerprints.  Hypothesis generates
candidate frontiers (several assignments of one structure, mixed
granularities, duplicate timestamps) and shrinks any disagreement; the
``kernel`` fixture replays every property under both the numpy and the
pure-Python ``array`` columnar kernels.

The chaos half of the suite covers the zero-copy shard transport:
refcounted :class:`~repro.store.columnar.SharedColumns` unlink
exactly once, a worker that dies without detaching leaks no
``/dev/shm`` segment, the mmap-file fallback honours the same
contract, and an orchestration failure mid-scan still reaches the
owner's ``close()``.
"""

import glob
import os
from contextlib import contextmanager

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.store.columnar as columnar_module
from repro.automata.builder import build_tag
from repro.automata.dense import (
    BatchRuntime,
    DenseRuntime,
    compile_dense,
    compile_dense_batch,
)
from repro.automata.matching import TagMatcher, batch_matching_roots
from repro.constraints import TCG, ComplexEventType, EventStructure
from repro.granularity import standard_system
from repro.mining.discovery import EventDiscoveryProblem, discover
from repro.mining.events import EventSequence
from repro.parallel import fork_available, parallel_scan
from repro.store import ColumnarEventStore
from repro.store.columnar import attach_shared

SYSTEM = standard_system()

KERNELS = ["numpy", "fallback"]

RELAXED = settings(
    max_examples=100,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


@pytest.fixture(params=KERNELS)
def kernel(request, monkeypatch):
    """Run the test under one columnar kernel (numpy or ``array``)."""
    if request.param == "numpy":
        if columnar_module._np is None:
            pytest.skip("numpy unavailable")
    else:
        monkeypatch.setattr(columnar_module, "_np", None)
    return request.param


@contextmanager
def batch_mode(mode):
    """Pin ``REPRO_BATCH`` (with the columnar backend on, which
    batching requires) for the duration of the block."""
    previous = {
        name: os.environ.get(name)
        for name in ("REPRO_BATCH", "REPRO_COLUMNAR")
    }
    os.environ["REPRO_BATCH"] = mode
    os.environ["REPRO_COLUMNAR"] = "on"
    try:
        yield
    finally:
        for name, value in previous.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value


def _shm_segments():
    return set(glob.glob("/dev/shm/psm_*"))


# ----------------------------------------------------------------------
# Generators
# ----------------------------------------------------------------------
@st.composite
def frontier_cases(draw):
    """A candidate frontier over one structure plus a random store."""
    shape = draw(st.sampled_from(["chain2", "chain3", "fan"]))
    if shape == "chain2":
        names, arcs = ["R", "A"], [("R", "A")]
    elif shape == "chain3":
        names, arcs = ["R", "A", "B"], [("R", "A"), ("A", "B")]
    else:
        names, arcs = ["R", "A", "B"], [("R", "A"), ("R", "B")]
    constraints = {}
    for arc in arcs:
        label = draw(st.sampled_from(["minute", "hour", "day"]))
        m = draw(st.integers(0, 2))
        span = draw(st.integers(0, 3))
        constraints[arc] = [TCG(m, m + span, SYSTEM.get(label))]
    structure = EventStructure(names, constraints)
    types = ["t%d" % i for i in range(draw(st.integers(2, 3)))]
    # The frontier: every assignment of the non-root variables to the
    # type pool, all anchored on "r" - the multi-candidate shape the
    # batch compiler banks together.
    frontier = [{"R": "r"}]
    for variable in names[1:]:
        frontier = [
            dict(assignment, **{variable: t})
            for assignment in frontier
            for t in types
        ]
    slots = draw(
        st.lists(st.integers(0, 300), min_size=3, max_size=30)
    )
    events = [
        (
            "r" if draw(st.booleans()) else draw(st.sampled_from(types)),
            slot * 900,
        )
        for slot in slots
    ]
    sequence = EventSequence(sorted(events, key=lambda e: e[1]))
    horizon = draw(st.sampled_from([None, 3600, 90_000, 400_000]))
    strict = draw(st.booleans())
    return structure, frontier, sequence, horizon, strict


def _build_matchers(structure, frontier, horizon, strict):
    return [
        TagMatcher(
            build_tag(
                ComplexEventType(structure, assignment), system=SYSTEM
            ),
            strict=strict,
            horizon_seconds=horizon,
        )
        for assignment in frontier
    ]


# ----------------------------------------------------------------------
# Match sets and bindings
# ----------------------------------------------------------------------
class TestMatchSets:
    @given(case=frontier_cases())
    @RELAXED
    def test_batched_match_sets_equal_single(self, kernel, case):
        """batch_matching_roots under on == off == the raw per-matcher
        loop, for any frontier/store/kernel combination."""
        structure, frontier, sequence, horizon, strict = case
        matchers = _build_matchers(structure, frontier, horizon, strict)
        with batch_mode("on"):
            batched = batch_matching_roots(matchers, sequence)
        with batch_mode("off"):
            single = batch_matching_roots(matchers, sequence)
            raw = [list(m.matching_roots(sequence)) for m in matchers]
        assert batched == single == raw

    @given(case=frontier_cases())
    @RELAXED
    def test_match_many_bindings_equal_dense_runtime(self, kernel, case):
        """Per-root outcomes - including variable bindings - from one
        BatchRuntime sweep equal each member's own DenseRuntime run."""
        structure, frontier, sequence, horizon, strict = case
        matchers = _build_matchers(structure, frontier, horizon, strict)
        with batch_mode("on"):
            store = sequence.columnar()
            denses = [compile_dense(m.tag) for m in matchers]
            root_symbol = matchers[0].build.root_symbol
            for positions, batch in compile_dense_batch(denses):
                runtime = BatchRuntime(
                    batch,
                    store,
                    root_symbol,
                    structure.root,
                    strict=strict,
                    horizon_seconds=horizon,
                )
                roots = [
                    i
                    for i in range(len(sequence))
                    if sequence[i].etype == "r"
                ]
                singles = [
                    DenseRuntime(
                        denses[p],
                        store,
                        root_symbol,
                        structure.root,
                        strict=strict,
                        horizon_seconds=horizon,
                    )
                    for p in positions
                ]
                for root in roots:
                    outcomes = runtime.match_many(root)
                    for k in range(len(positions)):
                        assert outcomes[k] == singles[k].match(root)


# ----------------------------------------------------------------------
# Mining fingerprints
# ----------------------------------------------------------------------
def _fingerprint(outcome):
    return (
        sorted(
            str(sorted(assignment.items()))
            for assignment in outcome.solution_assignments()
        ),
        {
            str(sorted(cet.assignment.items())): freq
            for cet, freq in outcome.frequencies.items()
        },
        outcome.candidates_evaluated,
        outcome.automaton_starts,
    )


@st.composite
def mining_cases(draw):
    hour = SYSTEM.get("hour")
    structure = EventStructure(
        ["R", "A", "B"],
        {
            ("R", "A"): [TCG(0, draw(st.integers(1, 3)), hour)],
            ("A", "B"): [TCG(0, draw(st.integers(1, 3)), hour)],
        },
    )
    types = ["r"] + ["t%d" % i for i in range(draw(st.integers(1, 3)))]
    slots = draw(
        st.lists(st.integers(0, 96), min_size=4, max_size=26, unique=True)
    )
    events = [
        (draw(st.sampled_from(types)), slot * 1800)
        for slot in sorted(slots)
    ]
    confidence = draw(st.sampled_from([0.0, 0.25, 0.5]))
    problem = EventDiscoveryProblem(structure, confidence, "r")
    return problem, EventSequence(events)


class TestMiningFingerprints:
    @given(case=mining_cases())
    @RELAXED
    def test_discover_identical_under_batch_on_off(self, kernel, case):
        problem, sequence = case
        with batch_mode("off"):
            reference = discover(problem, sequence, SYSTEM)
        with batch_mode("on"):
            batched = discover(problem, sequence, SYSTEM)
        assert _fingerprint(batched) == _fingerprint(reference)

    @given(case=mining_cases())
    @RELAXED
    def test_auto_mode_equals_reference(self, kernel, case):
        problem, sequence = case
        with batch_mode("off"):
            reference = discover(problem, sequence, SYSTEM)
        with batch_mode("auto"):
            auto = discover(problem, sequence, SYSTEM)
        assert _fingerprint(auto) == _fingerprint(reference)


# ----------------------------------------------------------------------
# Shared-memory chaos
# ----------------------------------------------------------------------
def _store():
    return ColumnarEventStore.from_events(
        [("a", 0), ("b", 1800), ("a", 3600), ("c", 5400)]
    )


class TestSharedColumnsLifecycle:
    def test_refcounted_unlink_exactly_once(self):
        before = _shm_segments()
        owner = _store().to_shared()
        if owner.kind != "shm":
            pytest.skip("shared_memory unavailable on this platform")
        assert owner.refs == 1
        owner.acquire()
        assert owner.refs == 2
        owner.close()
        # Still one reference: the segment must survive.
        assert _shm_segments() - before
        owner.close()
        assert _shm_segments() == before
        # Idempotent once fully closed.
        owner.close()
        assert _shm_segments() == before
        with pytest.raises(RuntimeError):
            owner.acquire()

    def test_attach_roundtrip_is_bit_identical(self):
        store = _store()
        with store.to_shared() as owner:
            attached = attach_shared(owner.handle())
            assert attached is not None
            assert len(attached) == len(store)
            for i in range(len(store)):
                assert attached.type_at(i) == store.type_at(i)
                assert attached.time_at(i) == store.time_at(i)

    def test_file_fallback_transport(self, monkeypatch):
        """When segment creation fails the export falls back to an
        mmap file - same attach contract, and close() deletes it."""
        import multiprocessing.shared_memory as shm_module

        def refuse(*args, **kwargs):
            raise OSError("no shm for you")

        monkeypatch.setattr(shm_module, "SharedMemory", refuse)
        store = _store()
        owner = store.to_shared()
        assert owner.kind == "file"
        path = owner.name
        assert os.path.exists(path)
        attached = attach_shared(owner.handle())
        assert attached is not None
        assert [attached.type_at(i) for i in range(len(store))] == [
            store.type_at(i) for i in range(len(store))
        ]
        owner.close()
        assert not os.path.exists(path)


@pytest.mark.skipif(
    not fork_available(), reason="no fork start method on this platform"
)
class TestWorkerCrashChaos:
    def test_crashed_attacher_leaks_no_segment(self):
        """A forked child that attaches and dies without detaching
        must not leak the segment: the owner's unlink wins."""
        import multiprocessing

        before = _shm_segments()
        owner = _store().to_shared()
        if owner.kind != "shm":
            owner.close()
            pytest.skip("shared_memory unavailable on this platform")
        handle = owner.handle()
        ctx = multiprocessing.get_context("fork")

        def crash(handle):
            store = attach_shared(handle)
            assert store is not None and len(store) == 4
            os._exit(17)  # simulated crash: no detach, no cleanup

        child = ctx.Process(target=crash, args=(handle,))
        child.start()
        child.join(30)
        assert child.exitcode == 17
        # The parent still owns the segment after the crash...
        assert _shm_segments() - before
        owner.close()
        # ...and its single unlink reclaims it.
        assert _shm_segments() == before

    def test_engine_failure_mid_scan_still_unlinks(self, monkeypatch):
        """An orchestration failure after the shard export must still
        reach the owner's close() - no segment survives the wreck."""
        monkeypatch.delenv("REPRO_PARALLEL", raising=False)
        monkeypatch.setenv("REPRO_COLUMNAR", "on")
        from repro.parallel import stealing

        hour = SYSTEM.get("hour")
        structure = EventStructure(
            ["R", "A"], {("R", "A"): [TCG(0, 1, hour)]}
        )
        sequence = EventSequence(
            [("r", 0), ("a", 1800), ("r", 40_000), ("a", 41_000)]
        )
        sequence.columnar()

        def explode(self, lane):
            raise RuntimeError("scheduler wrecked mid-scan")

        monkeypatch.setattr(stealing.StealScheduler, "next_for", explode)
        before = _shm_segments()
        with pytest.raises(RuntimeError, match="wrecked"):
            parallel_scan(
                sequence,
                SYSTEM,
                structure,
                [{"R": "r", "A": "a"}, {"R": "r", "A": "b"}],
                {"A": (0, 7200)},
                [0, 2],
                7200,
                workers=2,
                executor="pool",
            )
        assert _shm_segments() == before

    def test_pool_scan_leaves_no_segments(self, monkeypatch):
        monkeypatch.delenv("REPRO_PARALLEL", raising=False)
        monkeypatch.setenv("REPRO_COLUMNAR", "on")
        hour = SYSTEM.get("hour")
        structure = EventStructure(
            ["R", "A"], {("R", "A"): [TCG(0, 1, hour)]}
        )
        sequence = EventSequence(
            [("r", 0), ("a", 1800), ("r", 40_000), ("a", 41_000)]
        )
        sequence.columnar()
        before = _shm_segments()
        results, report = parallel_scan(
            sequence,
            SYSTEM,
            structure,
            [{"R": "r", "A": "a"}, {"R": "r", "A": "b"}],
            {"A": (0, 7200)},
            [0, 2],
            7200,
            workers=2,
            executor="pool",
        )
        assert report["executor"] == "pool"
        assert report["shm"] in ("shm", "file")
        assert [r.hits for r in results] == [2, 0]
        assert _shm_segments() == before
