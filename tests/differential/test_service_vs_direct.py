"""Differential: the multi-tenant service vs standalone matchers.

Property (ISSUE 6): N tenants' interleaved streams pushed through
:class:`~repro.service.DetectionService` produce, per ``(tenant,
key)`` session, detections *bit-identical* to feeding each session's
stream through its own standalone
:class:`~repro.automata.StreamingMatcher` - including under forced
eviction/rehydration churn (``max_resident_sessions=1``) and circuit
breaker trips (invalid events tripping a threshold-2 breaker whose
cooldown is driven by a fake clock).
"""

import asyncio
import json
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata import StreamingMatcher, build_tag
from repro.constraints import TCG, ComplexEventType, EventStructure
from repro.granularity import standard_system
from repro.granularity.gregorian import SECONDS_PER_HOUR
from repro.resilience import EventValidationError
from repro.service import DetectionService, ServiceConfig

H = SECONDS_PER_HOUR

SYSTEM = standard_system()


def _chain_cet():
    hour = SYSTEM.get("hour")
    structure = EventStructure(
        ["A", "B", "C"],
        {
            ("A", "B"): [TCG(0, 2, hour)],
            ("B", "C"): [TCG(0, 2, hour)],
        },
    )
    return ComplexEventType(structure, {"A": "a", "B": "b", "C": "c"})


CHAIN_CET = _chain_cet()


def detections_as_json(detections):
    return json.dumps(
        [
            [d.anchor_time, d.detected_at, sorted(d.bindings.items())]
            for d in detections
        ],
        sort_keys=True,
    )


@st.composite
def multi_tenant_scenarios(draw):
    """Interleaved per-session streams over the chain alphabet.

    Each session's stream is in timestamp order and may contain
    invalid events (empty type) that the service must quarantine; the
    cross-session interleaving is a seeded stable shuffle, so each
    session's own order is preserved - the service guarantees nothing
    about cross-tenant order.
    """
    n_tenants = draw(st.integers(min_value=1, max_value=3))
    sessions = []
    for t in range(n_tenants):
        for k in range(draw(st.integers(min_value=1, max_value=2))):
            count = draw(st.integers(min_value=0, max_value=12))
            time = draw(st.integers(min_value=0, max_value=2 * H))
            events = []
            for _ in range(count):
                symbol = draw(st.sampled_from(
                    ["a", "b", "c", "noise", "", "a", "b", "c"]
                ))
                events.append((symbol, time))
                time += draw(st.integers(min_value=0, max_value=3 * H))
            sessions.append(("t%d" % t, "k%d" % k, events))
    shuffle_seed = draw(st.integers(min_value=0, max_value=2 ** 16))
    slots = [
        index
        for index, (_, _, events) in enumerate(sessions)
        for _ in events
    ]
    random.Random(shuffle_seed).shuffle(slots)
    cursors = [0] * len(sessions)
    interleaved = []
    for index in slots:
        tenant, key, events = sessions[index]
        interleaved.append((tenant, key) + events[cursors[index]])
        cursors[index] += 1
    return sessions, interleaved


class _ManualClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def direct_run(tenant_key_events):
    """Standalone matcher over one session's stream, invalid skipped."""
    matcher = StreamingMatcher(build_tag(CHAIN_CET, system=SYSTEM))
    detections = []
    for etype, time in tenant_key_events:
        try:
            detections.extend(matcher.feed(etype, time))
        except EventValidationError:
            continue
    return detections


class TestServiceVsDirect:
    @given(scenario=multi_tenant_scenarios())
    @settings(max_examples=75, deadline=None)
    def test_interleaved_tenants_bit_identical(self, scenario):
        sessions, interleaved = scenario
        clock = _ManualClock()
        config = ServiceConfig(
            enabled=True,
            max_resident_sessions=1,       # constant eviction churn
            breaker_failure_threshold=2,   # invalid events trip easily
            breaker_reset_seconds=30.0,
            breaker_clock=clock,
            queue_capacity=10_000,         # no shedding: exact replay
        )

        async def go():
            service = DetectionService(
                build_tag(CHAIN_CET, system=SYSTEM), config, system=SYSTEM
            )
            for record in interleaved:
                await service.submit(*record)
            # Tripped breakers park events; advance the cooldown until
            # every queue is empty (guaranteed: each round processes at
            # least the half-open probe).
            for _ in range(len(interleaved) + 1):
                await service.drain()
                if all(
                    service.parked(t) == 0 for t in service.tenants()
                ):
                    break
                clock.now += 30.0
            await service.flush()
            await service.close()
            return service

        service = asyncio.run(go())
        for tenant in service.tenants():
            assert service.parked(tenant) == 0
        active = sum(
            1 for _, _, events in sessions
            if any(etype for etype, _ in events)
        )
        if active > 1:
            assert service.registry.evictions > 0
        for tenant, key, events in sessions:
            got = [
                sd.detection for sd in service.detections
                if sd.tenant == tenant and sd.key == key
                and not sd.replayed
            ]
            assert detections_as_json(got) == detections_as_json(
                direct_run(events)
            ), (tenant, key)
        # Every invalid event is accounted for in the quarantine.
        invalid = sum(
            1 for _, _, events in sessions for e, _ in events if not e
        )
        assert len(service.quarantine) == invalid
