"""Tests for the Theorem 1 SUBSET SUM reduction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardness import (
    SubsetSumInstance,
    decide_via_reduction,
    has_subset_sum,
    reduction_structure,
    solve_subset_sum,
)


class TestInstanceValidation:
    def test_positive_numbers_required(self):
        with pytest.raises(ValueError):
            SubsetSumInstance((0, 3), 3)

    def test_non_negative_target_required(self):
        with pytest.raises(ValueError):
            SubsetSumInstance((1,), -1)


class TestDPOracle:
    def test_known_cases(self):
        assert has_subset_sum(SubsetSumInstance((3, 5, 7), 12))
        assert not has_subset_sum(SubsetSumInstance((3, 5, 7), 4))
        assert has_subset_sum(SubsetSumInstance((1, 2, 3), 6))
        assert has_subset_sum(SubsetSumInstance((4,), 0))

    @given(
        numbers=st.lists(
            st.integers(min_value=1, max_value=12), min_size=1, max_size=6
        ),
        target=st.integers(min_value=0, max_value=40),
    )
    @settings(max_examples=80, deadline=None)
    def test_oracle_matches_brute_force(self, numbers, target):
        from itertools import combinations

        instance = SubsetSumInstance(tuple(numbers), target)
        expected = any(
            sum(c) == target
            for size in range(len(numbers) + 1)
            for c in combinations(numbers, size)
        )
        assert has_subset_sum(instance) == expected

    def test_solver_returns_witness(self):
        witness = solve_subset_sum(SubsetSumInstance((3, 5, 7), 12))
        assert witness is not None
        assert sum((3, 5, 7)[i] for i in witness) == 12

    def test_solver_returns_none(self):
        assert solve_subset_sum(SubsetSumInstance((3, 5, 7), 4)) is None


class TestReductionStructure:
    def test_variable_count(self, system):
        structure = reduction_structure(
            SubsetSumInstance((2, 3), 5), system
        )
        # R + X1..X3 + V1,V2 + U1,U2
        assert len(structure.variables) == 1 + 3 + 2 + 2

    def test_grouped_granularities_registered(self, system):
        reduction_structure(SubsetSumInstance((4, 6), 10), system)
        assert "4-month" in system
        assert "6-month" in system

    def test_structure_is_rooted_dag(self, system):
        structure = reduction_structure(
            SubsetSumInstance((2, 3, 4), 9), system
        )
        assert structure.root == "R"
        assert structure.topological_order() is not None


class TestEquivalence:
    """Consistency of the gadget <=> the refined decision value.

    The published reduction is sound but (as the module errata
    documents) complete only for subsets whose residue system is
    CRT-solvable; ``crt_compatible_subset_exists`` captures the gadget's
    true decision value exactly, and for pairwise-coprime numbers it
    coincides with plain SUBSET SUM.
    """

    @pytest.mark.parametrize(
        "numbers,target",
        [
            ((2, 4), 6),
            ((2, 4), 5),
            ((3, 5), 8),
            ((3, 5), 7),
            ((5,), 5),
            ((5,), 3),
            ((5,), 0),
            ((2, 3, 4), 9),
            ((2, 3, 4), 5),
            ((3, 4, 5), 12),
        ],
    )
    def test_reduction_matches_refined_predicate(
        self, system, numbers, target
    ):
        from repro.hardness import crt_compatible_subset_exists

        instance = SubsetSumInstance(numbers, target)
        outcome = decide_via_reduction(instance, system)
        assert outcome.completed
        assert outcome.consistent == crt_compatible_subset_exists(instance)

    @pytest.mark.parametrize(
        "numbers,target",
        [((3, 5), 8), ((3, 5), 7), ((3, 5, 7), 12), ((3, 5, 7), 11)],
    )
    def test_coprime_instances_decide_subset_sum(
        self, system, numbers, target
    ):
        instance = SubsetSumInstance(numbers, target)
        outcome = decide_via_reduction(instance, system)
        assert outcome.completed
        assert outcome.consistent == has_subset_sum(instance)

    def test_reduction_always_sound(self, system):
        """Forward direction holds unconditionally: a consistent gadget
        yields a subset with the right sum."""
        instance = SubsetSumInstance((2, 3, 4), 9)
        outcome = decide_via_reduction(instance, system)
        assert outcome.completed
        if outcome.consistent:  # pragma: no cover - errata case
            assert sum(
                instance.numbers[i] for i in outcome.witness_subset
            ) == instance.target

    def test_errata_counterexample(self, system):
        """(2, 3, 4) with target 9 is SUBSET-SUM-solvable but the
        published gadget is inconsistent - the reproduction's errata."""
        from repro.hardness import crt_compatible_subset_exists

        instance = SubsetSumInstance((2, 3, 4), 9)
        assert has_subset_sum(instance)
        assert not crt_compatible_subset_exists(instance)
        outcome = decide_via_reduction(instance, system)
        assert outcome.completed and not outcome.consistent

    def test_witness_subset_decodes(self, system):
        instance = SubsetSumInstance((3, 5, 7), 12)
        outcome = decide_via_reduction(instance, system)
        assert outcome.consistent
        assert sum(
            instance.numbers[i] for i in outcome.witness_subset
        ) == 12

    def test_empty_subset_target_zero(self, system):
        outcome = decide_via_reduction(SubsetSumInstance((4, 9), 0), system)
        assert outcome.consistent
        assert outcome.witness_subset == []
