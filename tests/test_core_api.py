"""Tests for the high-level facade (repro.core)."""

import random

import pytest

from repro import (
    TCG,
    EventSequence,
    EventStructure,
    check_consistency,
    compile_pattern,
    count_pattern,
    mine,
    pattern_frequency,
)
from repro.constraints import ComplexEventType
from repro.granularity.gregorian import SECONDS_PER_DAY, SECONDS_PER_HOUR
from repro.mining import planted_sequence

D, H = SECONDS_PER_DAY, SECONDS_PER_HOUR


@pytest.fixture
def chain(system):
    return EventStructure(
        ["A", "B"],
        {("A", "B"): [TCG(0, 0, system.get("day"))]},
    )


class TestCheckConsistency:
    def test_consistent(self, chain, system):
        assert check_consistency(chain, system)

    def test_inconsistent(self, system):
        bad = EventStructure(
            ["A", "B"],
            {
                ("A", "B"): [
                    TCG(10, 10, system.get("day")),
                    TCG(0, 0, system.get("week")),
                ]
            },
        )
        assert not check_consistency(bad, system)

    def test_default_system(self, chain):
        assert check_consistency(chain)


class TestCompileAndMatch:
    def test_same_day_pattern(self, chain, system):
        matcher = compile_pattern(chain, {"A": "login", "B": "logout"}, system)
        seq = EventSequence(
            [
                ("login", 8 * H),
                ("logout", 20 * H),        # same day: match
                ("login", D + 23 * H),
                ("logout", 2 * D + 1 * H),  # crosses midnight: no match
            ]
        )
        assert count_pattern(matcher, seq) == 1
        assert pattern_frequency(matcher, seq) == pytest.approx(0.5)

    def test_horizon_derived(self, chain, system):
        matcher = compile_pattern(chain, {"A": "a", "B": "b"}, system)
        assert matcher.horizon_seconds is not None
        assert matcher.horizon_seconds < 2 * D

    def test_frequency_zero_without_reference(self, chain, system):
        matcher = compile_pattern(chain, {"A": "a", "B": "b"}, system)
        assert pattern_frequency(matcher, EventSequence([("x", 5)])) == 0.0


class TestStreamPattern:
    def test_streaming_facade(self, chain, system):
        from repro import EventSequence
        from repro.core import stream_pattern

        streaming = stream_pattern(chain, {"A": "login", "B": "logout"}, system)
        assert streaming.horizon_seconds is not None
        detections = streaming.feed_sequence(
            EventSequence([("login", 8 * H), ("logout", 20 * H)])
        )
        assert len(detections) == 1
        assert detections[0].bindings == {"A": 8 * H, "B": 20 * H}


class TestMine:
    def test_end_to_end(self, system, chain):
        cet = ComplexEventType(chain, {"A": "alert", "B": "ack"})
        rng = random.Random(21)
        seq, _ = planted_sequence(
            cet,
            system,
            n_roots=10,
            confidence=1.0,
            rng=rng,
            noise_types=["ack", "other"],
            noise_events_per_root=3,
        )
        outcome = mine(chain, "alert", seq, min_confidence=0.7, system=system)
        assert {"A": "alert", "B": "ack"} in outcome.solution_assignments()

    def test_mine_with_candidates(self, system, chain):
        seq = EventSequence([("alert", 8 * H), ("ack", 9 * H)])
        outcome = mine(
            chain,
            "alert",
            seq,
            min_confidence=0.5,
            candidates={"B": frozenset(["ack"])},
            system=system,
        )
        assert outcome.solution_assignments() == [{"A": "alert", "B": "ack"}]
