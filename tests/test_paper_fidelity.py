"""Executable summary of the paper-fidelity claims (see EXPERIMENTS.md).

One compact module asserting the headline paper numbers and behaviours,
so a reviewer can confirm the reproduction with a single test file:

    pytest tests/test_paper_fidelity.py -v
"""

import pytest

from repro.constraints import TCG, ComplexEventType, EventStructure, propagate
from repro.granularity import standard_system
from repro.granularity.gregorian import SECONDS_PER_DAY, SECONDS_PER_HOUR

D, H = SECONDS_PER_DAY, SECONDS_PER_HOUR


def figure_1a(system):
    return EventStructure(
        ["X0", "X1", "X2", "X3"],
        {
            ("X0", "X1"): [TCG(1, 1, system.get("b-day"))],
            ("X1", "X3"): [TCG(0, 1, system.get("week"))],
            ("X0", "X2"): [TCG(0, 5, system.get("b-day"))],
            ("X2", "X3"): [TCG(0, 8, system.get("hour"))],
        },
    )


class TestSection2:
    def test_temporal_types_with_gaps_and_noncontiguous_ticks(self):
        system = standard_system()
        bday = system.get("b-day")
        bmonth = system.get("business-month")
        saturday = 5 * D
        assert bday.tick_of(saturday) is None  # gap
        first, last = bmonth.tick_bounds(0)
        assert first <= saturday <= last  # inside the bounds ...
        assert bmonth.tick_of(saturday) is None  # ... yet not a member

    def test_ceil_undefined_cases(self):
        """'ceil z month/week is undefined if week z falls between two
        months' - the analogous business-day case."""
        system = standard_system()
        assert system.get("b-day").tick_of(5 * D) is None


class TestSection3:
    def test_one_day_is_not_86400_seconds(self):
        system = standard_system()
        same_day = TCG(0, 0, system.get("day"))
        in_seconds = TCG(0, D - 1, system.get("second"))
        t1, t2 = 23 * H, D + 4 * H  # the paper's 11pm -> 4am example
        assert in_seconds.is_satisfied(t1, t2)
        assert not same_day.is_satisfied(t1, t2)

    def test_month_to_day_uses_28_and_31(self):
        """Appendix A.1: 'from month to day, for the lower bound we use
        28 days as a month, and for the upper bound ... 31 days'."""
        system = standard_system()
        table = system.table("month")
        assert table.minsize(1) == 28 * D
        assert table.maxsize(1) == 31 * D


class TestSection51WorkedNumbers:
    def test_gamma_prime_hour_bound_six_day_week(self):
        """Gamma'(X0,X3) contains [1,175]hour - exact under Mon-Sat."""
        system = standard_system(workdays=(0, 1, 2, 3, 4, 5))
        result = propagate(figure_1a(system), system)
        assert result.interval("X0", "X3", "hour") == (1, 175)

    def test_gamma_prime_week_hull_is_sound(self):
        """Propagation derives a sound convex hull containing the
        paper's [0,1]week (the exact hull {0,1} is verified by the X1
        benchmark's exact enumeration)."""
        system = standard_system(workdays=(0, 1, 2, 3, 4, 5))
        result = propagate(figure_1a(system), system)
        lo, hi = result.interval("X0", "X3", "week")
        assert lo == 0 and hi >= 1


class TestFigure1b:
    def test_disjunction_hull(self):
        system = standard_system()
        month = system.get("month")
        year = system.get("year")
        gadget = EventStructure(
            ["X0", "X1", "X2", "X3"],
            {
                ("X0", "X1"): [TCG(11, 11, month), TCG(0, 0, year)],
                ("X0", "X2"): [TCG(0, 12, month)],
                ("X2", "X3"): [TCG(11, 11, month), TCG(0, 0, year)],
            },
        )
        result = propagate(gadget, system)
        assert result.consistent  # sound: the gadget is satisfiable
        assert result.interval("X0", "X2", "month") == (0, 12)


class TestFigure2:
    def test_tag_shape(self):
        from repro.automata import build_tag

        system = standard_system()
        cet = ComplexEventType(
            figure_1a(system),
            {
                "X0": "ibm-rise",
                "X1": "ibm-rep",
                "X2": "hp-rise",
                "X3": "ibm-fall",
            },
        )
        build = build_tag(cet)
        assert len(build.chains) == 2
        assert len(build.tag.states) == 6


class TestTheorem1:
    def test_reduction_decides_coprime_subset_sum(self):
        from repro.hardness import SubsetSumInstance, decide_via_reduction

        system = standard_system()
        yes = decide_via_reduction(SubsetSumInstance((3, 5), 8), system)
        no = decide_via_reduction(SubsetSumInstance((3, 5), 7), system)
        assert yes.completed and yes.consistent
        assert no.completed and not no.consistent
        assert no.nodes_explored > 10 * yes.nodes_explored  # exponential tell

    def test_errata_counterexample(self):
        from repro.hardness import (
            SubsetSumInstance,
            crt_compatible_subset_exists,
            has_subset_sum,
        )

        instance = SubsetSumInstance((2, 3, 4), 9)
        assert has_subset_sum(instance)
        assert not crt_compatible_subset_exists(instance)


class TestTheorem2:
    def test_sound_terminating_fast(self):
        system = standard_system()
        result = propagate(figure_1a(system), system)
        assert result.consistent
        assert result.iterations <= 6  # tiny fixpoint in practice
