"""Acceptance: one request, one tree - across processes and sessions.

A single ``repro serve`` run and a single ``repro mine --parallel 2``
run must each produce ONE trace file in which every span - the
service's routing and rehydration spans, the fork workers' spans
merged back from child processes - carries the root span's
``trace_id`` and a ``parent_id`` that resolves to another span in the
same file.
"""

import json
import os

import pytest

from repro.cli import main
from repro.constraints import TCG, ComplexEventType, EventStructure
from repro.io import dump_json, problem_to_dict, write_events
from repro.io.serialize import complex_event_type_to_dict
from repro.mining import EventDiscoveryProblem, EventSequence
from repro.obs import load_trace
from repro.parallel import fork_available


@pytest.fixture(autouse=True)
def _unkill_parallel(monkeypatch):
    monkeypatch.delenv("REPRO_PARALLEL", raising=False)


def _flatten(payload):
    flat = []

    def walk(node, depth):
        flat.append(node)
        for child in node.get("children") or ():
            walk(child, depth + 1)

    for root in payload["spans"]:
        walk(root, 0)
    return flat


def _assert_one_tree(payload):
    """Every span shares the payload's trace_id; every parent link
    resolves inside the file; exactly one root anchors the tree."""
    flat = _flatten(payload)
    assert flat, "trace is empty"
    ids = {span["span_id"] for span in flat}
    assert len(ids) == len(flat)
    for span in flat:
        assert span["trace_id"] == payload["trace_id"], span["name"]
        if span["parent_id"] is not None:
            assert span["parent_id"] in ids, (
                "%s has dangling parent %s"
                % (span["name"], span["parent_id"])
            )
    roots = [span for span in flat if span["parent_id"] is None]
    assert len(roots) == 1 and roots[0]["name"].startswith("cli.")
    return flat


@pytest.fixture
def serve_inputs(tmp_path, system):
    hour = system.get("hour")
    structure = EventStructure(
        ["A", "B", "C"],
        {
            ("A", "B"): [TCG(0, 2, hour)],
            ("B", "C"): [TCG(0, 2, hour)],
        },
    )
    cet = ComplexEventType(structure, {"A": "a", "B": "b", "C": "c"})
    pattern_path = str(tmp_path / "pattern.json")
    dump_json(complex_event_type_to_dict(cet), pattern_path)
    rows = ["tenant,event_type,timestamp,sequence_key"]
    # Two tenants, two keys each; interleaved keys under
    # --max-resident 1 force evictions and rehydrations mid-stream.
    t = 0
    for cycle in range(3):
        for tenant in ("acme", "globex"):
            for key in ("k1", "k2"):
                for etype in ("a", "b", "c"):
                    rows.append("%s,%s,%d,%s" % (tenant, etype, t, key))
                    t += 600
    events_path = str(tmp_path / "tenants.csv")
    with open(events_path, "w") as handle:
        handle.write("\n".join(rows) + "\n")
    return pattern_path, events_path


@pytest.fixture
def mine_inputs(tmp_path, system):
    hour = system.get("hour")
    structure = EventStructure(
        ["R", "A", "B"],
        {
            ("R", "A"): [TCG(0, 2, hour)],
            ("A", "B"): [TCG(0, 2, hour)],
        },
    )
    problem = EventDiscoveryProblem(structure, 0.2, "r")
    problem_path = str(tmp_path / "problem.json")
    dump_json(problem_to_dict(problem), problem_path)
    events = []
    for i in range(16):
        t = i * 20_000
        events.append(("r", t))
        if i % 2 == 0:
            events.append(("a", t + 3_000))
        if i % 4 != 3:
            events.append(("b", t + 6_000))
    events_path = str(tmp_path / "events.csv")
    write_events(
        EventSequence(sorted(events, key=lambda e: e[1])), events_path
    )
    return problem_path, events_path


class TestServeCorrelation:
    def test_serve_session_spans_share_the_root_identity(
        self, obs_on, serve_inputs, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.setenv("REPRO_SERVICE", "on")
        pattern_path, events_path = serve_inputs
        trace_path = str(tmp_path / "serve-trace.json")
        assert main([
            "serve", pattern_path, events_path,
            "--max-resident", "1",
            "--checkpoint-dir", str(tmp_path / "ckpt"),
            "--trace", trace_path,
        ]) == 0
        err = capsys.readouterr().err
        assert "rehydrations" in err
        payload = load_trace(trace_path)
        flat = _assert_one_tree(payload)
        names = [span["name"] for span in flat]
        assert "cli.serve" in names
        assert "service.route" in names
        assert "service.rehydrate" in names  # forced by max-resident 1
        # Session spans re-parent under the submitting request span,
        # not wherever the event loop happened to be.
        by_id = {span["span_id"]: span for span in flat}
        for span in flat:
            if span["name"] in ("service.route", "service.rehydrate"):
                assert by_id[span["parent_id"]], span


@pytest.mark.skipif(
    not fork_available(), reason="no fork start method on this platform"
)
class TestMineParallelCorrelation:
    def test_worker_spans_merge_under_the_scan_span(
        self, obs_on, mine_inputs, tmp_path, capsys
    ):
        problem_path, events_path = mine_inputs
        trace_path = str(tmp_path / "mine-trace.json")
        assert main([
            "mine", problem_path, events_path,
            "--parallel", "2", "--shard-size", "3",
            "--trace", trace_path,
        ]) == 0
        capsys.readouterr()
        payload = load_trace(trace_path)
        flat = _assert_one_tree(payload)
        by_id = {span["span_id"]: span for span in flat}
        workers = [
            span for span in flat if span["name"] == "mine.worker"
        ]
        assert workers
        remote = [
            span for span in workers
            if int(span["attributes"]["pid"]) != os.getpid()
        ]
        assert remote, "no worker span ran in a child process"
        for span in remote:
            # Forked workers' spans carry the parent's trace_id and
            # hang under the exact span that forked them (mine.scan).
            assert span["trace_id"] == payload["trace_id"]
            assert by_id[span["parent_id"]]["name"] == "mine.scan"
