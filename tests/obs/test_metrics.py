"""Counters, gauges, histograms, and the registry contract."""

import pytest

from repro.obs import (
    CallbackMetric,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter_deltas,
    sample_name,
)


class TestCounter:
    def test_counts_up(self, obs_on):
        c = Counter("c_total")
        c.inc()
        c.add(4)
        assert c.value() == 5

    def test_rejects_negative(self, obs_on):
        c = Counter("c_total")
        with pytest.raises(ValueError, match="only go up"):
            c.add(-1)

    def test_noop_when_disabled(self, obs_off):
        c = Counter("c_total")
        c.inc()
        c.add(10)
        assert c.value() == 0

    def test_invalid_name_rejected(self):
        with pytest.raises(ValueError, match="invalid metric name"):
            Counter("9starts-with-digit")


class TestGauge:
    def test_set_and_add(self, obs_on):
        g = Gauge("g")
        g.set(7)
        g.add(-3)
        assert g.value() == 4

    def test_noop_when_disabled(self, obs_off):
        g = Gauge("g")
        g.set(7)
        assert g.value() == 0


class TestHistogramQuantiles:
    def test_exact_quantiles_small_window(self, obs_on):
        h = Histogram("h_seconds")
        for value in [1, 2, 3, 4, 5]:
            h.observe(value)
        assert h.quantile(0.0) == 1.0
        assert h.quantile(0.5) == 3.0
        assert h.quantile(1.0) == 5.0
        # Linear interpolation between order statistics: position
        # 0.25 * 4 = 1.0 -> exactly the second value.
        assert h.quantile(0.25) == 2.0
        # 0.9 * 4 = 3.6 -> 4 + 0.6 * (5 - 4).
        assert h.quantile(0.9) == pytest.approx(4.6)

    def test_single_observation(self, obs_on):
        h = Histogram("h")
        h.observe(42)
        assert h.quantile(0.5) == 42.0
        assert h.quantile(0.99) == 42.0

    def test_empty_histogram_has_no_quantiles(self, obs_on):
        h = Histogram("h")
        assert h.quantile(0.5) is None

    def test_quantile_range_validated(self, obs_on):
        h = Histogram("h")
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_count_sum_min_max(self, obs_on):
        h = Histogram("h")
        for value in [3, 1, 2]:
            h.observe(value)
        summary = h.value()
        assert summary["count"] == 3
        assert summary["sum"] == 6.0
        assert summary["min"] == 1
        assert summary["max"] == 3

    def test_window_is_bounded_but_count_is_not(self, obs_on):
        h = Histogram("h", max_window=4)
        for value in range(100):
            h.observe(value)
        assert h.count == 100
        # The window holds the most recent four: 96..99.
        assert h.quantile(0.0) == 96.0
        assert h.quantile(1.0) == 99.0

    def test_noop_when_disabled(self, obs_off):
        h = Histogram("h")
        h.observe(1.0)
        assert h.count == 0
        assert h.quantile(0.5) is None


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("a_total") is registry.counter("a_total")

    def test_kind_clash_raises(self):
        registry = MetricsRegistry()
        registry.counter("a_total")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("a_total")

    def test_family_kind_clash_across_labels(self):
        registry = MetricsRegistry()
        registry.counter("a_total", labels={"kind": "full"})
        with pytest.raises(ValueError, match="already registered"):
            registry.histogram("a_total", labels={"kind": "inc"})

    def test_labelled_children_are_distinct(self, obs_on):
        registry = MetricsRegistry()
        full = registry.counter("closures", labels={"kind": "full"})
        inc = registry.counter("closures", labels={"kind": "incremental"})
        assert full is not inc
        full.inc()
        assert inc.value() == 0

    def test_snapshot_uses_flat_sample_names(self, obs_on):
        registry = MetricsRegistry()
        registry.counter("plain").add(2)
        registry.counter("fam", labels={"kind": "full"}).add(3)
        snap = registry.snapshot()
        assert snap["plain"] == 2
        assert snap['fam{kind="full"}'] == 3

    def test_reset_zeroes_but_keeps_registrations(self, obs_on):
        registry = MetricsRegistry()
        registry.counter("a_total").add(5)
        registry.reset()
        assert registry.snapshot()["a_total"] == 0
        assert len(registry) == 1

    def test_callback_metrics_read_at_export_time(self):
        registry = MetricsRegistry()
        box = {"value": 0}
        registry.counter_callback("cb_total", lambda: box["value"])
        box["value"] = 9
        assert registry.snapshot()["cb_total"] == 9

    def test_callback_kind_participates_in_clash_check(self):
        registry = MetricsRegistry()
        registry.gauge_callback("depth", lambda: 1)
        with pytest.raises(ValueError, match="already registered"):
            registry.counter("depth")

    def test_invalid_label_name_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="invalid label name"):
            registry.counter("a", labels={"bad-name": "x"})


class TestSampleName:
    def test_plain(self):
        assert sample_name("a_total", ()) == "a_total"

    def test_labelled_sorted(self):
        metric = Counter(
            "a", labels=(("engine", "numpy"), ("kind", "full"))
        )
        assert (
            sample_name(metric.name, metric.labels)
            == 'a{engine="numpy",kind="full"}'
        )


class TestCounterDeltas:
    def test_reports_only_changed_numeric_samples(self):
        before = {"a": 1, "b": 2, "h": {"count": 1}}
        after = {"a": 4, "b": 2, "h": {"count": 9}, "new": 7}
        deltas = counter_deltas(before, after)
        assert deltas == {"a": 3, "new": 7}

    def test_callbackmetric_exposes_kind(self):
        metric = CallbackMetric("m", lambda: 1, "gauge")
        assert metric.kind == "gauge"
