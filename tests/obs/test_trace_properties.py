"""Property test: traces survive export -> parse -> render.

Random span forests - deep nesting, error statuses, non-ASCII
attribute keys and values - are built on a live tracer, written with
:func:`write_trace`, read back with :func:`load_trace`, and rendered
with :func:`format_span_tree`.  The round trip must preserve the
structure byte-for-byte (modulo the file), every span must carry the
tracer's ``trace_id``, and every ``parent_id`` must resolve to a
``span_id`` inside the same file.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import (
    Tracer,
    activate_tracer,
    configure,
    format_span_tree,
    load_trace,
    obs_enabled,
    span,
    write_trace,
)

# Attribute text: printable ASCII plus a non-ASCII alphabet slice
# (accents, CJK, emoji) - values land in JSON and in the tree render.
_TEXT = st.text(
    alphabet=st.characters(
        whitelist_categories=("L", "N", "P", "S", "Zs"),
        min_codepoint=32,
        max_codepoint=0x1F600,
    ),
    min_size=0,
    max_size=12,
)

_NAMES = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz.é中",
    min_size=1,
    max_size=10,
)


@st.composite
def span_trees(draw, depth=0):
    """A recursive spec: (name, attributes, error?, children)."""
    children = []
    if depth < 4:
        children = draw(st.lists(
            span_trees(depth=depth + 1), min_size=0,
            max_size=3 if depth < 2 else 1,
        ))
    return (
        draw(_NAMES),
        draw(st.dictionaries(_TEXT, _TEXT, max_size=2)),
        draw(st.booleans()),
        children,
    )


def _build(spec):
    name, attributes, error, children = spec
    if error:
        with pytest.raises(ZeroDivisionError):
            with span(name) as current:
                current.attributes.update(attributes)
                for child in children:
                    _build(child)
                raise ZeroDivisionError
    else:
        with span(name) as current:
            current.attributes.update(attributes)
            for child in children:
                _build(child)


def _walk(payload_span):
    yield payload_span
    for child in payload_span.get("children") or ():
        yield from _walk(child)


@settings(max_examples=30, deadline=None)
@given(forest=st.lists(span_trees(), min_size=1, max_size=3))
def test_export_parse_render_round_trip(forest, tmp_path_factory):
    previous = obs_enabled()
    configure(True)
    try:
        tracer = Tracer()
        with activate_tracer(tracer):
            for spec in forest:
                _build(spec)
        path = str(tmp_path_factory.mktemp("prop") / "trace.json")
        write_trace(tracer, path)
        payload = load_trace(path)

        # Byte-identical to the in-memory payload.
        assert payload == tracer.to_dict()

        flat = [
            span_
            for root in payload["spans"]
            for span_ in _walk(root)
        ]
        assert len(flat) == tracer.total_spans()
        ids = {span_["span_id"] for span_ in flat}
        assert len(ids) == len(flat)  # unique span ids
        for span_ in flat:
            assert span_["trace_id"] == payload["trace_id"]
            assert span_["duration_ns"] is not None
            # Every parent link resolves inside the file (roots have
            # no parent - this tracer has no remote parent).
            if span_["parent_id"] is not None:
                assert span_["parent_id"] in ids
        root_ids = {span_["span_id"] for span_ in payload["spans"]}
        for span_ in flat:
            if span_["parent_id"] is None:
                assert span_["span_id"] in root_ids

        # Error statuses survive the trip.
        error_count = sum(
            1 for span_ in flat if span_["status"] == "error"
        )
        assert error_count == sum(
            1 for span_ in flat
            if span_["attributes"].get("exception") == "ZeroDivisionError"
        )

        # The renderer handles whatever the generator produced.
        text = format_span_tree(payload, max_children=50)
        # "1 span" vs "n spans" - match up to the count only.
        assert text.startswith("trace: %d span" % len(flat))
        assert payload["spans"][0]["name"] in text
    finally:
        configure(previous)
