"""Instrumentation must not change results.

The whole layer's core promise: a propagation run with observability
recording is *bit-identical* to the same run with ``REPRO_OBS=off``,
and the registry's mirrors agree exactly with the plain-int counters on
``PropagationResult`` (which keep working either way).
"""

import random

import pytest

from repro.bench.harness import _consistent_random_dag
from repro.constraints import propagate
from repro.constraints.propagation import ENGINES, resolve_engine
from repro.granularity import standard_system
from repro.granularity.convcache import ConversionCache
from repro.obs import configure, global_metrics


def _fresh_system():
    # A private cache per run so the two runs see identical cache
    # temperature (the shared global cache would warm between them).
    return standard_system(cache=ConversionCache())


@pytest.fixture
def structure():
    system = standard_system()
    return _consistent_random_dag(16, system, random.Random(16))


def _groups_of(result):
    return {
        label: dict(group) for label, group in result.groups.items()
    }


class TestDifferential:
    @pytest.mark.parametrize("engine", sorted(set(
        resolve_engine(engine) for engine in ENGINES
    )))
    def test_on_off_bit_identical(self, structure, engine, obs_on):
        on = propagate(structure, _fresh_system(), engine=engine)
        configure(False)
        try:
            off = propagate(structure, _fresh_system(), engine=engine)
        finally:
            configure(True)
        assert on.consistent == off.consistent
        assert on.iterations == off.iterations
        assert _groups_of(on) == _groups_of(off)
        assert on.conversions_performed == off.conversions_performed
        assert on.conversion_cache_hits == off.conversion_cache_hits
        assert on.conversion_cache_misses == off.conversion_cache_misses
        assert on.closures_full == off.closures_full
        assert on.closures_incremental == off.closures_incremental

    def test_result_counters_work_with_obs_off(self, structure, obs_off):
        result = propagate(structure, _fresh_system())
        # The PropagationResult fields are plain ints, not registry
        # views: they stay populated when the registry is a no-op.
        assert result.iterations > 0
        assert result.conversions_performed > 0
        assert (
            result.conversion_cache_hits + result.conversion_cache_misses
            == result.conversions_performed
        )

    def test_registry_mirrors_match_result_fields(self, structure, obs_on):
        registry = global_metrics()
        names = [
            "repro_propagation_runs_total",
            "repro_propagation_iterations_total",
            "repro_propagation_closures_full_total",
            "repro_propagation_closures_incremental_total",
            "repro_propagation_conversions_total",
            "repro_propagation_conversion_cache_hits_total",
            "repro_propagation_conversion_cache_misses_total",
        ]
        before = {
            name: registry.get(name).value() for name in names
        }
        result = propagate(structure, _fresh_system())
        deltas = {
            name: registry.get(name).value() - before[name]
            for name in names
        }
        assert deltas["repro_propagation_runs_total"] == 1
        assert (
            deltas["repro_propagation_iterations_total"]
            == result.iterations
        )
        assert (
            deltas["repro_propagation_closures_full_total"]
            == result.closures_full
        )
        assert (
            deltas["repro_propagation_closures_incremental_total"]
            == result.closures_incremental
        )
        assert (
            deltas["repro_propagation_conversions_total"]
            == result.conversions_performed
        )
        assert (
            deltas["repro_propagation_conversion_cache_hits_total"]
            == result.conversion_cache_hits
        )
        assert (
            deltas["repro_propagation_conversion_cache_misses_total"]
            == result.conversion_cache_misses
        )


class TestConversionCacheCounters:
    """Satellite: snapshot()/reset() semantics and thread safety."""

    def test_snapshot_is_consistent_reading(self):
        cache = ConversionCache()
        cache.get(("ns", 0, 1, "a", "b", "direct"))  # miss
        cache.put(("ns", 0, 1, "a", "b", "direct"), object())
        cache.get(("ns", 0, 1, "a", "b", "direct"))  # hit
        snap = cache.snapshot()
        assert (snap.hits, snap.misses, snap.entries) == (1, 1, 1)

    def test_reset_zeroes_counters_but_keeps_entries(self):
        cache = ConversionCache()
        key = ("ns", 0, 1, "a", "b", "direct")
        cache.get(key)
        cache.put(key, object())
        cache.reset()
        snap = cache.snapshot()
        assert (snap.hits, snap.misses, snap.evictions) == (0, 0, 0)
        assert snap.entries == 1
        assert cache.get(key) is not None  # still warm -> a hit
        assert cache.snapshot().hits == 1

    def test_bounded_cache_counts_evictions(self):
        cache = ConversionCache(max_entries=2)
        for index in range(4):
            cache.put(("ns", index, 0, "a", "b", "m"), object())
        snap = cache.snapshot()
        assert snap.entries == 2
        assert snap.evictions == 2

    def test_counters_survive_concurrent_updates(self):
        import threading

        cache = ConversionCache()
        key = ("ns", 0, 1, "a", "b", "direct")
        cache.put(key, object())
        per_thread = 2_000

        def worker():
            for _ in range(per_thread):
                cache.get(key)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Read-modify-writes are lock-guarded: no lost updates.
        assert cache.snapshot().hits == 4 * per_thread

    def test_counters_count_with_obs_off(self, obs_off):
        # Cache counters are plain ints surfaced on PropagationResult;
        # they are not gated by the obs switch.
        cache = ConversionCache()
        cache.get(("ns", 0, 1, "a", "b", "direct"))
        assert cache.snapshot().misses == 1
