"""The overhead guard: default-on counters must stay near-free.

Benchmarks the X4 workload (random 48-node DAG propagation - the
hottest instrumented path) with observability on and off, interleaved
to cancel thermal/scheduler drift, and asserts the default-on counters
cost less than 5% of median wall time (plus a small absolute floor so
sub-millisecond jitter cannot fail the build on a noisy machine).
"""

import random
import statistics
import time

import pytest

from repro.bench.harness import _consistent_random_dag
from repro.constraints import propagate
from repro.granularity import standard_system
from repro.obs import configure, obs_enabled

ROUNDS = 7
TOLERANCE = 0.05
#: Absolute jitter floor (seconds): a difference smaller than this is
#: scheduler noise, not overhead, regardless of the ratio.
JITTER_FLOOR = 0.010


@pytest.mark.benchmark
def test_default_on_counters_add_under_five_percent():
    system = standard_system()
    structure = _consistent_random_dag(48, system, random.Random(48))
    previous = obs_enabled()

    def timed(enabled):
        configure(enabled)
        start = time.perf_counter()
        propagate(structure, system, engine="auto")
        return time.perf_counter() - start

    try:
        # Warm caches and code paths once per mode before measuring.
        timed(True)
        timed(False)
        on_times, off_times = [], []
        for _ in range(ROUNDS):
            on_times.append(timed(True))
            off_times.append(timed(False))
    finally:
        configure(previous)

    on_median = statistics.median(on_times)
    off_median = statistics.median(off_times)
    overhead = on_median - off_median
    assert (
        overhead <= off_median * TOLERANCE or overhead <= JITTER_FLOOR
    ), (
        "observability overhead too high: on=%.6fs off=%.6fs (+%.2f%%)"
        % (on_median, off_median, 100 * overhead / off_median)
    )


@pytest.mark.benchmark
def test_flight_recorder_adds_under_five_percent_to_traced_runs():
    """The default-on recorder rides close_span; a traced X4 run with
    the recorder at default capacity must stay within 5% of the same
    run with the recorder disabled."""
    from repro.obs import FlightRecorder, Tracer, activate_tracer
    from repro.obs import trace as trace_module

    system = standard_system()
    structure = _consistent_random_dag(48, system, random.Random(48))
    previous = obs_enabled()
    previous_hook = trace_module._RECORDER_HOOK
    recording = FlightRecorder(capacity=256, slow_ms=250.0)
    disabled = FlightRecorder(capacity=0)

    def timed(recorder):
        trace_module._install_recorder(recorder)
        tracer = Tracer()
        with activate_tracer(tracer):
            start = time.perf_counter()
            propagate(structure, system, engine="auto")
            return time.perf_counter() - start

    try:
        configure(True)
        timed(recording)
        timed(disabled)
        on_times, off_times = [], []
        for _ in range(ROUNDS):
            on_times.append(timed(recording))
            off_times.append(timed(disabled))
    finally:
        configure(previous)
        trace_module._install_recorder(previous_hook)

    assert recording.recorded > 0  # the guard measured a live recorder
    on_median = statistics.median(on_times)
    off_median = statistics.median(off_times)
    overhead = on_median - off_median
    assert (
        overhead <= off_median * TOLERANCE or overhead <= JITTER_FLOOR
    ), (
        "flight-recorder overhead too high: on=%.6fs off=%.6fs (+%.2f%%)"
        % (on_median, off_median, 100 * overhead / off_median)
    )
