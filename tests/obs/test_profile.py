"""Sampling profiler: folding, span attribution, lifecycle."""

import sys
import threading
import time

import pytest

from repro.obs import (
    SamplingProfiler,
    Tracer,
    activate_tracer,
    format_flame,
    format_flame_summary,
    span,
)
from repro.obs.profile import PROFILE_SCHEMA_VERSION, _fold_stack


def _busy_wait(seconds):
    deadline = time.perf_counter() + seconds
    while time.perf_counter() < deadline:
        sum(range(100))


class TestFolding:
    def test_fold_stack_is_root_first(self):
        frame = sys._getframe()
        folded = _fold_stack(frame, None)
        frames = folded.split(";")
        # The leaf (this function) is last; the interpreter entry first.
        assert frames[-1].endswith(":test_fold_stack_is_root_first")
        assert all(":" in name for name in frames)

    def test_span_prefix(self):
        folded = _fold_stack(sys._getframe(), "bench.X4")
        assert folded.startswith("span:bench.X4;")


class TestSampling:
    def test_profiler_samples_own_calling_thread(self, obs_on):
        profiler = SamplingProfiler(hz=500)
        with profiler:
            _busy_wait(0.2)
        assert profiler.sample_count > 0
        assert any(
            "_busy_wait" in stack for stack in profiler.folded()
        )

    def test_samples_attribute_to_the_open_span(self, obs_on):
        tracer = Tracer()
        profiler = SamplingProfiler(hz=500)
        with activate_tracer(tracer):
            with profiler:
                with span("hot.loop"):
                    _busy_wait(0.2)
        prefixed = [
            stack for stack in profiler.folded()
            if stack.startswith("span:hot.loop;")
        ]
        assert prefixed, profiler.folded()

    def test_explicit_thread_targets(self, obs_on):
        stop = threading.Event()

        def victim():
            while not stop.is_set():
                _busy_wait(0.01)

        worker = threading.Thread(target=victim, daemon=True)
        worker.start()
        profiler = SamplingProfiler(hz=500, thread_ids=[worker.ident])
        with profiler:
            time.sleep(0.2)
        stop.set()
        worker.join(timeout=5)
        assert profiler.sample_count > 0
        assert any("victim" in stack for stack in profiler.folded())

    def test_profiler_never_samples_itself(self, obs_on):
        profiler = SamplingProfiler(hz=500)
        with profiler:
            _busy_wait(0.1)
        assert not any(
            "_sample_once" in stack for stack in profiler.folded()
        )


class TestLifecycle:
    def test_hz_bounds(self):
        with pytest.raises(ValueError):
            SamplingProfiler(hz=0)
        with pytest.raises(ValueError):
            SamplingProfiler(hz=5000)

    def test_double_start_is_an_error(self):
        profiler = SamplingProfiler(hz=100)
        profiler.start()
        try:
            with pytest.raises(RuntimeError):
                profiler.start()
        finally:
            profiler.stop()
        assert not profiler.running

    def test_stop_is_idempotent(self):
        profiler = SamplingProfiler(hz=100)
        profiler.stop()  # never started
        profiler.start()
        profiler.stop()
        profiler.stop()
        assert not profiler.running

    def test_to_dict_payload(self, obs_on):
        profiler = SamplingProfiler(hz=200)
        with profiler:
            _busy_wait(0.05)
        payload = profiler.to_dict()
        assert payload["schema"] == PROFILE_SCHEMA_VERSION
        assert payload["hz"] == 200
        assert payload["sample_count"] == sum(
            payload["samples"].values()
        )


class TestFlameRendering:
    def test_format_flame_orders_by_count(self):
        samples = {"a;b": 3, "a;c": 7, "a;d": 3}
        lines = format_flame(samples).splitlines()
        assert lines[0] == "a;c 7"
        assert lines[1:] == ["a;b 3", "a;d 3"]  # ties by stack

    def test_format_flame_respects_max_rows(self):
        samples = {"s%d" % index: index + 1 for index in range(10)}
        assert len(format_flame(samples, max_rows=4).splitlines()) == 4

    def test_summary_counts(self):
        text = format_flame_summary({"a;b": 3, "c": 1})
        assert "4 samples" in text
        assert "2 distinct stacks" in text
