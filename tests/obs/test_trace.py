"""Spans: nesting, exception safety, activation, no-op fast path."""

import threading

import pytest

from repro.obs import (
    Tracer,
    activate_tracer,
    current_tracer,
    format_span_tree,
    load_trace,
    span,
    write_trace,
)
from repro.obs.trace import TRACE_SCHEMA_VERSION, _NOOP


class TestNesting:
    def test_children_attach_to_the_enclosing_span(self, obs_on):
        tracer = Tracer()
        with activate_tracer(tracer):
            with span("outer"):
                with span("inner.a"):
                    pass
                with span("inner.b"):
                    pass
        assert [root.name for root in tracer.roots] == ["outer"]
        outer = tracer.roots[0]
        assert [child.name for child in outer.children] == [
            "inner.a",
            "inner.b",
        ]
        assert tracer.total_spans() == 3

    def test_siblings_after_close_become_new_roots(self, obs_on):
        tracer = Tracer()
        with activate_tracer(tracer):
            with span("first"):
                pass
            with span("second"):
                pass
        assert [root.name for root in tracer.roots] == ["first", "second"]

    def test_durations_are_monotonic_and_closed(self, obs_on):
        tracer = Tracer()
        with activate_tracer(tracer):
            with span("timed"):
                pass
        timed = tracer.roots[0]
        assert timed.duration_ns is not None
        assert timed.duration_ns >= 0
        assert timed.duration_seconds == timed.duration_ns / 1e9

    def test_attributes_at_open_and_via_set(self, obs_on):
        tracer = Tracer()
        with activate_tracer(tracer):
            with span("propagate", engine="numpy") as current:
                current.set(iterations=3)
        assert tracer.roots[0].attributes == {
            "engine": "numpy",
            "iterations": 3,
        }


class TestExceptionSafety:
    def test_exception_closes_span_with_error_status(self, obs_on):
        tracer = Tracer()
        with activate_tracer(tracer):
            with pytest.raises(RuntimeError):
                with span("doomed"):
                    raise RuntimeError("boom")
        doomed = tracer.roots[0]
        assert doomed.status == "error"
        assert doomed.attributes["exception"] == "RuntimeError"
        assert doomed.duration_ns is not None

    def test_exception_unwinds_nesting(self, obs_on):
        tracer = Tracer()
        with activate_tracer(tracer):
            with pytest.raises(ValueError):
                with span("outer"):
                    with span("inner"):
                        raise ValueError
            # The stack fully unwound: new spans are roots again.
            with span("after"):
                pass
        assert [root.name for root in tracer.roots] == ["outer", "after"]
        assert tracer.roots[0].children[0].status == "error"

    def test_exception_is_never_swallowed(self, obs_on):
        with pytest.raises(KeyError):
            with activate_tracer(Tracer()):
                with span("s"):
                    raise KeyError("k")


class TestActivation:
    def test_span_without_tracer_is_shared_noop(self, obs_on):
        assert current_tracer() is None
        assert span("anything", attr=1) is _NOOP

    def test_span_with_obs_off_is_noop_even_with_tracer(self, obs_off):
        tracer = Tracer()
        with activate_tracer(tracer):
            assert span("anything") is _NOOP
        assert tracer.total_spans() == 0

    def test_noop_span_accepts_set(self, obs_on):
        with span("unrecorded") as noop:
            noop.set(anything="goes")
        assert noop.attributes == {}

    def test_activation_restores_previous_tracer(self, obs_on):
        outer, inner = Tracer(), Tracer()
        with activate_tracer(outer):
            with activate_tracer(inner):
                assert current_tracer() is inner
            assert current_tracer() is outer
        assert current_tracer() is None

    def test_tracers_are_thread_local(self, obs_on):
        tracer = Tracer()
        seen = {}

        def worker():
            seen["tracer"] = current_tracer()

        with activate_tracer(tracer):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["tracer"] is None


class TestSerialization:
    def test_roundtrip_through_file(self, obs_on, tmp_path):
        tracer = Tracer()
        with activate_tracer(tracer):
            with span("root", engine="python"):
                with span("child"):
                    pass
        path = str(tmp_path / "trace.json")
        write_trace(tracer, path)
        payload = load_trace(path)
        assert payload["schema"] == TRACE_SCHEMA_VERSION
        assert payload["spans"][0]["name"] == "root"
        assert payload["spans"][0]["children"][0]["name"] == "child"

    def test_load_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": 999, "spans": []}')
        with pytest.raises(ValueError, match="schema"):
            load_trace(str(path))

    def test_non_json_attributes_are_stringified(self, obs_on):
        tracer = Tracer()
        with activate_tracer(tracer):
            with span("s", payload={1, 2}):
                pass
        attributes = tracer.to_dict()["spans"][0]["attributes"]
        assert isinstance(attributes["payload"], str)

    def test_format_span_tree_collapses_excess_children(self, obs_on):
        tracer = Tracer()
        with activate_tracer(tracer):
            with span("parent"):
                for index in range(20):
                    with span("child%d" % index):
                        pass
        text = format_span_tree(tracer.to_dict(), max_children=5)
        assert "child0" in text
        assert "child19" not in text
        assert "more spans collapsed" in text
        assert text.startswith("trace: 21 spans")
