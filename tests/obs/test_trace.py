"""Spans: nesting, exception safety, activation, identity, no-op
fast path."""

import threading

import pytest

from repro.obs import (
    Span,
    TraceContext,
    Tracer,
    activate_tracer,
    current_context,
    current_tracer,
    format_span_tree,
    linked_span,
    load_trace,
    span,
    write_trace,
)
from repro.obs.trace import (
    TRACE_SCHEMA_VERSION,
    _NOOP,
    active_tracer_for,
    new_span_id,
    new_trace_id,
)


class TestNesting:
    def test_children_attach_to_the_enclosing_span(self, obs_on):
        tracer = Tracer()
        with activate_tracer(tracer):
            with span("outer"):
                with span("inner.a"):
                    pass
                with span("inner.b"):
                    pass
        assert [root.name for root in tracer.roots] == ["outer"]
        outer = tracer.roots[0]
        assert [child.name for child in outer.children] == [
            "inner.a",
            "inner.b",
        ]
        assert tracer.total_spans() == 3

    def test_siblings_after_close_become_new_roots(self, obs_on):
        tracer = Tracer()
        with activate_tracer(tracer):
            with span("first"):
                pass
            with span("second"):
                pass
        assert [root.name for root in tracer.roots] == ["first", "second"]

    def test_durations_are_monotonic_and_closed(self, obs_on):
        tracer = Tracer()
        with activate_tracer(tracer):
            with span("timed"):
                pass
        timed = tracer.roots[0]
        assert timed.duration_ns is not None
        assert timed.duration_ns >= 0
        assert timed.duration_seconds == timed.duration_ns / 1e9

    def test_attributes_at_open_and_via_set(self, obs_on):
        tracer = Tracer()
        with activate_tracer(tracer):
            with span("propagate", engine="numpy") as current:
                current.set(iterations=3)
        assert tracer.roots[0].attributes == {
            "engine": "numpy",
            "iterations": 3,
        }


class TestExceptionSafety:
    def test_exception_closes_span_with_error_status(self, obs_on):
        tracer = Tracer()
        with activate_tracer(tracer):
            with pytest.raises(RuntimeError):
                with span("doomed"):
                    raise RuntimeError("boom")
        doomed = tracer.roots[0]
        assert doomed.status == "error"
        assert doomed.attributes["exception"] == "RuntimeError"
        assert doomed.duration_ns is not None

    def test_exception_unwinds_nesting(self, obs_on):
        tracer = Tracer()
        with activate_tracer(tracer):
            with pytest.raises(ValueError):
                with span("outer"):
                    with span("inner"):
                        raise ValueError
            # The stack fully unwound: new spans are roots again.
            with span("after"):
                pass
        assert [root.name for root in tracer.roots] == ["outer", "after"]
        assert tracer.roots[0].children[0].status == "error"

    def test_exception_is_never_swallowed(self, obs_on):
        with pytest.raises(KeyError):
            with activate_tracer(Tracer()):
                with span("s"):
                    raise KeyError("k")


class TestActivation:
    def test_span_without_tracer_is_shared_noop(self, obs_on):
        assert current_tracer() is None
        assert span("anything", attr=1) is _NOOP

    def test_span_with_obs_off_is_noop_even_with_tracer(self, obs_off):
        tracer = Tracer()
        with activate_tracer(tracer):
            assert span("anything") is _NOOP
        assert tracer.total_spans() == 0

    def test_noop_span_accepts_set(self, obs_on):
        with span("unrecorded") as noop:
            noop.set(anything="goes")
        assert noop.attributes == {}

    def test_activation_restores_previous_tracer(self, obs_on):
        outer, inner = Tracer(), Tracer()
        with activate_tracer(outer):
            with activate_tracer(inner):
                assert current_tracer() is inner
            assert current_tracer() is outer
        assert current_tracer() is None

    def test_tracers_are_thread_local(self, obs_on):
        tracer = Tracer()
        seen = {}

        def worker():
            seen["tracer"] = current_tracer()

        with activate_tracer(tracer):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["tracer"] is None


class TestSerialization:
    def test_roundtrip_through_file(self, obs_on, tmp_path):
        tracer = Tracer()
        with activate_tracer(tracer):
            with span("root", engine="python"):
                with span("child"):
                    pass
        path = str(tmp_path / "trace.json")
        write_trace(tracer, path)
        payload = load_trace(path)
        assert payload["schema"] == TRACE_SCHEMA_VERSION
        assert payload["spans"][0]["name"] == "root"
        assert payload["spans"][0]["children"][0]["name"] == "child"

    def test_load_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": 999, "spans": []}')
        with pytest.raises(ValueError, match="schema"):
            load_trace(str(path))

    def test_non_json_attributes_are_stringified(self, obs_on):
        tracer = Tracer()
        with activate_tracer(tracer):
            with span("s", payload={1, 2}):
                pass
        attributes = tracer.to_dict()["spans"][0]["attributes"]
        assert isinstance(attributes["payload"], str)

    def test_format_span_tree_collapses_excess_children(self, obs_on):
        tracer = Tracer()
        with activate_tracer(tracer):
            with span("parent"):
                for index in range(20):
                    with span("child%d" % index):
                        pass
        text = format_span_tree(tracer.to_dict(), max_children=5)
        assert "child0" in text
        assert "child19" not in text
        assert "more spans collapsed" in text
        assert text.startswith("trace: 21 spans")


class TestIdentity:
    def test_hex_id_generators(self):
        trace_id, span_id = new_trace_id(), new_span_id()
        assert len(trace_id) == 32 and int(trace_id, 16) >= 0
        assert len(span_id) == 16 and int(span_id, 16) >= 0
        assert new_trace_id() != trace_id

    def test_spans_carry_resolvable_identity(self, obs_on):
        tracer = Tracer()
        with activate_tracer(tracer):
            with span("outer"):
                with span("inner"):
                    pass
        outer = tracer.roots[0]
        inner = outer.children[0]
        assert outer.trace_id == inner.trace_id == tracer.trace_id
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert outer.span_id != inner.span_id

    def test_context_round_trips_dict_and_header(self):
        context = TraceContext(new_trace_id(), new_span_id())
        assert TraceContext.from_dict(context.to_dict()) == context
        assert TraceContext.from_header(context.to_header()) == context

    @pytest.mark.parametrize("header", [
        "", "repro1", "repro2-%s-%s" % ("0" * 32, "0" * 16),
        "repro1-%s-%s" % ("g" * 32, "0" * 16),
        "repro1-%s-%s" % ("0" * 31, "0" * 16),
    ])
    def test_malformed_headers_are_rejected(self, header):
        with pytest.raises(ValueError):
            TraceContext.from_header(header)

    def test_current_context_names_the_open_span(self, obs_on):
        assert current_context() is None
        tracer = Tracer()
        with activate_tracer(tracer):
            assert current_context() is None  # nothing open yet
            with span("work") as work:
                context = current_context()
                assert context == TraceContext(
                    tracer.trace_id, work.span_id
                )
        assert current_context() is None

    def test_child_tracer_inherits_remote_parent(self, obs_on):
        parent = TraceContext(new_trace_id(), new_span_id())
        tracer = Tracer(parent=parent)
        with activate_tracer(tracer):
            with span("worker.root"):
                pass
        root = tracer.roots[0]
        assert tracer.trace_id == parent.trace_id
        assert root.trace_id == parent.trace_id
        assert root.parent_id == parent.span_id

    def test_linked_span_files_under_the_named_span(self, obs_on):
        tracer = Tracer()
        with activate_tracer(tracer):
            with span("request") as request:
                anchor = request.context()
            # The request span is closed; a plain span would become a
            # new root, but the link pulls it back under the request.
            with linked_span("drain", anchor, tenant="t0"):
                pass
        assert [root.name for root in tracer.roots] == ["request"]
        drain = tracer.roots[0].children[0]
        assert drain.parent_id == tracer.roots[0].span_id
        assert drain.attributes == {"tenant": "t0"}

    def test_linked_span_with_foreign_context_degrades(self, obs_on):
        tracer = Tracer()
        foreign = TraceContext(new_trace_id(), new_span_id())
        with activate_tracer(tracer):
            with linked_span("drain", foreign):
                pass
        assert [root.name for root in tracer.roots] == ["drain"]
        assert tracer.roots[0].trace_id == tracer.trace_id

    def test_attach_reparents_worker_tree_by_id(self, obs_on):
        parent_tracer = Tracer()
        with activate_tracer(parent_tracer):
            with span("mine.scan") as scan:
                context = scan.context()
                # Simulate a fork worker: fresh tracer seeded with the
                # scan span's context, serialised and shipped back.
                worker = Tracer(parent=context)
                with activate_tracer(worker):
                    with span("mine.worker", shard=0):
                        with span("mine.batch"):
                            pass
                shipped = worker.to_dict()["spans"][0]
                parent_tracer.attach(Span.from_dict(shipped))
        scan_span = parent_tracer.roots[0]
        attached = scan_span.children[0]
        assert attached.name == "mine.worker"
        assert attached.trace_id == parent_tracer.trace_id
        assert attached.parent_id == scan_span.span_id
        assert attached.children[0].parent_id == attached.span_id

    def test_attach_adopts_legacy_idless_spans(self, obs_on):
        tracer = Tracer()
        legacy = Span.from_dict({
            "name": "old.worker",
            "duration_ns": 5,
            "children": [{"name": "old.child", "duration_ns": 1}],
        })
        with activate_tracer(tracer):
            with span("scan"):
                tracer.attach(legacy)
        attached = tracer.roots[0].children[0]
        assert attached.trace_id == tracer.trace_id
        assert attached.span_id is not None
        assert attached.children[0].parent_id == attached.span_id

    def test_active_tracer_registry_follows_activation(self, obs_on):
        ident = threading.get_ident()
        outer, inner = Tracer(), Tracer()
        assert active_tracer_for(ident) is None
        with activate_tracer(outer):
            assert active_tracer_for(ident) is outer
            with activate_tracer(inner):
                assert active_tracer_for(ident) is inner
            assert active_tracer_for(ident) is outer
        assert active_tracer_for(ident) is None
