"""Exporters: Prometheus text format, its linter, and the tree views."""

import pytest

from repro.obs import (
    MetricsRegistry,
    format_tree,
    lint_prometheus_text,
    prometheus_text,
)


class TestPrometheusText:
    def test_counter_and_gauge_families(self, obs_on):
        registry = MetricsRegistry()
        registry.counter("runs_total", "Runs so far").add(3)
        registry.gauge("depth", "Current depth").set(2)
        text = prometheus_text(registry)
        assert "# HELP runs_total Runs so far\n" in text
        assert "# TYPE runs_total counter\n" in text
        assert "runs_total 3\n" in text
        assert "# TYPE depth gauge\n" in text
        assert "depth 2\n" in text

    def test_labelled_samples(self, obs_on):
        registry = MetricsRegistry()
        registry.counter(
            "closures_total", "STP closures", labels={"kind": "full"}
        ).add(5)
        registry.counter(
            "closures_total", labels={"kind": "incremental"}
        ).add(7)
        text = prometheus_text(registry)
        assert text.count("# TYPE closures_total counter") == 1
        assert 'closures_total{kind="full"} 5\n' in text
        assert 'closures_total{kind="incremental"} 7\n' in text

    def test_histogram_exports_as_summary(self, obs_on):
        registry = MetricsRegistry()
        h = registry.histogram("latency_seconds", "Latency")
        for value in [1.0, 2.0, 3.0]:
            h.observe(value)
        text = prometheus_text(registry)
        assert "# TYPE latency_seconds summary\n" in text
        assert 'latency_seconds{quantile="0.5"} 2.0\n' in text
        assert "latency_seconds_sum 6.0\n" in text
        assert "latency_seconds_count 3\n" in text

    def test_label_value_escaping(self, obs_on):
        registry = MetricsRegistry()
        registry.counter(
            "odd_total", labels={"path": 'a"b\\c\nd'}
        ).add(1)
        text = prometheus_text(registry)
        assert '{path="a\\"b\\\\c\\nd"}' in text
        assert lint_prometheus_text(text) == []

    def test_help_escaping(self, obs_on):
        registry = MetricsRegistry()
        registry.counter("c_total", "line one\nline two \\ slash")
        text = prometheus_text(registry)
        assert "# HELP c_total line one\\nline two \\\\ slash\n" in text
        assert lint_prometheus_text(text) == []

    def test_non_finite_values(self, obs_on):
        registry = MetricsRegistry()
        registry.gauge_callback("inf_gauge", lambda: float("inf"))
        registry.gauge_callback("nan_gauge", lambda: float("nan"))
        text = prometheus_text(registry)
        assert "inf_gauge +Inf\n" in text
        assert "nan_gauge NaN\n" in text
        assert lint_prometheus_text(text) == []

    def test_empty_registry_is_empty_text(self):
        assert prometheus_text(MetricsRegistry()) == ""

    def test_global_dump_lints_clean(self, obs_on):
        # Import the instrumented layers so their families register,
        # then lint the real process-wide dump (the CI format-lint).
        import repro.automata.matching  # noqa: F401
        import repro.automata.streaming  # noqa: F401
        import repro.constraints.propagation  # noqa: F401
        import repro.granularity.convcache  # noqa: F401
        import repro.mining.discovery  # noqa: F401

        text = prometheus_text()
        assert "repro_propagation_runs_total" in text
        assert lint_prometheus_text(text) == []


class TestExemplars:
    def test_histogram_count_carries_exemplar(self, obs_on):
        from repro.obs import Tracer, activate_tracer, span

        registry = MetricsRegistry()
        h = registry.histogram("latency_seconds", "Latency")
        tracer = Tracer()
        with activate_tracer(tracer):
            with span("request") as request:
                h.observe(0.5)
        text = prometheus_text(registry)
        expected = (
            'latency_seconds_count 1 # {trace_id="%s",span_id="%s"} 0.5\n'
            % (tracer.trace_id, request.span_id)
        )
        assert expected in text
        assert lint_prometheus_text(text) == []

    def test_no_span_means_no_exemplar(self, obs_on):
        registry = MetricsRegistry()
        registry.histogram("latency_seconds").observe(0.5)
        text = prometheus_text(registry)
        assert "#" not in text.split("latency_seconds_count")[1]

    def test_last_observation_wins(self, obs_on):
        from repro.obs import Tracer, activate_tracer, span

        registry = MetricsRegistry()
        h = registry.histogram("latency_seconds")
        tracer = Tracer()
        with activate_tracer(tracer):
            with span("first"):
                h.observe(1.0)
            with span("second") as second:
                h.observe(2.0)
        assert h.exemplar == (tracer.trace_id, second.span_id, 2.0)

    def test_reset_clears_exemplar(self, obs_on):
        from repro.obs import Tracer, activate_tracer, span

        registry = MetricsRegistry()
        h = registry.histogram("latency_seconds")
        with activate_tracer(Tracer()):
            with span("s"):
                h.observe(1.0)
        registry.reset()
        assert h.exemplar is None


class TestLinter:
    def test_accepts_well_formed(self):
        text = (
            "# HELP a_total Things.\n"
            "# TYPE a_total counter\n"
            'a_total{kind="x"} 5\n'
        )
        assert lint_prometheus_text(text) == []

    def test_rejects_malformed_comment(self):
        errors = lint_prometheus_text("# TIPE a counter\n")
        assert any("malformed comment" in error for error in errors)

    def test_rejects_bad_sample_value(self):
        text = "# TYPE a counter\na five\n"
        errors = lint_prometheus_text(text)
        assert any("invalid sample value" in error for error in errors)

    def test_rejects_unquoted_label(self):
        text = "# TYPE a counter\na{kind=full} 1\n"
        errors = lint_prometheus_text(text)
        assert any("malformed labels" in error for error in errors)

    def test_rejects_duplicate_type(self):
        text = "# TYPE a counter\n# TYPE a counter\na 1\n"
        errors = lint_prometheus_text(text)
        assert any("duplicate TYPE" in error for error in errors)

    def test_rejects_sample_without_type(self):
        text = "# TYPE a counter\na 1\nb 2\n"
        errors = lint_prometheus_text(text)
        assert any("no preceding TYPE" in error for error in errors)

    def test_summary_suffixes_fold_to_family(self):
        text = (
            "# TYPE lat summary\n"
            'lat{quantile="0.5"} 1.0\n'
            "lat_sum 2.0\n"
            "lat_count 2\n"
        )
        assert lint_prometheus_text(text) == []

    def test_accepts_openmetrics_exemplar(self):
        text = (
            "# TYPE lat summary\n"
            'lat_count 3 # {trace_id="ab12",span_id="cd34"} 0.25\n'
        )
        assert lint_prometheus_text(text) == []

    def test_accepts_exemplar_with_timestamp(self):
        text = (
            "# TYPE lat summary\n"
            'lat_count 3 # {trace_id="ab12"} 0.25 1700000000.5\n'
        )
        assert lint_prometheus_text(text) == []

    def test_rejects_exemplar_with_bad_labels(self):
        text = "# TYPE lat summary\nlat_count 3 # {trace_id=ab12} 0.25\n"
        errors = lint_prometheus_text(text)
        assert any("exemplar" in error for error in errors)

    def test_rejects_exemplar_with_bad_value(self):
        text = (
            "# TYPE lat summary\n"
            'lat_count 3 # {trace_id="ab12"} fast\n'
        )
        errors = lint_prometheus_text(text)
        assert any("invalid exemplar value" in error for error in errors)

    def test_rejects_exemplar_without_labels(self):
        text = "# TYPE lat summary\nlat_count 3 # 0.25\n"
        errors = lint_prometheus_text(text)
        assert any("exemplar" in error for error in errors)

    def test_hash_inside_label_value_is_not_an_exemplar(self):
        # " # " inside a quoted label value must not trip the parser.
        text = '# TYPE a counter\na{path="x # y"} 1\n'
        assert lint_prometheus_text(text) == []


class TestFlameExport:
    def test_format_flame_and_summary(self):
        from repro.obs import format_flame, format_flame_summary

        samples = {"span:x;a:b": 2, "a:c": 5}
        assert format_flame(samples).splitlines() == [
            "a:c 5",
            "span:x;a:b 2",
        ]
        assert "7 samples" in format_flame_summary(samples)


class TestFormatTree:
    def test_nested_mapping_renders_with_glyphs(self):
        text = format_tree(
            {"X1": {"hits": 3, "misses": 1}, "X2": {"hits": 0}},
            title="bench",
        )
        lines = text.splitlines()
        assert lines[0] == "bench"
        assert "|- X1" in lines[1]
        assert any("`- misses: 1" in line for line in lines)
        assert any("`- X2" in line for line in lines)

    def test_scalar_values_inline(self):
        text = format_tree({"only": 7})
        assert text == "`- only: 7"


class TestGlobalSnapshotHelpers:
    def test_metrics_snapshot_reads_global(self, obs_on):
        from repro.obs import counter, metrics_snapshot

        counter("snapshot_probe_total").inc()
        assert metrics_snapshot()["snapshot_probe_total"] >= 1
