"""Shared fixtures: explicit on/off switches that restore the
process-wide state, so this suite passes under any ``REPRO_OBS``
setting (CI runs tier-1 with it off)."""

import pytest

from repro.obs import configure, obs_enabled


@pytest.fixture
def obs_on():
    previous = obs_enabled()
    configure(True)
    yield
    configure(previous)


@pytest.fixture
def obs_off():
    previous = obs_enabled()
    configure(False)
    yield
    configure(previous)
