"""Flight recorder: ring behaviour, triggers, dumps, env knobs."""

import pytest

from repro.obs import (
    FlightRecorder,
    Tracer,
    activate_tracer,
    global_recorder,
    load_flight_dump,
    span,
)
from repro.obs.recorder import (
    DEFAULT_CAPACITY,
    DEFAULT_SLOW_MS,
    RECORDER_SCHEMA_VERSION,
    recorder_capacity,
    slow_threshold_ms,
)
from repro.obs import trace as trace_module


@pytest.fixture
def recorder(obs_on):
    """A fresh recorder installed as the close-span hook, restored
    afterwards (the process-wide recorder keeps running either way)."""
    fresh = FlightRecorder(capacity=8, slow_ms=250.0)
    previous = trace_module._RECORDER_HOOK
    trace_module._install_recorder(fresh)
    yield fresh
    trace_module._install_recorder(previous)


def _run_span(name, duration_ns=0, error=False):
    tracer = Tracer()
    with activate_tracer(tracer):
        if error:
            with pytest.raises(RuntimeError):
                with span(name):
                    raise RuntimeError("boom")
        else:
            with span(name):
                pass
    # Make the duration deterministic for trigger tests.
    tracer.roots[0].end_ns = tracer.roots[0].start_ns + duration_ns
    return tracer.roots[0]


class TestRingBehaviour:
    def test_every_closed_span_lands_in_recent(self, recorder):
        tracer = Tracer()
        with activate_tracer(tracer):
            with span("outer"):
                with span("inner"):
                    pass
        names = [record["name"] for record in recorder.recent()]
        assert names == ["inner", "outer"]  # close order
        assert recorder.recorded == 2
        assert recorder.captured() == []

    def test_records_are_flat_and_carry_identity(self, recorder):
        tracer = Tracer()
        with activate_tracer(tracer):
            with span("outer"):
                with span("inner", shard=3):
                    pass
        inner = recorder.recent()[0]
        assert inner["trace_id"] == tracer.trace_id
        assert inner["parent_id"] == tracer.roots[0].span_id
        assert inner["attributes"] == {"shard": 3}
        assert "children" not in inner

    def test_ring_is_bounded(self, recorder):
        tracer = Tracer()
        with activate_tracer(tracer):
            for index in range(20):
                with span("s%d" % index):
                    pass
        recent = recorder.recent()
        assert len(recent) == 8
        assert recent[0]["name"] == "s12"
        assert recorder.recorded == 20

    def test_disabled_recorder_records_nothing(self, obs_on):
        recorder = FlightRecorder(capacity=0)
        assert not recorder.active
        recorder.note("ignored", status="error")
        assert recorder.recent() == []

    def test_obs_off_gates_recording(self, recorder, obs_off):
        recorder.note("ignored", status="error")
        assert recorder.recent() == []


class TestTriggers:
    def test_error_span_is_captured(self, recorder):
        tracer = Tracer()
        with activate_tracer(tracer):
            with pytest.raises(RuntimeError):
                with span("doomed"):
                    raise RuntimeError
        captured = recorder.captured()
        assert [record["trigger"] for record in captured] == ["error"]
        assert captured[0]["name"] == "doomed"
        assert recorder.triggered == 1

    def test_slow_span_is_captured(self, obs_on):
        recorder = FlightRecorder(capacity=8, slow_ms=0.0)
        record_span = _run_span("anything")
        recorder.record(record_span)
        assert recorder.captured()[0]["trigger"] == "slow"

    def test_fast_ok_span_is_not_captured(self, obs_on):
        recorder = FlightRecorder(capacity=8, slow_ms=1000.0)
        recorder.record(_run_span("quick", duration_ns=10))
        assert recorder.recent() != []
        assert recorder.captured() == []

    def test_slow_threshold_is_milliseconds(self, obs_on):
        recorder = FlightRecorder(capacity=8, slow_ms=1.0)
        recorder.record(_run_span("slow", duration_ns=2_000_000))
        recorder.record(_run_span("fast", duration_ns=500_000))
        assert [r["name"] for r in recorder.captured()] == ["slow"]

    def test_error_note_is_captured_without_a_tracer(self, recorder):
        recorder.note(
            "service.reject", status="error",
            tenant="acme", reason="bad event",
        )
        captured = recorder.captured()
        assert captured[0]["trigger"] == "error"
        assert captured[0]["attributes"]["tenant"] == "acme"
        assert captured[0]["trace_id"] is None


class TestDumps:
    def test_dump_round_trips_through_json(self, recorder, tmp_path):
        recorder.note("incident", status="error", detail="x")
        path = str(tmp_path / "flight.json")
        payload = recorder.dump(path, reason="unit-test")
        loaded = load_flight_dump(path)
        assert loaded == payload
        assert loaded["schema"] == RECORDER_SCHEMA_VERSION
        assert loaded["reason"] == "unit-test"
        assert loaded["captured"][0]["name"] == "incident"
        assert recorder.dumps == 1

    def test_load_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": 99}')
        with pytest.raises(ValueError, match="schema"):
            load_flight_dump(str(path))

    def test_clear_empties_rings_but_keeps_totals(self, recorder):
        recorder.note("a", status="error")
        recorder.clear()
        assert recorder.recent() == []
        assert recorder.captured() == []
        assert recorder.recorded == 1
        assert recorder.triggered == 1


class TestKnobs:
    def test_capacity_env_values(self, monkeypatch):
        monkeypatch.delenv("REPRO_OBS_RECORDER", raising=False)
        assert recorder_capacity() == DEFAULT_CAPACITY
        for value, expected in [
            ("64", 64), ("off", 0), ("0", 0), ("false", 0),
            ("-3", 0), ("garbage", DEFAULT_CAPACITY),
        ]:
            monkeypatch.setenv("REPRO_OBS_RECORDER", value)
            assert recorder_capacity() == expected

    def test_slow_ms_env_values(self, monkeypatch):
        monkeypatch.delenv("REPRO_OBS_SLOW_MS", raising=False)
        assert slow_threshold_ms() == DEFAULT_SLOW_MS
        monkeypatch.setenv("REPRO_OBS_SLOW_MS", "12.5")
        assert slow_threshold_ms() == 12.5
        monkeypatch.setenv("REPRO_OBS_SLOW_MS", "garbage")
        assert slow_threshold_ms() == DEFAULT_SLOW_MS

    def test_configure_rereads_environment(self, monkeypatch, obs_on):
        recorder = FlightRecorder(capacity=4)
        monkeypatch.setenv("REPRO_OBS_RECORDER", "off")
        monkeypatch.setenv("REPRO_OBS_SLOW_MS", "5")
        recorder.configure()
        assert not recorder.active
        assert recorder.slow_ms == 5.0

    def test_global_recorder_is_the_close_span_hook(self):
        # The import-time wiring: whatever recorder.py installed is the
        # process-wide singleton (unless a test swapped it temporarily).
        assert trace_module._RECORDER_HOOK is global_recorder()
