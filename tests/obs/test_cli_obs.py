"""End-to-end CLI observability: the acceptance path.

``repro discover --trace --metrics`` over the bundled example data must
produce a span tree covering propagation, conversion, TAG construction
and matching, and mining, and a metrics dump whose counters moved in
lockstep with the run.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.obs import (
    global_metrics,
    lint_prometheus_text,
    load_trace,
)

DATA = Path(__file__).resolve().parents[2] / "examples" / "data"
PROBLEM = str(DATA / "problem.json")
EVENTS = str(DATA / "events.csv")


def _span_names(payload):
    names = set()

    def walk(nodes):
        for node in nodes:
            names.add(node["name"])
            walk(node.get("children") or ())

    walk(payload["spans"])
    return names


class TestDiscoverAcceptance:
    def test_trace_covers_every_pipeline_stage(
        self, obs_on, tmp_path, capsys
    ):
        trace_path = str(tmp_path / "trace.json")
        assert main(
            ["discover", PROBLEM, EVENTS, "--trace", trace_path,
             "--metrics"]
        ) == 0
        out = capsys.readouterr().out
        payload = load_trace(trace_path)
        names = _span_names(payload)
        assert "cli.discover" in names
        assert "mine" in names                  # mining pipeline
        assert "mine.consistency_gate" in names
        assert "propagate" in names             # propagation
        assert "propagate.convert" in names     # conversion
        assert "stp.close" in names             # closures
        assert "tag.build" in names             # TAG construction
        # TAG matching: the per-candidate scan, or one banked frontier
        # sweep when REPRO_BATCH (default on) merges the candidates.
        assert names & {"tag.match", "tag.batch_scan"}
        assert "mine.candidate" in names
        # The metrics dump rides on stdout and is well-formed.
        dump_start = out.index("# HELP")
        dump = out[dump_start:]
        assert lint_prometheus_text(dump) == []
        assert "repro_mine_runs_total" in dump
        assert "repro_propagation_runs_total" in dump

    def test_metrics_deltas_match_the_run(self, obs_on, tmp_path):
        registry = global_metrics()
        names = [
            "repro_mine_runs_total",
            "repro_mine_candidates_evaluated_total",
            "repro_mine_automaton_starts_total",
            "repro_propagation_runs_total",
            "repro_propagation_conversions_total",
            "repro_propagation_conversion_cache_hits_total",
            "repro_propagation_conversion_cache_misses_total",
        ]
        before = {name: registry.get(name).value() for name in names}
        assert main(["discover", PROBLEM, EVENTS]) == 0
        delta = {
            name: registry.get(name).value() - before[name]
            for name in names
        }
        assert delta["repro_mine_runs_total"] == 1
        assert delta["repro_propagation_runs_total"] == 1
        assert delta["repro_mine_candidates_evaluated_total"] > 0
        assert delta["repro_mine_automaton_starts_total"] > 0
        # Cache hits + misses account for every attempted conversion.
        assert (
            delta["repro_propagation_conversion_cache_hits_total"]
            + delta["repro_propagation_conversion_cache_misses_total"]
            == delta["repro_propagation_conversions_total"]
        )

    def test_mine_and_discover_are_the_same_command(
        self, obs_on, capsys
    ):
        assert main(["mine", PROBLEM, EVENTS]) == 0
        mine_out = capsys.readouterr().out
        assert main(["discover", PROBLEM, EVENTS]) == 0
        discover_out = capsys.readouterr().out
        assert mine_out == discover_out
        assert '"A": "ALERT"' in mine_out

    def test_root_position_flags_work_too(self, obs_on, tmp_path):
        trace_path = str(tmp_path / "root-flag.json")
        assert main(
            ["--trace", trace_path, "check", PROBLEM]
        ) == 2  # a problem file is not a structure file - still traced
        assert load_trace(trace_path)["spans"][0]["name"] == "cli.check"

    def test_metrics_out_writes_file(self, obs_on, tmp_path, capsys):
        metrics_path = tmp_path / "metrics.prom"
        assert main(
            ["discover", PROBLEM, EVENTS, "--metrics-out",
             str(metrics_path)]
        ) == 0
        text = metrics_path.read_text()
        assert lint_prometheus_text(text) == []
        assert "repro_mine_runs_total" in text
        # Without --metrics the dump stays off stdout.
        assert "# HELP" not in capsys.readouterr().out


class TestObsSubcommand:
    def test_pretty_prints_a_trace(self, obs_on, tmp_path, capsys):
        trace_path = str(tmp_path / "trace.json")
        assert main(["discover", PROBLEM, EVENTS, "--trace",
                     trace_path]) == 0
        capsys.readouterr()
        assert main(["obs", trace_path]) == 0
        out = capsys.readouterr().out
        assert out.startswith("trace:")
        assert "propagate" in out
        assert "mine.scan" in out

    def test_rejects_non_trace_json(self, tmp_path, capsys):
        path = tmp_path / "not-a-trace.json"
        path.write_text(json.dumps({"hello": 1}))
        assert main(["obs", str(path)]) == 2
        assert "error:" in capsys.readouterr().err


class TestProfileStacks:
    def test_traced_run_embeds_profile(self, obs_on, tmp_path, capsys):
        trace_path = str(tmp_path / "trace.json")
        assert main(
            ["discover", PROBLEM, EVENTS, "--trace", trace_path,
             "--profile-stacks"]
        ) == 0
        capsys.readouterr()
        payload = json.loads(Path(trace_path).read_text())
        profile = payload["profile_stacks"]
        assert profile["schema"] == 1
        assert profile["sample_count"] == sum(
            profile["samples"].values()
        )

    def test_obs_flame_renders_folded_stacks(
        self, obs_on, tmp_path, capsys
    ):
        path = tmp_path / "trace.json"
        path.write_text(json.dumps({
            "schema": 2,
            "trace_id": "0" * 32,
            "spans": [],
            "profile_stacks": {
                "schema": 1,
                "hz": 97,
                "sample_count": 5,
                "samples": {"span:mine;a:b;a:c": 3, "a:b": 2},
            },
        }))
        assert main(["obs", "flame", str(path)]) == 0
        captured = capsys.readouterr()
        assert captured.out.splitlines() == [
            "span:mine;a:b;a:c 3",
            "a:b 2",
        ]
        assert "5 samples" in captured.err

    def test_obs_flame_without_profile_errors(self, tmp_path, capsys):
        path = tmp_path / "plain.json"
        path.write_text(json.dumps({
            "schema": 2, "trace_id": "0" * 32, "spans": [],
        }))
        assert main(["obs", "flame", str(path)]) == 1
        assert "no profile samples" in capsys.readouterr().err

    def test_obs_flame_requires_a_file(self, capsys):
        assert main(["obs", "flame"]) == 2
        assert "error:" in capsys.readouterr().err


class TestObsOff:
    def test_discover_output_is_identical_with_obs_off(
        self, obs_on, capsys
    ):
        from repro.obs import configure

        assert main(["discover", PROBLEM, EVENTS]) == 0
        on_out = capsys.readouterr().out
        configure(False)
        try:
            assert main(["discover", PROBLEM, EVENTS]) == 0
        finally:
            configure(True)
        assert capsys.readouterr().out == on_out

    def test_counters_do_not_move_with_obs_off(self, obs_off):
        registry = global_metrics()
        runs = registry.get("repro_mine_runs_total")
        before = runs.value()
        assert main(["discover", PROBLEM, EVENTS]) == 0
        assert runs.value() == before

    def test_trace_file_is_written_but_empty(self, obs_off, tmp_path):
        trace_path = str(tmp_path / "empty.json")
        assert main(["discover", PROBLEM, EVENTS, "--trace",
                     trace_path]) == 0
        assert load_trace(trace_path)["spans"] == []
