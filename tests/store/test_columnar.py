"""Columnar store unit + chaos tests (the mmap persistence path).

The persistence contract: a well-formed file round-trips bit-identical
columns (memory-mapped or not); ANY malformed file - truncated, wrong
magic, corrupt header, size mismatch - makes :func:`load_columnar`
return None (fall back to the object path) and increments
``repro_columnar_fallback_total``, never raising to the caller.
"""

import os

import pytest

import repro.store.columnar as columnar_module
from repro.mining.events import Event, EventSequence
from repro.obs import counter_deltas, metrics_snapshot
from repro.store import (
    ColumnarEventStore,
    ColumnarFormatError,
    EventStore,
    columnar_kernel,
    load_columnar,
    resolve_columnar,
)

KERNELS = ["numpy", "fallback"]


@pytest.fixture(params=KERNELS)
def kernel(request, monkeypatch):
    if request.param == "numpy":
        if columnar_module._np is None:
            pytest.skip("numpy unavailable")
    else:
        monkeypatch.setattr(columnar_module, "_np", None)
    return request.param


def _sample_store():
    store = EventStore()
    store.append("login", 100, {"user": "ada"})
    store.append("login", 164)
    store.append("alert", 164, {"level": 3})
    store.append("logout", 4000)
    return store


def _fallback_delta(before):
    return counter_deltas(before, metrics_snapshot()).get(
        "repro_columnar_fallback_total", 0
    )


# ----------------------------------------------------------------------
# Mode resolution
# ----------------------------------------------------------------------
class TestResolution:
    def test_modes(self, monkeypatch):
        monkeypatch.delenv("REPRO_COLUMNAR", raising=False)
        assert resolve_columnar() == "on"
        assert resolve_columnar("auto") == "on"
        assert resolve_columnar("on") == "on"
        assert resolve_columnar("off") == "off"
        monkeypatch.setenv("REPRO_COLUMNAR", "off")
        assert resolve_columnar() == "off"
        with pytest.raises(ValueError):
            resolve_columnar("banana")

    def test_kernel_names(self, kernel):
        assert columnar_kernel() == kernel
        assert ColumnarEventStore.from_events([]).kernel == kernel


# ----------------------------------------------------------------------
# Construction and reads
# ----------------------------------------------------------------------
class TestConstruction:
    def test_round_trip_from_store(self, kernel):
        store = _sample_store()
        view = ColumnarEventStore.from_store(store)
        assert len(view) == 4
        assert view.types() == ["alert", "login", "logout"]
        assert view.count("login") == 2
        assert view.count() == 4
        assert view.span() == (100, 4000)
        assert view.event_at(0) == ("login", 100)
        assert view.attributes_at(0) == {"user": "ada"}
        assert view.attributes_at(1) == {}
        assert view.record_id_at(2) == 2
        rebuilt = view.to_event_store()
        assert [
            (r.record_id, r.etype, r.time, r.attributes)
            for r in rebuilt
        ] == [
            (r.record_id, r.etype, r.time, r.attributes)
            for r in store
        ]

    def test_sequence_positions_align(self, kernel):
        sequence = EventSequence(
            [Event("a", 5), Event("b", 5), Event("a", 9)]
        )
        view = ColumnarEventStore.from_sequence(sequence)
        for position in range(len(sequence)):
            assert view.event_at(position) == tuple(
                sequence[position]
            )
        assert view.to_sequence() == sequence

    def test_unsorted_times_rejected(self, kernel):
        with pytest.raises(ValueError):
            ColumnarEventStore([5, 3], [0, 0], ["a"])

    def test_zero_event_store(self, kernel):
        view = ColumnarEventStore.from_events([])
        assert len(view) == 0
        assert view.types() == []
        assert view.count("a") == 0
        assert view.postings("a") == ((), ())
        assert not view.has_in_window("a", 0, 100)
        assert view.screen_anchors([], [("a", 0, 1)]) == []
        with pytest.raises(ValueError):
            view.span()


# ----------------------------------------------------------------------
# Persistence: round trip
# ----------------------------------------------------------------------
class TestPersistence:
    def test_round_trip(self, kernel, tmp_path):
        path = str(tmp_path / "events.col")
        store = _sample_store()
        view = ColumnarEventStore.from_store(store)
        view.save(path)
        for mmap in (True, False):
            loaded = ColumnarEventStore.load(path, mmap=mmap)
            assert len(loaded) == len(view)
            for position in range(len(view)):
                assert loaded.event_at(position) == view.event_at(
                    position
                )
                assert loaded.attributes_at(
                    position
                ) == view.attributes_at(position)
                assert loaded.record_id_at(
                    position
                ) == view.record_id_at(position)

    def test_zero_event_round_trip(self, kernel, tmp_path):
        path = str(tmp_path / "empty.col")
        ColumnarEventStore.from_events([]).save(path)
        loaded = load_columnar(path)
        assert loaded is not None
        assert len(loaded) == 0

    def test_store_larger_than_one_bucket(self, kernel, tmp_path):
        # A multi-year span forces many skip-index buckets; window
        # queries must keep agreeing with brute force after a reload.
        events = [("tick", t * 40000) for t in range(200)]
        view = ColumnarEventStore.from_events(events)
        span = view.span()[1] - view.span()[0]
        assert span > view.bucket_seconds  # really > one bucket
        path = str(tmp_path / "big.col")
        view.save(path)
        loaded = load_columnar(path)
        assert loaded is not None
        for start, stop in [
            (0, 40000),
            (39999, 40001),
            (1, 0),
            (0, 200 * 40000),
            (123456, 654321),
        ]:
            expected = [
                position
                for position, (_, t) in enumerate(events)
                if start <= t <= stop
            ]
            assert list(
                loaded.positions_in_window("tick", start, stop)
            ) == expected
            assert loaded.count_in_window(
                "tick", start, stop
            ) == len(expected)
            assert loaded.has_in_window("tick", start, stop) == bool(
                expected
            )

    def test_mid_iteration_reopen(self, kernel, tmp_path):
        """The recover() idiom: a reader holding a loaded view keeps
        working after the file is atomically replaced and reopened -
        the old view stays consistent, the new one sees new contents."""
        path = str(tmp_path / "live.col")
        ColumnarEventStore.from_events(
            [("a", 1), ("b", 2)]
        ).save(path)
        first = load_columnar(path)
        assert first is not None
        seen = []
        for position in range(len(first)):
            seen.append(first.event_at(position))
            if position == 0:
                # Writer replaces the file mid-iteration.
                replacement = str(tmp_path / "next.col")
                ColumnarEventStore.from_events(
                    [("a", 1), ("b", 2), ("c", 3)]
                ).save(replacement)
                os.replace(replacement, path)
                second = load_columnar(path)
        assert seen == [("a", 1), ("b", 2)]
        assert second is not None
        assert len(second) == 3
        assert second.event_at(2) == ("c", 3)


# ----------------------------------------------------------------------
# Chaos: corrupt files must fall back, counted
# ----------------------------------------------------------------------
class TestChaos:
    def _saved(self, tmp_path):
        path = str(tmp_path / "events.col")
        ColumnarEventStore.from_store(_sample_store()).save(path)
        return path

    def test_truncated_file_falls_back(self, kernel, tmp_path, obs_on):
        path = self._saved(tmp_path)
        size = os.path.getsize(path)
        for keep in (size - 1, size - 8, 20, len(b"RPCOL1\n") + 3, 0):
            with open(path, "r+b") as handle:
                handle.truncate(keep)
            before = metrics_snapshot()
            assert load_columnar(path) is None
            assert _fallback_delta(before) == 1
            # Restore for the next truncation point.
            ColumnarEventStore.from_store(_sample_store()).save(path)

    def test_bad_magic_falls_back(self, kernel, tmp_path, obs_on):
        path = self._saved(tmp_path)
        with open(path, "r+b") as handle:
            handle.write(b"GARBAGE")
        before = metrics_snapshot()
        assert load_columnar(path) is None
        assert _fallback_delta(before) == 1

    def test_corrupt_header_falls_back(self, kernel, tmp_path, obs_on):
        path = self._saved(tmp_path)
        with open(path, "r+b") as handle:
            handle.seek(len(b"RPCOL1\n") + 8)
            handle.write(b"\xff\xfe{{{{")
        before = metrics_snapshot()
        assert load_columnar(path) is None
        assert _fallback_delta(before) == 1

    def test_appended_garbage_falls_back(self, kernel, tmp_path, obs_on):
        # Size mismatch in the other direction: extra trailing bytes.
        path = self._saved(tmp_path)
        with open(path, "ab") as handle:
            handle.write(b"trailing")
        before = metrics_snapshot()
        assert load_columnar(path) is None
        assert _fallback_delta(before) == 1

    def test_missing_file_falls_back(self, kernel, tmp_path, obs_on):
        before = metrics_snapshot()
        assert load_columnar(str(tmp_path / "absent.col")) is None
        assert _fallback_delta(before) == 1

    def test_strict_load_raises_instead(self, kernel, tmp_path):
        path = self._saved(tmp_path)
        with open(path, "r+b") as handle:
            handle.truncate(10)
        with pytest.raises(ColumnarFormatError):
            ColumnarEventStore.load(path)

    def test_fallback_recovers_from_source_of_truth(
        self, kernel, tmp_path
    ):
        """The documented recovery path: when the columnar file is
        corrupt, reload from the JSONL source and rebuild the view."""
        store = _sample_store()
        jsonl = str(tmp_path / "events.jsonl")
        store.save_jsonl(jsonl)
        path = self._saved(tmp_path)
        with open(path, "r+b") as handle:
            handle.truncate(16)
        view = load_columnar(path)
        if view is None:
            recovered = EventStore.load_jsonl(jsonl)
            view = recovered.columnar()
        assert len(view) == len(store)
        assert view.event_at(0) == ("login", 100)
