"""Tests for the temporal event store."""

import io

import pytest

from repro.constraints import TCG, EventStructure
from repro.granularity.gregorian import SECONDS_PER_DAY, SECONDS_PER_HOUR
from repro.mining import Event, EventDiscoveryProblem
from repro.store import EventRecord, EventStore

D, H = SECONDS_PER_DAY, SECONDS_PER_HOUR


@pytest.fixture
def store():
    s = EventStore()
    s.append("login", 100, {"user": "ada"})
    s.append("logout", 500, {"user": "ada"})
    s.append("login", 300, {"user": "bob"})  # out of order on purpose
    s.append("alert", 400)
    return s


class TestWrites:
    def test_append_assigns_ids(self, store):
        record = store.append("ping", 900)
        assert record.record_id == 4
        assert record.attributes == {}

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventStore().append("x", -1)

    def test_extend_accepts_events_and_tuples(self):
        s = EventStore()
        added = s.extend([Event("a", 1), ("b", 2)])
        assert added == 2
        assert len(s) == 2


class TestReads:
    def test_iteration_is_time_ordered(self, store):
        times = [record.time for record in store]
        assert times == sorted(times)

    def test_types_and_counts(self, store):
        assert store.types() == ["alert", "login", "logout"]
        assert store.count() == 4
        assert store.count("login") == 2
        assert store.count("nope") == 0

    def test_span(self, store):
        assert store.span() == (100, 500)
        with pytest.raises(ValueError):
            EventStore().span()

    def test_query_by_range(self, store):
        hits = store.query(start=300, stop=450)
        assert [r.time for r in hits] == [300, 400]

    def test_query_by_type_and_predicate(self, store):
        hits = store.query(
            types=["login"], where=lambda r: r.attributes.get("user") == "bob"
        )
        assert len(hits) == 1
        assert hits[0].time == 300

    def test_get_by_id(self, store):
        assert store.get(0).etype == "login"
        with pytest.raises(KeyError):
            store.get(99)

    def test_writes_invalidate_index(self, store):
        store.append("early", 50)
        assert [r.time for r in store][0] == 50
        assert store.count("early") == 1


class TestSnapshotAndMining:
    def test_snapshot_projects_events(self, store):
        sequence = store.snapshot(types=["login", "logout"])
        assert [e.etype for e in sequence] == ["login", "login", "logout"]

    def test_snapshot_window(self, store):
        sequence = store.snapshot(start=200, stop=450)
        assert len(sequence) == 2

    def test_mine_against_store(self, system):
        hour = system.get("hour")
        structure = EventStructure(
            ["A", "B"], {("A", "B"): [TCG(0, 1, hour)]}
        )
        store = EventStore()
        for i in range(6):
            base = i * D
            store.append("alert", base)
            store.append("ack", base + 1800)
        problem = EventDiscoveryProblem(structure, 0.8, "alert")
        outcome = store.mine(problem, system)
        assert {"A": "alert", "B": "ack"} in outcome.solution_assignments()


class TestConstructionHelpers:
    def test_from_sequence(self):
        from repro.mining import EventSequence

        store = EventStore.from_sequence(
            EventSequence([("a", 5), ("b", 2)])
        )
        assert len(store) == 2
        assert [r.time for r in store] == [2, 5]

    def test_from_csv(self, tmp_path):
        path = tmp_path / "log.csv"
        path.write_text("event_type,timestamp\nx,2000-01-01 01:00\ny,10\n")
        store = EventStore.from_csv(str(path))
        assert store.types() == ["x", "y"]
        assert store.span() == (10, 3600)


class TestPersistence:
    def test_jsonl_roundtrip_stream(self, store):
        buffer = io.StringIO()
        store.save_jsonl(buffer)
        buffer.seek(0)
        restored = EventStore.load_jsonl(buffer)
        assert len(restored) == len(store)
        assert restored.get(0).attributes == {"user": "ada"}
        assert [r.time for r in restored] == [r.time for r in store]

    def test_jsonl_roundtrip_path(self, store, tmp_path):
        path = str(tmp_path / "events.jsonl")
        store.save_jsonl(path)
        restored = EventStore.load_jsonl(path)
        assert restored.types() == store.types()

    def test_appends_continue_after_load(self, store, tmp_path):
        path = str(tmp_path / "events.jsonl")
        store.save_jsonl(path)
        restored = EventStore.load_jsonl(path)
        record = restored.append("new", 999)
        assert record.record_id == 4  # ids continue past the loaded max


class TestExtendQuarantineRegression:
    """Regression: id-map consistency across failed/quarantined batches.

    ``extend()`` used to have no dead-letter path at all, so a batch
    with one malformed event aborted mid-way; the fix threads a
    ``Quarantine`` through (like ``load_jsonl``) and guarantees the
    O(1) id map and the cached columnar view stay consistent with
    exactly the records that were appended - after clean batches,
    aborted batches, and quarantined batches alike.
    """

    def test_quarantined_batch_then_lookup_by_id(self):
        from repro.resilience import Quarantine

        store = EventStore()
        store.append("seed", 1)
        quarantine = Quarantine()
        added = store.extend(
            [
                ("good", 5),
                ("", 6),          # invalid type -> quarantined
                ("bad-time", -2),  # invalid time -> quarantined
                ("also-good", 7),
                ("short",),        # not a pair -> quarantined
            ],
            quarantine=quarantine,
        )
        assert added == 2
        assert len(quarantine) == 3
        assert len(store) == 3
        # The O(1) id map answers for every appended record...
        assert store.get(0).etype == "seed"
        assert store.get(1).etype == "good"
        assert store.get(2).etype == "also-good"
        # ...and for nothing else.
        with pytest.raises(KeyError):
            store.get(3)

    def test_failed_validation_mid_batch_without_quarantine(self):
        from repro.resilience import EventValidationError

        store = EventStore()
        store.append("seed", 1)
        store.get(0)  # force the index warm so append stays incremental
        with pytest.raises(EventValidationError):
            store.extend([("ok", 2), ("", 3), ("never", 4)])
        # Events before the malformed one stay; the id map agrees.
        assert len(store) == 2
        assert store.get(1).etype == "ok"
        with pytest.raises(KeyError):
            store.get(2)
        # The next id is not burned by the failed append.
        assert store.append("after", 9).record_id == 2

    def test_columnar_view_invalidated_by_partial_batches(self):
        from repro.resilience import Quarantine

        store = EventStore()
        store.append("a", 1)
        stale = store.columnar()
        quarantine = Quarantine()
        store.extend([("b", 2), ("", 3)], quarantine=quarantine)
        fresh = store.columnar()
        assert fresh is not stale
        assert len(fresh) == 2
        assert [fresh.type_at(i) for i in range(2)] == ["a", "b"]
        assert fresh.record_id_at(1) == store.get(1).record_id

    def test_quarantined_load_then_extend_then_get(self, tmp_path):
        from repro.resilience import Quarantine

        path = str(tmp_path / "events.jsonl")
        with open(path, "w") as handle:
            handle.write('{"id": 0, "etype": "a", "time": 4}\n')
            handle.write("not json\n")
            handle.write('{"id": 2, "etype": "b", "time": 9}\n')
        quarantine = Quarantine()
        store = EventStore.load_jsonl(path, quarantine=quarantine)
        assert len(quarantine) == 1
        store.extend([("c", 11), ("", 0)], quarantine=quarantine)
        assert len(quarantine) == 2
        assert store.get(0).etype == "a"
        assert store.get(2).etype == "b"
        assert store.get(3).etype == "c"
        assert len(store) == 3
