"""Stateful (model-based) testing of the event store.

Hypothesis drives random interleavings of appends and queries against
a trivial reference model (a plain list), checking that the store's
lazily-maintained indexes never drift from the truth.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.store import EventStore

TYPES = ["a", "b", "c"]


class EventStoreMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.store = EventStore()
        self.model = []  # list of (etype, time)

    @rule(
        etype=st.sampled_from(TYPES),
        time=st.integers(min_value=0, max_value=10_000),
    )
    def append(self, etype, time):
        record = self.store.append(etype, time)
        assert record.etype == etype
        self.model.append((etype, time))

    @rule(
        etype=st.sampled_from(TYPES),
        times=st.lists(
            st.integers(min_value=0, max_value=10_000), max_size=4
        ),
    )
    def extend(self, etype, times):
        self.store.extend((etype, t) for t in times)
        self.model.extend((etype, t) for t in times)

    @rule(
        start=st.integers(min_value=0, max_value=10_000),
        span=st.integers(min_value=0, max_value=4_000),
    )
    def range_query_matches_model(self, start, span):
        stop = start + span
        got = [(r.etype, r.time) for r in self.store.query(start=start, stop=stop)]
        expected = sorted(
            (pair for pair in self.model if start <= pair[1] <= stop),
            key=lambda pair: pair[1],
        )
        assert sorted(got) == sorted(expected)
        assert [t for _, t in got] == [t for _, t in sorted(got, key=lambda p: p[1])]

    @rule(etype=st.sampled_from(TYPES))
    def type_count_matches_model(self, etype):
        expected = sum(1 for t, _ in self.model if t == etype)
        assert self.store.count(etype) == expected

    @invariant()
    def length_matches(self):
        assert len(self.store) == len(self.model)

    @invariant()
    def iteration_is_sorted(self):
        times = [record.time for record in self.store]
        assert times == sorted(times)


EventStoreMachine.TestCase.settings = settings(
    max_examples=30, stateful_step_count=20, deadline=None
)
TestEventStoreStateful = EventStoreMachine.TestCase
