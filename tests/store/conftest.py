"""Shared fixtures for the store suite.

``obs_on`` mirrors tests/obs/conftest.py: tests that assert the
``repro_columnar_fallback_total`` counter force the observability
runtime on (and restore it), so the suite passes under the CI job
that sets ``REPRO_OBS=off``.
"""

import pytest

from repro.obs import configure, obs_enabled


@pytest.fixture
def obs_on():
    previous = obs_enabled()
    configure(True)
    yield
    configure(previous)
