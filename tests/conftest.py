"""Shared fixtures: granularity systems and the paper's example structures."""

import pytest

from repro.constraints import TCG, EventStructure
from repro.granularity import standard_system


@pytest.fixture(scope="session")
def system():
    """The standard granularity system (direct conversions), shared so
    size tables and conversion caches are built once per test run."""
    return standard_system()


@pytest.fixture(scope="session")
def system_fig3():
    """The standard system using the paper's Figure 3 table conversions."""
    return standard_system(conversion_mode="figure3")


@pytest.fixture(scope="session")
def figure_1a(system):
    """The stock event structure of the paper's Figure 1(a)."""
    bday = system.get("b-day")
    hour = system.get("hour")
    week = system.get("week")
    return EventStructure(
        ["X0", "X1", "X2", "X3"],
        {
            ("X0", "X1"): [TCG(1, 1, bday)],
            ("X1", "X3"): [TCG(0, 1, week)],
            ("X0", "X2"): [TCG(0, 5, bday)],
            ("X2", "X3"): [TCG(0, 8, hour)],
        },
    )


@pytest.fixture(scope="session")
def figure_1b(system):
    """The month/year disjunction gadget of the paper's Figure 1(b)."""
    month = system.get("month")
    year = system.get("year")
    return EventStructure(
        ["X0", "X1", "X2", "X3"],
        {
            ("X0", "X1"): [TCG(11, 11, month), TCG(0, 0, year)],
            ("X0", "X2"): [TCG(0, 12, month)],
            ("X2", "X3"): [TCG(11, 11, month), TCG(0, 0, year)],
        },
    )
