"""Fuzzed round-trip tests: random structures through JSON."""

import json

from hypothesis import given, settings

from repro.granularity import standard_system
from repro.io import structure_from_dict, structure_to_dict

from ..strategies import rooted_dags

SYSTEM = standard_system()


class TestStructureRoundtripFuzz:
    @given(structure=rooted_dags())
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_preserves_everything(self, structure):
        payload = structure_to_dict(structure)
        # Must survive an actual JSON encode/decode, not just dicts.
        payload = json.loads(json.dumps(payload))
        restored = structure_from_dict(payload, SYSTEM)
        assert restored.variables == structure.variables
        assert restored.root == structure.root
        assert set(restored.arcs()) == set(structure.arcs())
        for arc in structure.arcs():
            assert [str(c) for c in restored.tcgs(*arc)] == [
                str(c) for c in structure.tcgs(*arc)
            ]

    @given(structure=rooted_dags(max_nodes=5))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_preserves_matching(self, structure):
        """Restored structures accept exactly the same assignments."""
        import random

        restored = structure_from_dict(
            json.loads(json.dumps(structure_to_dict(structure))), SYSTEM
        )
        rng = random.Random(42)
        order = structure.topological_order()
        for _ in range(30):
            assignment = {}
            base = rng.randrange(0, 10 * 86400)
            for variable in order:
                preds = [
                    p
                    for p in structure.predecessors(variable)
                    if p in assignment
                ]
                anchor = max((assignment[p] for p in preds), default=base)
                assignment[variable] = anchor + rng.randrange(0, 3 * 86400)
            assert structure.is_satisfied_by(
                assignment
            ) == restored.is_satisfied_by(assignment)
