"""Tests for CSV event logs and the calendar timestamp codec."""

import io

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.io import (
    CsvFormatError,
    format_timestamp,
    parse_timestamp,
    read_events,
    write_events,
)
from repro.mining import Event, EventSequence


class TestTimestampCodec:
    def test_integer_passthrough(self):
        assert parse_timestamp("12345") == 12345
        assert parse_timestamp(" 7 ") == 7

    def test_epoch_date(self):
        assert parse_timestamp("2000-01-01") == 0
        assert parse_timestamp("2000-01-01 00:00:00") == 0

    def test_date_with_time(self):
        assert parse_timestamp("2000-01-02 01:02:03") == (
            86400 + 3600 + 120 + 3
        )
        assert parse_timestamp("2000-01-02 01:02") == 86400 + 3600 + 120

    def test_t_separator(self):
        assert parse_timestamp("2000-01-02T01:00") == 86400 + 3600

    def test_leap_day(self):
        # 2000-02-29 exists; 2001-02-29 does not.
        parse_timestamp("2000-02-29")
        with pytest.raises(CsvFormatError):
            parse_timestamp("2001-02-29")

    def test_pre_epoch_rejected(self):
        with pytest.raises(CsvFormatError):
            parse_timestamp("1999-12-31")

    def test_out_of_range_time(self):
        with pytest.raises(CsvFormatError):
            parse_timestamp("2000-01-01 24:00")
        with pytest.raises(CsvFormatError):
            parse_timestamp("2000-01-01 10:61")

    def test_garbage_rejected(self):
        with pytest.raises(CsvFormatError):
            parse_timestamp("next tuesday")

    @given(st.integers(min_value=0, max_value=10**10))
    def test_format_parse_roundtrip(self, seconds):
        assert parse_timestamp(format_timestamp(seconds)) == seconds

    def test_format_rejects_negative(self):
        with pytest.raises(ValueError):
            format_timestamp(-1)


class TestReadEvents:
    def test_with_header(self):
        text = "event_type,timestamp\nlogin,2000-01-01 08:00\nlogout,28800\n"
        sequence = read_events(io.StringIO(text))
        assert len(sequence) == 2
        assert sequence[0] == Event("login", 8 * 3600)
        assert sequence[1] == Event("logout", 28800)

    def test_without_header(self):
        text = "a,100\nb,50\n"
        sequence = read_events(io.StringIO(text))
        assert [e.etype for e in sequence] == ["b", "a"]

    def test_explicit_header_flag(self):
        text = "a,100\nb,50\n"
        sequence = read_events(io.StringIO(text), has_header=True)
        assert len(sequence) == 1  # first row treated as header

    def test_blank_lines_skipped(self):
        text = "a,100\n\nb,200\n"
        assert len(read_events(io.StringIO(text))) == 2

    def test_short_row_rejected(self):
        with pytest.raises(CsvFormatError):
            read_events(io.StringIO("a,1\njust-one-column\n"))

    def test_file_path(self, tmp_path):
        path = tmp_path / "log.csv"
        path.write_text("x,10\ny,20\n")
        assert len(read_events(str(path))) == 2


class TestWriteEvents:
    def test_roundtrip_calendar_stamps(self):
        sequence = EventSequence([("a", 0), ("b", 86400 + 3661)])
        buffer = io.StringIO()
        write_events(sequence, buffer)
        buffer.seek(0)
        assert read_events(buffer) == sequence

    def test_roundtrip_integer_stamps(self):
        sequence = EventSequence([("a", 5), ("b", 99)])
        buffer = io.StringIO()
        write_events(sequence, buffer, calendar_stamps=False, header=False)
        buffer.seek(0)
        assert read_events(buffer) == sequence

    def test_write_to_path(self, tmp_path):
        path = str(tmp_path / "out.csv")
        write_events(EventSequence([("a", 1)]), path)
        assert read_events(path) == EventSequence([("a", 1)])
