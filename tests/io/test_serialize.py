"""Round-trip tests for the JSON serialisation layer."""

import io

import pytest

from repro.constraints import TCG, ComplexEventType, EventStructure
from repro.granularity import (
    BusinessDayType,
    GranularitySystem,
    GroupedType,
    PeriodicPatternType,
    UniformType,
    month,
    standard_system,
)
from repro.io import (
    SerializationError,
    complex_event_type_from_dict,
    complex_event_type_to_dict,
    dump_json,
    granularity_from_dict,
    granularity_to_dict,
    load_json,
    problem_from_dict,
    problem_to_dict,
    sequence_from_dict,
    sequence_to_dict,
    structure_from_dict,
    structure_to_dict,
    tcg_from_dict,
    tcg_to_dict,
)
from repro.mining import EventDiscoveryProblem, EventSequence


def roundtrip_granularity(ttype, system):
    payload = granularity_to_dict(ttype)
    return granularity_from_dict(payload, system)


class TestGranularityRoundtrip:
    def test_label_reference(self, system):
        restored = roundtrip_granularity(system.get("month"), system)
        assert restored.label == "month"

    def test_uniform(self, system):
        original = UniformType("every-90s", 90, phase=10)
        restored = roundtrip_granularity(original, system)
        assert restored.tick_bounds(3) == original.tick_bounds(3)

    def test_grouped(self, system):
        original = GroupedType(month(), 3, offset=1)
        restored = roundtrip_granularity(original, system)
        assert restored.tick_bounds(2) == original.tick_bounds(2)

    def test_periodic(self, system):
        original = PeriodicPatternType("shift", 100, [(0, 30), (50, 10)], phase=7)
        restored = roundtrip_granularity(original, system)
        for index in range(10):
            assert restored.tick_bounds(index) == original.tick_bounds(index)

    def test_businessday_with_holidays(self, system):
        original = BusinessDayType(
            label="nyse", workdays=(0, 1, 2, 3, 4), holidays=[2, 9]
        )
        restored = roundtrip_granularity(original, system)
        assert restored.tick_bounds(2) == original.tick_bounds(2)
        assert restored.holidays == original.holidays

    def test_business_week_month(self, system):
        for label in ("b-week", "business-month"):
            restored = roundtrip_granularity(system.get(label), system)
            assert restored.tick_bounds(1) == system.get(label).tick_bounds(1)

    def test_unknown_label_rejected(self):
        empty = GranularitySystem()
        with pytest.raises(SerializationError):
            granularity_from_dict({"kind": "label", "label": "month"}, empty)

    def test_unknown_kind_rejected(self, system):
        with pytest.raises(SerializationError):
            granularity_from_dict({"kind": "lunar"}, system)


class TestConstraintRoundtrip:
    def test_tcg(self, system):
        original = TCG(1, 5, system.get("b-day"))
        restored = tcg_from_dict(tcg_to_dict(original), system)
        assert restored.m == 1 and restored.n == 5
        assert restored.granularity.label == "b-day"

    def test_structure(self, system, figure_1a):
        payload = structure_to_dict(figure_1a)
        restored = structure_from_dict(payload, system)
        assert restored.variables == figure_1a.variables
        assert set(restored.arcs()) == set(figure_1a.arcs())
        for arc in figure_1a.arcs():
            assert [str(c) for c in restored.tcgs(*arc)] == [
                str(c) for c in figure_1a.tcgs(*arc)
            ]

    def test_malformed_structure(self, system):
        with pytest.raises(SerializationError):
            structure_from_dict({"variables": ["A"]}, system)

    def test_complex_event_type(self, system, figure_1a):
        cet = ComplexEventType(
            figure_1a,
            {
                "X0": "IBM-rise",
                "X1": "IBM-earnings-report",
                "X2": "HP-rise",
                "X3": "IBM-fall",
            },
        )
        restored = complex_event_type_from_dict(
            complex_event_type_to_dict(cet), system
        )
        assert restored.assignment == cet.assignment


class TestProblemRoundtrip:
    def test_problem(self, system, figure_1a):
        problem = EventDiscoveryProblem(
            figure_1a,
            0.8,
            "IBM-rise",
            {"X3": frozenset(["IBM-fall"]), "X2": None},
        )
        restored = problem_from_dict(problem_to_dict(problem), system)
        assert restored.min_confidence == 0.8
        assert restored.reference_type == "IBM-rise"
        assert restored.candidates["X3"] == frozenset(["IBM-fall"])
        assert restored.candidates["X2"] is None


class TestSequenceRoundtrip:
    def test_sequence(self):
        sequence = EventSequence([("a", 5), ("b", 3), ("a", 9)])
        restored = sequence_from_dict(sequence_to_dict(sequence))
        assert restored == sequence

    def test_malformed(self):
        with pytest.raises(SerializationError):
            sequence_from_dict({"events": [["a"]]})


class TestJsonFileHelpers:
    def test_dump_and_load_stream(self):
        buffer = io.StringIO()
        dump_json({"x": 1}, buffer)
        buffer.seek(0)
        assert load_json(buffer) == {"x": 1}

    def test_dump_and_load_path(self, tmp_path):
        path = str(tmp_path / "payload.json")
        dump_json({"y": [1, 2]}, path)
        assert load_json(path) == {"y": [1, 2]}


class TestEndToEndThroughJson:
    def test_pattern_matches_after_roundtrip(self, system, figure_1a):
        """Serialised pattern behaves identically after restoration."""
        from repro.automata import TagMatcher, build_tag
        from repro.granularity.gregorian import SECONDS_PER_DAY as D
        from repro.granularity.gregorian import SECONDS_PER_HOUR as H

        cet = ComplexEventType(
            figure_1a,
            {
                "X0": "IBM-rise",
                "X1": "IBM-earnings-report",
                "X2": "HP-rise",
                "X3": "IBM-fall",
            },
        )
        restored = complex_event_type_from_dict(
            complex_event_type_to_dict(cet), standard_system()
        )
        sequence = EventSequence(
            [
                ("IBM-rise", 9 * H),
                ("IBM-earnings-report", D + 10 * H),
                ("HP-rise", 2 * D + 11 * H),
                ("IBM-fall", 2 * D + 15 * H),
            ]
        )
        assert TagMatcher(build_tag(cet)).occurs_at(sequence, 0)
        assert TagMatcher(build_tag(restored)).occurs_at(sequence, 0)


class TestIntersectionRoundtrip:
    def test_intersection_type(self, system):
        from repro.granularity import IntersectionType, month, week

        original = IntersectionType(week(), month())
        restored = roundtrip_granularity(original, system)
        for index in range(8):
            assert restored.tick_bounds(index) == original.tick_bounds(index)

    def test_business_hours_roundtrip(self, system):
        from repro.granularity import BusinessDayType, business_hours

        original = business_hours(BusinessDayType(), 9, 17)
        restored = roundtrip_granularity(original, system)
        assert restored.tick_bounds(4) == original.tick_bounds(4)
