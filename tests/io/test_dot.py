"""Tests for DOT export of structures and TAGs."""

from repro.automata import build_tag
from repro.constraints import ComplexEventType
from repro.io import structure_to_dot, tag_to_dot


class TestStructureDot:
    def test_figure_1a(self, figure_1a):
        dot = structure_to_dot(figure_1a)
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        # Root is highlighted, every arc labelled with its TCGs.
        assert '"X0" [shape=doublecircle];' in dot
        assert '"X0" -> "X1"' in dot
        assert "[1,1]b-day" in dot
        assert dot.count("->") == len(figure_1a.arcs())

    def test_custom_name(self, figure_1a):
        assert structure_to_dot(figure_1a, name="fig1a").startswith(
            "digraph fig1a"
        )


class TestTagDot:
    def test_example1_tag(self, figure_1a):
        cet = ComplexEventType(
            figure_1a,
            {
                "X0": "IBM-rise",
                "X1": "IBM-earnings-report",
                "X2": "HP-rise",
                "X3": "IBM-fall",
            },
        )
        build = build_tag(cet)
        dot = tag_to_dot(build.tag)
        assert dot.startswith("digraph")
        assert "doublecircle" in dot  # the accepting state
        assert "ANY" in dot  # skip loops
        assert "IBM-rise" in dot
        assert "reset" in dot
        # One dashed ANY loop per state.
        assert dot.count("style=dashed") == len(build.tag.states)
