"""Cross-module integration tests: the paper's full workflows.

These tests exercise whole pipelines (granularities -> constraints ->
automata -> mining) on the paper's own examples, rather than individual
modules.
"""

import random

import pytest

from repro.automata import TagMatcher, build_tag
from repro.automata.structmatch import find_occurrence
from repro.constraints import (
    TCG,
    ComplexEventType,
    EventStructure,
    check_consistency_exact,
    propagate,
)
from repro.granularity import standard_system
from repro.granularity.gregorian import SECONDS_PER_DAY, SECONDS_PER_HOUR
from repro.mining import (
    EventDiscoveryProblem,
    discover,
    naive_discover,
    planted_sequence,
)

D, H = SECONDS_PER_DAY, SECONDS_PER_HOUR


@pytest.fixture
def example1(figure_1a):
    return ComplexEventType(
        figure_1a,
        {
            "X0": "IBM-rise",
            "X1": "IBM-earnings-report",
            "X2": "HP-rise",
            "X3": "IBM-fall",
        },
    )


class TestExample2EndToEnd:
    """The paper's Example 2: discover what happens between an IBM rise
    and fall at confidence 0.8, with X3 pinned to IBM-fall."""

    def test_discovers_planted_relationship(self, system, figure_1a, example1):
        rng = random.Random(2024)
        sequence, planted = planted_sequence(
            example1,
            system,
            n_roots=25,
            confidence=0.9,
            rng=rng,
            noise_types=["HP-fall", "DEC-rise", "DEC-fall"],
            noise_events_per_root=5,
        )
        assert planted >= 20
        problem = EventDiscoveryProblem(
            figure_1a,
            0.8,
            "IBM-rise",
            {"X3": frozenset(["IBM-fall"])},
        )
        outcome = discover(problem, sequence, system)
        assert dict(example1.assignment) in outcome.solution_assignments()

    def test_naive_and_optimised_agree(self, system, figure_1a, example1):
        rng = random.Random(77)
        sequence, _ = planted_sequence(
            example1,
            system,
            n_roots=12,
            confidence=0.85,
            rng=rng,
            noise_types=["HP-fall"],
            noise_events_per_root=4,
        )
        problem = EventDiscoveryProblem(
            figure_1a, 0.6, "IBM-rise", {"X3": frozenset(["IBM-fall"])}
        )
        naive = naive_discover(problem, sequence, system)
        optimised = discover(problem, sequence, system)
        assert sorted(map(str, naive.solution_assignments())) == sorted(
            map(str, optimised.solution_assignments())
        )
        assert optimised.automaton_starts <= naive.automaton_starts


class TestPropagationTightensMatching:
    """Derived constraints define the same matches (soundness in situ)."""

    def test_derived_structure_matches_same_roots(self, system, figure_1a, example1):
        rng = random.Random(31)
        sequence, _ = planted_sequence(
            example1, system, n_roots=8, confidence=1.0, rng=rng
        )
        derived = propagate(figure_1a, system).derived_structure()
        derived_cet = ComplexEventType(derived, dict(example1.assignment))
        original = TagMatcher(build_tag(example1))
        tightened = TagMatcher(build_tag(derived_cet))
        for index in sequence.occurrence_indices("IBM-rise"):
            if original.occurs_at(sequence, index):
                assert tightened.occurs_at(sequence, index)


class TestConsistencyBeforeMining:
    def test_exact_and_approx_agree_on_examples(self, system, figure_1a, figure_1b):
        assert propagate(figure_1a, system).consistent
        report = check_consistency_exact(
            figure_1a, system, window_seconds=60 * D
        )
        assert report.completed and report.consistent
        assert propagate(figure_1b, system).consistent
        report_b = check_consistency_exact(
            figure_1b, system, window_seconds=3 * 366 * D
        )
        assert report_b.completed and report_b.consistent


class TestExoticGranularitiesEndToEnd:
    """Combinator-built and periodic types flow through the pipeline."""

    def test_monday_pattern(self):
        """Matching with a FilteredType ('Mondays') granularity."""
        from repro.granularity import FilteredType, day

        system = standard_system()
        mondays = system.register(
            FilteredType(day(), lambda i: i % 7 == 0, "monday")
        )
        structure = EventStructure(
            ["kickoff", "retro"],
            {("kickoff", "retro"): [TCG(1, 1, mondays)]},
        )
        cet = ComplexEventType(
            structure, {"kickoff": "kickoff", "retro": "retro"}
        )
        matcher = TagMatcher(build_tag(cet))
        from repro.mining import EventSequence

        seq = EventSequence(
            [
                ("kickoff", 0 * D + 10 * H),      # Monday week 0
                ("retro", 7 * D + 16 * H),        # Monday week 1: match
                ("kickoff", 14 * D + 10 * H),
                ("retro", 22 * D + 16 * H),       # a Tuesday: no match
            ]
        )
        assert matcher.occurs_at(seq, 0)
        assert not matcher.occurs_at(seq, 2)

    def test_business_hours_pattern(self):
        """Matching with an IntersectionType granularity."""
        from repro.granularity import BusinessDayType, business_hours

        system = standard_system()
        office = system.register(business_hours(BusinessDayType()))
        structure = EventStructure(
            ["req", "resp"], {("req", "resp"): [TCG(0, 0, office)]}
        )
        cet = ComplexEventType(structure, {"req": "req", "resp": "resp"})
        matcher = TagMatcher(build_tag(cet))
        from repro.mining import EventSequence

        seq = EventSequence(
            [
                ("req", 10 * H),           # Monday 10:00
                ("resp", 16 * H),          # Monday 16:00: same office day
                ("req", 1 * D + 16 * H),   # Tuesday 16:00
                ("resp", 1 * D + 18 * H),  # Tuesday 18:00: closed
            ]
        )
        assert matcher.occurs_at(seq, 0)
        assert not matcher.occurs_at(seq, 2)

    def test_shift_pattern_discovery(self):
        """Mining with a periodic duty-cycle granularity."""
        from repro.granularity import shifts
        from repro.mining import EventDiscoveryProblem, EventSequence, discover

        system = standard_system()
        duty = system.register(shifts("duty", 8 * H, 16 * H))
        structure = EventStructure(
            ["handover", "incident"],
            {("handover", "incident"): [TCG(0, 0, duty)]},
        )
        events = []
        for day_index in range(8):
            base = day_index * D
            events.append(("handover", base + 1 * H))
            events.append(("incident", base + 5 * H))  # same shift
        sequence = EventSequence(events)
        problem = EventDiscoveryProblem(structure, 0.9, "handover")
        outcome = discover(problem, sequence, system)
        assert {"handover": "handover", "incident": "incident"} in (
            outcome.solution_assignments()
        )


class TestCoarseGranularityPatterns:
    """Year/month-scale patterns exercise long windows end to end."""

    def test_same_year_reviews(self, system):
        year = system.get("year")
        month = system.get("month")
        structure = EventStructure(
            ["kickoff", "review"],
            {("kickoff", "review"): [TCG(0, 0, year), TCG(6, 9, month)]},
        )
        cet = ComplexEventType(
            structure, {"kickoff": "kickoff", "review": "review"}
        )
        matcher = TagMatcher(build_tag(cet))
        from repro.mining import EventSequence

        jan = 10 * D
        # 2000 is a leap year: month 7 (August) starts on day 213.
        aug = 215 * D
        next_feb = 400 * D
        seq = EventSequence(
            [
                ("kickoff", jan),
                ("review", aug),       # same year, 7 months later: match
                ("kickoff", 340 * D),  # December kickoff
                ("review", next_feb),  # review lands next year: no match
            ]
        )
        assert matcher.occurs_at(seq, 0)
        assert not matcher.occurs_at(seq, 2)

    def test_propagation_derives_second_window_for_year_pattern(self, system):
        from repro.granularity import second

        year = system.get("year")
        structure = EventStructure(
            ["a", "b"], {("a", "b"): [TCG(0, 0, year)]}
        )
        result = propagate(structure, system, extra_granularities=[second()])
        lo, hi = result.interval("a", "b", "second")
        assert lo == 0
        assert hi == 366 * 86400 - 1  # within one (leap) year
    """Six-day trading week with a holiday: the whole stack adapts."""

    def test_pipeline_with_custom_system(self):
        system = standard_system(
            workdays=(0, 1, 2, 3, 4, 5), holidays=[2]
        )
        bday = system.get("b-day")
        structure = EventStructure(
            ["A", "B"], {("A", "B"): [TCG(1, 1, bday)]}
        )
        cet = ComplexEventType(structure, {"A": "open", "B": "close"})
        matcher = TagMatcher(build_tag(cet))
        from repro.mining import EventSequence

        seq = EventSequence(
            [
                ("open", 1 * D + 9 * H),   # Tuesday
                ("close", 3 * D + 9 * H),  # Thursday (Wed is a holiday)
                ("open", 4 * D + 9 * H),   # Friday
                ("close", 5 * D + 9 * H),  # Saturday: a workday here
            ]
        )
        assert matcher.occurs_at(seq, 0)  # Tue -> Thu is 1 b-day apart
        assert matcher.occurs_at(seq, 2)  # Fri -> Sat consecutive
        # Reference matcher agrees throughout.
        for index in (0, 2):
            assert find_occurrence(cet, seq, index) is not None
