"""Tests for the exact (exponential) consistency checker."""

import pytest

from repro.constraints import (
    TCG,
    EventStructure,
    candidate_instants,
    check_consistency_exact,
    distance_values,
)
from repro.granularity.gregorian import SECONDS_PER_DAY

THREE_YEARS = 3 * 366 * SECONDS_PER_DAY


class TestFigure1b:
    """The paper's month/year gadget: exact analysis reveals {0, 12}."""

    def test_gadget_is_consistent(self, figure_1b, system):
        report = check_consistency_exact(
            figure_1b, system, window_seconds=THREE_YEARS
        )
        assert report.completed
        assert report.consistent
        assert figure_1b.is_satisfied_by(report.witness)

    def test_distance_disjunction(self, figure_1b, system):
        values = distance_values(
            figure_1b,
            system,
            "X0",
            "X2",
            "month",
            window_seconds=THREE_YEARS,
        )
        assert values == [0, 12]


class TestAgainstApproximate:
    def test_exact_confirms_simple_consistency(self, system):
        day = system.get("day")
        structure = EventStructure(
            ["A", "B"], {("A", "B"): [TCG(2, 4, day)]}
        )
        report = check_consistency_exact(
            structure, system, window_seconds=30 * SECONDS_PER_DAY
        )
        assert report.consistent
        a, b = report.witness["A"], report.witness["B"]
        assert 2 <= (b - a) // SECONDS_PER_DAY <= 4

    def test_exact_confirms_inconsistency(self, system):
        day = system.get("day")
        structure = EventStructure(
            ["A", "B", "C"],
            {
                ("A", "B"): [TCG(5, 5, day)],
                ("B", "C"): [TCG(5, 5, day)],
                ("A", "C"): [TCG(0, 4, day)],
            },
        )
        report = check_consistency_exact(
            structure, system, window_seconds=30 * SECONDS_PER_DAY
        )
        assert report.completed
        assert not report.consistent
        # Refuted by propagation before any search.
        assert report.nodes_explored == 0

    def test_inconsistency_beyond_propagation(self, system):
        """An inconsistency propagation cannot see: X must sit in the
        first month of a year twice, 6 months apart."""
        month = system.get("month")
        year = system.get("year")
        structure = EventStructure(
            ["X0", "X1", "X2", "X3"],
            {
                ("X0", "X1"): [TCG(11, 11, month), TCG(0, 0, year)],
                ("X0", "X2"): [TCG(6, 6, month)],
                ("X2", "X3"): [TCG(11, 11, month), TCG(0, 0, year)],
            },
        )
        report = check_consistency_exact(
            structure, system, window_seconds=THREE_YEARS
        )
        assert report.completed
        assert not report.consistent
        assert report.nodes_explored > 0  # propagation alone was fooled


class TestSearchMechanics:
    def test_candidate_instants_contains_tick_starts(self, system):
        day = system.get("day")
        structure = EventStructure(
            ["A", "B"], {("A", "B"): [TCG(0, 1, day)]}
        )
        candidates = candidate_instants(
            structure, system, window_seconds=5 * SECONDS_PER_DAY
        )
        assert candidates[0] == 0
        assert SECONDS_PER_DAY in candidates
        assert candidates == sorted(candidates)

    def test_explicit_resolution(self, system):
        hour = system.get("hour")
        structure = EventStructure(
            ["A", "B"], {("A", "B"): [TCG(1, 1, hour)]}
        )
        candidates = candidate_instants(
            structure,
            system,
            window_seconds=7200,
            resolution=1800,
        )
        assert 1800 in candidates

    def test_node_budget_aborts(self, figure_1b, system):
        report = check_consistency_exact(
            figure_1b, system, window_seconds=THREE_YEARS, max_nodes=2
        )
        assert not report.completed

    def test_bad_resolution_rejected(self, figure_1b, system):
        with pytest.raises(ValueError):
            candidate_instants(
                figure_1b, system, window_seconds=100, resolution=0
            )
