"""Tests for the exact (complete) structure-analysis toolkit."""

import pytest

from repro.constraints import (
    TCG,
    EventStructure,
    exact_distance_sets,
    find_disjunctions,
    minimal_intervals,
    tightness_report,
)
from repro.granularity.gregorian import SECONDS_PER_DAY

THREE_YEARS = 3 * 366 * SECONDS_PER_DAY
MONTH_WINDOW = 90 * SECONDS_PER_DAY


class TestExactDistanceSets:
    def test_simple_chain(self, system):
        day = system.get("day")
        structure = EventStructure(
            ["A", "B", "C"],
            {
                ("A", "B"): [TCG(1, 2, day)],
                ("B", "C"): [TCG(1, 2, day)],
            },
        )
        sets = exact_distance_sets(
            structure, system, day, MONTH_WINDOW
        )
        assert sets[("A", "B")] == [1, 2]
        assert sets[("A", "C")] == [2, 3, 4]

    def test_figure_1b_gadget(self, figure_1b, system):
        sets = exact_distance_sets(
            figure_1b, system, system.get("month"), THREE_YEARS
        )
        assert sets[("X0", "X2")] == [0, 12]


class TestMinimalIntervals:
    def test_hulls(self, figure_1b, system):
        hulls = minimal_intervals(
            figure_1b, system, system.get("month"), THREE_YEARS
        )
        assert hulls[("X0", "X2")] == (0, 12)
        assert hulls[("X0", "X1")] == (11, 11)


class TestFindDisjunctions:
    def test_figure_1b_detected(self, figure_1b, system):
        disjunctions = find_disjunctions(
            figure_1b, system, "month", THREE_YEARS
        )
        pairs = {d.pair: d for d in disjunctions}
        assert ("X0", "X2") in pairs
        gadget = pairs[("X0", "X2")]
        assert gadget.values == (0, 12)
        assert gadget.holes == tuple(range(1, 12))

    def test_convex_structure_has_none(self, system):
        day = system.get("day")
        structure = EventStructure(
            ["A", "B"], {("A", "B"): [TCG(1, 3, day)]}
        )
        assert find_disjunctions(structure, system, day, MONTH_WINDOW) == []


class TestTightnessReport:
    def test_gadget_slack_is_visible(self, figure_1b, system):
        rows = {
            row.pair: row
            for row in tightness_report(
                figure_1b, system, "month", THREE_YEARS
            )
        }
        # The hull itself is reached for (X0, X2): slack 0 but the SET
        # has holes (that is what find_disjunctions reports).
        assert rows[("X0", "X2")].approximate == (0, 12)
        assert rows[("X0", "X2")].exact == (0, 12)
        assert rows[("X0", "X2")].is_tight

    def test_chain_is_tight(self, system):
        day = system.get("day")
        structure = EventStructure(
            ["A", "B", "C"],
            {
                ("A", "B"): [TCG(1, 2, day)],
                ("B", "C"): [TCG(0, 1, day)],
            },
        )
        rows = tightness_report(structure, system, day, MONTH_WINDOW)
        assert all(row.is_tight for row in rows)
        assert all(row.slack == 0 for row in rows)

    def test_slack_detected_when_approx_looser(self, system):
        """A structure where the approximation is strictly looser: the
        month/year pin forces X1 exactly 11 months after X0, but the
        (X0, X2) hull narrows through the second pin."""
        month = system.get("month")
        year = system.get("year")
        structure = EventStructure(
            ["X0", "X1", "X2"],
            {
                ("X0", "X1"): [TCG(11, 11, month), TCG(0, 0, year)],
                ("X0", "X2"): [TCG(0, 13, month)],
                ("X1", "X2"): [TCG(0, 2, month)],
            },
        )
        rows = {
            row.pair: row
            for row in tightness_report(
                structure, system, "month", THREE_YEARS
            )
        }
        pair = rows[("X0", "X2")]
        assert pair.exact == (11, 13)
        assert pair.slack is not None and pair.slack >= 0
