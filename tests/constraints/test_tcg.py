"""Tests for TCG semantics, including the paper's worked examples."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.constraints import TCG, tcg
from repro.granularity import day, hour, month, second
from repro.granularity.business import BusinessDayType
from repro.granularity.gregorian import SECONDS_PER_DAY, SECONDS_PER_HOUR


class TestConstruction:
    def test_valid(self):
        constraint = TCG(0, 5, day())
        assert constraint.m == 0
        assert constraint.n == 5
        assert constraint.label == "day"

    def test_negative_lower_rejected(self):
        with pytest.raises(ValueError):
            TCG(-1, 5, day())

    def test_inverted_bounds_rejected(self):
        with pytest.raises(ValueError):
            TCG(5, 2, day())

    def test_convenience_constructor(self):
        assert tcg(1, 2, hour()) == TCG(1, 2, hour())

    def test_str(self):
        assert str(TCG(0, 2, hour())) == "[0,2]hour"


class TestPaperExamples:
    """Section 3's three worked examples of TCG satisfaction."""

    def test_same_day(self):
        same_day = TCG(0, 0, day())
        morning = 8 * SECONDS_PER_HOUR
        evening = 20 * SECONDS_PER_HOUR
        assert same_day.is_satisfied(morning, evening)
        assert not same_day.is_satisfied(evening, morning)  # order
        next_day = SECONDS_PER_DAY + 4 * SECONDS_PER_HOUR
        assert not same_day.is_satisfied(evening, next_day)

    def test_within_two_hours(self):
        within = TCG(0, 2, hour())
        t = 1000
        assert within.is_satisfied(t, t)  # same second
        assert within.is_satisfied(t, t + 2 * SECONDS_PER_HOUR)
        assert not within.is_satisfied(t, t + 3 * SECONDS_PER_HOUR)

    def test_next_month(self):
        next_month = TCG(1, 1, month())
        jan = 10 * SECONDS_PER_DAY
        feb = 40 * SECONDS_PER_DAY
        mar = 70 * SECONDS_PER_DAY
        assert next_month.is_satisfied(jan, feb)
        assert not next_month.is_satisfied(jan, mar)
        assert not next_month.is_satisfied(jan, jan)

    def test_day_constraint_not_expressible_in_seconds(self):
        """The paper's 11pm / 4am counter-example: [0,0]day differs from
        [0,86399]second."""
        same_day = TCG(0, 0, day())
        in_seconds = TCG(0, SECONDS_PER_DAY - 1, second())
        eleven_pm = 23 * SECONDS_PER_HOUR
        four_am_next = SECONDS_PER_DAY + 4 * SECONDS_PER_HOUR
        assert in_seconds.is_satisfied(eleven_pm, four_am_next)
        assert not same_day.is_satisfied(eleven_pm, four_am_next)


class TestGapSemantics:
    def test_uncovered_timestamp_fails(self):
        bday = BusinessDayType()
        constraint = TCG(0, 3, bday)
        saturday = 5 * SECONDS_PER_DAY
        monday = 7 * SECONDS_PER_DAY
        assert not constraint.is_satisfied(saturday, monday)
        assert not constraint.is_satisfied(0, saturday)
        thursday = 3 * SECONDS_PER_DAY
        assert constraint.is_satisfied(0, thursday)
        # Monday to next Monday is 5 business days - out of [0, 3].
        assert not constraint.is_satisfied(0, monday)

    def test_distance_of_returns_none_in_gap(self):
        bday = BusinessDayType()
        constraint = TCG(0, 3, bday)
        assert constraint.distance_of(5 * SECONDS_PER_DAY, 0) is None
        assert constraint.distance_of(0, 7 * SECONDS_PER_DAY) == 5


class TestProperties:
    @given(
        t1=st.integers(min_value=0, max_value=10**8),
        delta=st.integers(min_value=0, max_value=10**7),
        m=st.integers(min_value=0, max_value=5),
        span=st.integers(min_value=0, max_value=5),
    )
    def test_satisfaction_matches_definition(self, t1, delta, m, span):
        constraint = TCG(m, m + span, hour())
        t2 = t1 + delta
        expected = m <= (t2 // 3600 - t1 // 3600) <= m + span
        assert constraint.is_satisfied(t1, t2) == expected

    @given(
        t1=st.integers(min_value=0, max_value=10**8),
        t2=st.integers(min_value=0, max_value=10**8),
    )
    def test_order_requirement(self, t1, t2):
        constraint = TCG(0, 10**6, second())
        if t1 > t2:
            assert not constraint.is_satisfied(t1, t2)
