"""Tests for structure entailment and pattern subsumption."""

import random

import pytest

from repro.constraints import (
    TCG,
    ComplexEventType,
    EventStructure,
    entails,
    subsumes,
)
from repro.granularity.gregorian import SECONDS_PER_DAY


def chain(system, bounds):
    """A 3-variable chain with given (m, n, label) per arc."""
    arcs = {}
    names = ["A", "B", "C"]
    for i, (m, n, label) in enumerate(bounds):
        arcs[(names[i], names[i + 1])] = [TCG(m, n, system.get(label))]
    return EventStructure(names[: len(bounds) + 1], arcs)


class TestEntails:
    def test_tighter_entails_looser_same_granularity(self, system):
        specific = chain(system, [(1, 2, "day")])
        general = chain(system, [(0, 5, "day")])
        assert entails(specific, general, system)
        assert not entails(general, specific, system)

    def test_cross_granularity_entailment(self, system):
        specific = chain(system, [(0, 5, "b-day")])
        general = chain(system, [(0, 191, "hour")])
        assert entails(specific, general, system)

    def test_derived_constraints_count(self, system):
        """Entailment sees constraints propagation derives, not only
        explicit arcs: a 2-arc chain entails the composed bound."""
        specific = chain(system, [(1, 2, "day"), (1, 2, "day")])
        general = EventStructure(
            ["A", "C"], {("A", "C"): [TCG(0, 6, system.get("day"))]}
        )
        assert entails(specific, general, system)

    def test_unrelated_pair_not_entailed(self, system):
        # B and C are siblings in the specific structure: no order.
        specific = EventStructure(
            ["A", "B", "C"],
            {
                ("A", "B"): [TCG(0, 2, system.get("day"))],
                ("A", "C"): [TCG(0, 2, system.get("day"))],
            },
        )
        general = EventStructure(
            ["B", "C"], {("B", "C"): [TCG(0, 9, system.get("day"))]}
        )
        assert not entails(specific, general, system)

    def test_extra_variables_block(self, system):
        specific = chain(system, [(0, 1, "day")])
        general = chain(system, [(0, 1, "day"), (0, 1, "day")])
        assert not entails(specific, general, system)

    def test_inconsistent_specific_entails_vacuously(self, system):
        bad = EventStructure(
            ["A", "B"],
            {
                ("A", "B"): [
                    TCG(10, 10, system.get("day")),
                    TCG(0, 0, system.get("week")),
                ]
            },
        )
        anything = chain(system, [(0, 0, "hour")])
        assert entails(bad, anything, system)

    def test_reflexive(self, system, figure_1a):
        assert entails(figure_1a, figure_1a, system)

    def test_semantic_spot_check(self, system):
        """When entailment is proven, sampled matches of the specific
        structure satisfy the general structure."""
        specific = chain(system, [(1, 1, "b-day"), (0, 8, "hour")])
        general = EventStructure(
            ["A", "C"], {("A", "C"): [TCG(0, 1, system.get("week"))]}
        )
        assert entails(specific, general, system)
        rng = random.Random(0)
        found = 0
        for _ in range(3000):
            a = rng.randrange(0, 20 * SECONDS_PER_DAY)
            b = a + rng.randrange(0, 4 * SECONDS_PER_DAY)
            c = b + rng.randrange(0, 10 * 3600)
            assignment = {"A": a, "B": b, "C": c}
            if specific.is_satisfied_by(assignment):
                assert general.is_satisfied_by({"A": a, "C": c})
                found += 1
        assert found > 10


class TestSubsumes:
    def test_assignment_must_agree(self, system):
        tight = chain(system, [(1, 2, "day")])
        loose = chain(system, [(0, 5, "day")])
        a = ComplexEventType(tight, {"A": "x", "B": "y"})
        b = ComplexEventType(loose, {"A": "x", "B": "y"})
        c = ComplexEventType(loose, {"A": "x", "B": "z"})
        assert subsumes(a, b, system)
        assert not subsumes(a, c, system)

    def test_projection_subsumption(self, system):
        full = chain(system, [(1, 2, "day"), (1, 2, "day")])
        projected = EventStructure(
            ["A", "C"], {("A", "C"): [TCG(0, 6, system.get("day"))]}
        )
        a = ComplexEventType(full, {"A": "x", "B": "y", "C": "z"})
        b = ComplexEventType(projected, {"A": "x", "C": "z"})
        assert subsumes(a, b, system)
