"""Tests for the fluent structure builder and TCG text parsing."""

import pytest

from repro.constraints import (
    TCG,
    StructureBuilder,
    parse_tcg,
    parse_tcg_conjunction,
    structure_from_text,
)


class TestParseTcg:
    def test_simple(self, system):
        constraint = parse_tcg("[1,5]day", system)
        assert (constraint.m, constraint.n) == (1, 5)
        assert constraint.label == "day"

    def test_whitespace_tolerant(self, system):
        constraint = parse_tcg("  [ 0 , 2 ] b-day ", system)
        assert constraint.label == "b-day"

    def test_expression_granularity(self, system):
        constraint = parse_tcg("[0,1]group(month,3)", system)
        assert constraint.label == "3-month"

    def test_malformed(self, system):
        for bad in ("day[0,1]", "[1]day", "[a,b]day", ""):
            with pytest.raises(ValueError):
                parse_tcg(bad, system)

    def test_inverted_bounds_propagate_tcg_error(self, system):
        with pytest.raises(ValueError):
            parse_tcg("[5,2]day", system)

    def test_conjunction(self, system):
        tcgs = parse_tcg_conjunction("[1,1]b-day & [0,4]hour", system)
        assert [c.label for c in tcgs] == ["b-day", "hour"]

    def test_empty_conjunction(self, system):
        with pytest.raises(ValueError):
            parse_tcg_conjunction("   ", system)


class TestStructureBuilder:
    def test_figure_1a_via_builder(self, system, figure_1a):
        built = (
            StructureBuilder(system)
            .variables("X0", "X1", "X2", "X3")
            .arc("X0", "X1", "[1,1]b-day")
            .arc("X1", "X3", "[0,1]week")
            .arc("X0", "X2", "[0,5]b-day")
            .arc("X2", "X3", "[0,8]hour")
            .build()
        )
        assert built.variables == figure_1a.variables
        assert set(built.arcs()) == set(figure_1a.arcs())
        for arc in built.arcs():
            assert [str(c) for c in built.tcgs(*arc)] == [
                str(c) for c in figure_1a.tcgs(*arc)
            ]

    def test_implicit_variables(self, system):
        built = (
            StructureBuilder(system)
            .arc("A", "B", "[0,1]day")
            .arc("B", "C", "[0,1]day")
            .build()
        )
        assert built.variables == ("A", "B", "C")
        assert built.root == "A"

    def test_arc_accepts_tcg_objects(self, system):
        day = system.get("day")
        built = (
            StructureBuilder(system)
            .arc("A", "B", TCG(0, 1, day))
            .arc("A", "C", [TCG(0, 2, day), TCG(0, 0, system.get("week"))])
            .build()
        )
        assert len(built.tcgs("A", "C")) == 2

    def test_repeated_arc_accumulates_conjunction(self, system):
        built = (
            StructureBuilder(system)
            .arc("A", "B", "[0,5]day")
            .arc("A", "B", "[0,0]week")
            .build()
        )
        assert len(built.tcgs("A", "B")) == 2

    def test_build_pattern(self, system):
        pattern = (
            StructureBuilder(system)
            .arc("A", "B", "[0,1]day")
            .build_pattern(A="alert", B="ack")
        )
        assert pattern.event_type("A") == "alert"

    def test_invalid_structure_rejected_at_build(self, system):
        builder = StructureBuilder(system).variables("lonely").arc(
            "A", "B", "[0,1]day"
        )
        with pytest.raises(ValueError):
            builder.build()  # 'lonely' unreachable from any root

    def test_structure_from_text(self, system):
        structure = structure_from_text(
            {
                ("A", "B"): "[1,1]b-day",
                ("B", "C"): "[0,4]hour & [0,0]week",
            },
            system,
        )
        assert structure.root == "A"
        assert len(structure.tcgs("B", "C")) == 2
