"""Tests for event structures: validation, traversal, chains, matching."""

import pytest

from repro.constraints import TCG, ComplexEventType, EventStructure
from repro.granularity import day, hour, week
from repro.granularity.gregorian import SECONDS_PER_DAY, SECONDS_PER_HOUR


def simple_chain():
    return EventStructure(
        ["A", "B", "C"],
        {
            ("A", "B"): [TCG(0, 1, day())],
            ("B", "C"): [TCG(0, 2, hour())],
        },
    )


class TestValidation:
    def test_root_detection(self, figure_1a):
        assert figure_1a.root == "X0"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            EventStructure([], {})

    def test_cycle_rejected(self):
        with pytest.raises(ValueError):
            EventStructure(
                ["A", "B"],
                {
                    ("A", "B"): [TCG(0, 1, day())],
                    ("B", "A"): [TCG(0, 1, day())],
                },
            )

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            EventStructure(["A"], {("A", "A"): [TCG(0, 1, day())]})

    def test_unknown_variable_rejected(self):
        with pytest.raises(ValueError):
            EventStructure(["A"], {("A", "Z"): [TCG(0, 1, day())]})

    def test_disconnected_rejected(self):
        # Two components: no root reaches everything.
        with pytest.raises(ValueError):
            EventStructure(
                ["A", "B", "C", "D"],
                {
                    ("A", "B"): [TCG(0, 1, day())],
                    ("C", "D"): [TCG(0, 1, day())],
                },
            )

    def test_two_roots_rejected(self):
        with pytest.raises(ValueError):
            EventStructure(
                ["A", "B", "C"],
                {
                    ("A", "C"): [TCG(0, 1, day())],
                    ("B", "C"): [TCG(0, 1, day())],
                },
            )

    def test_empty_tcg_list_rejected(self):
        with pytest.raises(ValueError):
            EventStructure(["A", "B"], {("A", "B"): []})

    def test_single_variable_ok(self):
        structure = EventStructure(["A"], {})
        assert structure.root == "A"
        assert structure.chains() == [("A",)]


class TestTraversal:
    def test_topological_order(self, figure_1a):
        order = figure_1a.topological_order()
        position = {v: i for i, v in enumerate(order)}
        for src, dst in figure_1a.arcs():
            assert position[src] < position[dst]

    def test_successors_predecessors(self, figure_1a):
        assert set(figure_1a.successors("X0")) == {"X1", "X2"}
        assert set(figure_1a.predecessors("X3")) == {"X1", "X2"}

    def test_leaves(self, figure_1a):
        assert figure_1a.leaves() == ("X3",)

    def test_has_path(self, figure_1a):
        assert figure_1a.has_path("X0", "X3")
        assert figure_1a.has_path("X1", "X3")
        assert not figure_1a.has_path("X1", "X2")
        assert not figure_1a.has_path("X3", "X0")
        assert figure_1a.has_path("X0", "X0")

    def test_granularities(self, figure_1a):
        labels = {t.label for t in figure_1a.granularities()}
        assert labels == {"b-day", "week", "hour"}

    def test_tcgs_lookup(self, figure_1a):
        assert len(figure_1a.tcgs("X0", "X1")) == 1
        assert figure_1a.tcgs("X1", "X2") == ()


class TestChains:
    def test_chain_cover(self, figure_1a):
        chains = figure_1a.chains()
        covered = set()
        for chain in chains:
            assert chain[0] == "X0"
            assert chain[-1] in figure_1a.leaves()
            for i in range(len(chain) - 1):
                arc = (chain[i], chain[i + 1])
                assert arc in figure_1a.constraints
                covered.add(arc)
        assert covered == set(figure_1a.arcs())

    def test_figure_1a_needs_two_chains(self, figure_1a):
        assert len(figure_1a.chains()) == 2

    def test_pure_chain_is_one_chain(self):
        assert len(simple_chain().chains()) == 1


class TestSatisfaction:
    def test_is_satisfied_by(self):
        structure = simple_chain()
        good = {
            "A": 0,
            "B": SECONDS_PER_DAY,
            "C": SECONDS_PER_DAY + SECONDS_PER_HOUR,
        }
        assert structure.is_satisfied_by(good)
        bad = dict(good, C=good["B"] + 3 * SECONDS_PER_HOUR)
        assert not structure.is_satisfied_by(bad)


class TestComplexEventType:
    def test_assignment_lookup(self, figure_1a):
        cet = ComplexEventType(
            figure_1a,
            {
                "X0": "IBM-rise",
                "X1": "IBM-earnings-report",
                "X2": "HP-rise",
                "X3": "IBM-fall",
            },
        )
        assert cet.event_type("X0") == "IBM-rise"
        assert cet.event_types() == {
            "IBM-rise",
            "IBM-earnings-report",
            "HP-rise",
            "IBM-fall",
        }

    def test_missing_variable_rejected(self, figure_1a):
        with pytest.raises(ValueError):
            ComplexEventType(figure_1a, {"X0": "IBM-rise"})

    def test_equality_and_hash(self, figure_1a):
        full = {
            "X0": "IBM-rise",
            "X1": "IBM-earnings-report",
            "X2": "HP-rise",
            "X3": "IBM-fall",
        }
        a = ComplexEventType(figure_1a, full)
        b = ComplexEventType(figure_1a, dict(full))
        c = ComplexEventType(figure_1a, dict(full, X2="HP-fall"))
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_with_constraints_derives_new_structure(self, figure_1a):
        star = {
            ("X0", var): [TCG(0, 3, week())]
            for var in ("X1", "X2", "X3")
        }
        derived = figure_1a.with_constraints(star)
        assert derived.variables == figure_1a.variables
        assert len(derived.arcs()) == 3

    def test_with_constraints_must_keep_rootedness(self, figure_1a):
        with pytest.raises(ValueError):
            figure_1a.with_constraints({("X0", "X1"): [TCG(0, 3, week())]})
