"""Tests for the Simple Temporal Problem solver."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints import INF, STP, InconsistentSTP, solve_intervals


class TestBasics:
    def test_single_constraint(self):
        stp = STP(["a", "b"])
        stp.add("a", "b", 2, 5)
        stp.closure()
        assert stp.interval("a", "b") == (2, 5)
        assert stp.interval("b", "a") == (-5, -2)

    def test_chain_composition(self):
        stp = STP(["a", "b", "c"])
        stp.add("a", "b", 1, 2)
        stp.add("b", "c", 3, 4)
        stp.closure()
        assert stp.interval("a", "c") == (4, 6)

    def test_intersection_tightens(self):
        stp = STP(["a", "b", "c"])
        stp.add("a", "b", 0, 10)
        stp.add("a", "c", 0, 3)
        stp.add("c", "b", 0, 3)
        stp.closure()
        assert stp.interval("a", "b") == (0, 6)

    def test_multiple_adds_intersect(self):
        stp = STP(["a", "b"])
        stp.add("a", "b", 0, 10)
        stp.add("a", "b", 5, 20)
        stp.closure()
        assert stp.interval("a", "b") == (5, 10)

    def test_unconstrained_pair_infinite(self):
        stp = STP(["a", "b"])
        stp.closure()
        lo, hi = stp.interval("a", "b")
        assert hi == INF
        assert lo == -INF


class TestInconsistency:
    def test_negative_cycle_detected(self):
        stp = STP(["a", "b"])
        stp.add("a", "b", 5, 10)
        stp.add("b", "a", 5, 10)
        with pytest.raises(InconsistentSTP):
            stp.closure()

    def test_empty_interval_rejected_on_add(self):
        stp = STP(["a", "b"])
        with pytest.raises(InconsistentSTP):
            stp.add("a", "b", 5, 3)

    def test_three_way_conflict(self):
        stp = STP(["a", "b", "c"])
        stp.add("a", "b", 5, 5)
        stp.add("b", "c", 5, 5)
        stp.add("a", "c", 0, 9)
        with pytest.raises(InconsistentSTP):
            stp.closure()


class TestFiniteIntervals:
    def test_only_forward_pairs_reported(self):
        stp = STP(["a", "b"])
        stp.add("a", "b", 2, 5)
        stp.closure()
        finite = stp.finite_intervals()
        assert finite == {("a", "b"): (2, 5)}

    def test_zero_interval_reported_both_ways(self):
        stp = STP(["a", "b"])
        stp.add("a", "b", 0, 0)
        stp.closure()
        finite = stp.finite_intervals()
        assert finite[("a", "b")] == (0, 0)
        assert finite[("b", "a")] == (0, 0)

    def test_solve_intervals_consistent(self):
        result = solve_intervals(
            ["a", "b", "c"],
            {("a", "b"): (1, 2), ("b", "c"): (1, 2)},
        )
        assert result[("a", "c")] == (2, 4)

    def test_solve_intervals_inconsistent(self):
        result = solve_intervals(
            ["a", "b"],
            {("a", "b"): (1, 2), ("b", "a"): (1, 2)},
        )
        assert result is None


class TestProperties:
    @given(
        bounds=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=20),
                st.integers(min_value=0, max_value=20),
            ),
            min_size=2,
            max_size=5,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_closure_preserves_solutions(self, bounds):
        """A concrete assignment satisfying the inputs satisfies the
        closed network (minimality is checked on the chain shape)."""
        names = ["v%d" % i for i in range(len(bounds) + 1)]
        stp = STP(names)
        assignment = {names[0]: 0}
        for i, (lo, span) in enumerate(bounds):
            stp.add(names[i], names[i + 1], lo, lo + span)
            assignment[names[i + 1]] = assignment[names[i]] + lo
        stp.closure()
        for (x, y), (lo, hi) in stp.finite_intervals().items():
            diff = assignment[y] - assignment[x]
            assert lo <= diff <= hi
