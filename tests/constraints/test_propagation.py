"""Tests for the approximate propagation algorithm (Theorem 2).

Covers the paper's guarantees: soundness (satisfying assignments still
satisfy derived constraints), termination, inconsistency detection, and
the Figure 1(a)/1(b) worked behaviours.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints import (
    TCG,
    EventStructure,
    check_consistency_approx,
    propagate,
)
from repro.granularity import second, standard_system
from repro.granularity.gregorian import SECONDS_PER_DAY, SECONDS_PER_HOUR


class TestFigure1a:
    def test_consistent(self, figure_1a, system):
        result = propagate(figure_1a, system)
        assert result.consistent

    def test_derived_x0_x3(self, figure_1a, system):
        """Mon-Fri business week: tight bounds [1,199]hour, [0,2]week."""
        result = propagate(figure_1a, system)
        assert result.interval("X0", "X3", "hour") == (1, 199)
        assert result.interval("X0", "X3", "week") == (0, 2)

    def test_derived_x0_x3_six_day_week_matches_paper(self):
        """With a Mon-Sat six-day business week the abstract's quoted
        Gamma'(X0,X3) hour bound [1,175] is reproduced exactly (the
        convention the authors evidently used - see EXPERIMENTS.md X1)."""
        system = standard_system(workdays=(0, 1, 2, 3, 4, 5))
        structure = EventStructure(
            ["X0", "X1", "X2", "X3"],
            {
                ("X0", "X1"): [TCG(1, 1, system.get("b-day"))],
                ("X1", "X3"): [TCG(0, 1, system.get("week"))],
                ("X0", "X2"): [TCG(0, 5, system.get("b-day"))],
                ("X2", "X3"): [TCG(0, 8, system.get("hour"))],
            },
        )
        result = propagate(structure, system)
        assert result.interval("X0", "X3", "hour") == (1, 175)

    def test_second_windows_via_extra_granularity(self, figure_1a, system):
        result = propagate(figure_1a, system, extra_granularities=[second()])
        lo, hi = result.interval("X0", "X3", "second")
        assert lo >= 1
        assert hi < 10 * 7 * SECONDS_PER_DAY  # bounded by ~2 weeks, loosely

    def test_derived_tcgs_and_structure(self, figure_1a, system):
        result = propagate(figure_1a, system)
        tcgs = result.derived_tcgs("X0", "X3")
        assert tcgs  # non-empty conjunction
        minimal = result.minimal_derived_tcgs("X0", "X3")
        assert len(minimal) <= len(tcgs)
        assert minimal  # never minimises to nothing
        derived = result.derived_structure()
        assert set(derived.variables) == set(figure_1a.variables)
        assert ("X0", "X3") in derived.constraints

    def test_induced_substructure_two_vars(self, figure_1a, system):
        result = propagate(figure_1a, system)
        sub = result.induced_substructure(["X0", "X3"])
        assert sub is not None
        assert sub.root == "X0"
        assert set(sub.arcs()) == {("X0", "X3")}

    def test_induced_substructure_unrelated_vars(self, figure_1a, system):
        # X1 and X2 are siblings: no path, no constraints, no root.
        assert propagate(figure_1a, system).induced_substructure(
            ["X1", "X2"]
        ) is None


class TestFigure1b:
    def test_gadget_not_refuted(self, figure_1b, system):
        """The structure is satisfiable (distance 0 or 12 months), and
        sound propagation must not refute it."""
        result = propagate(figure_1b, system)
        assert result.consistent

    def test_disjunction_invisible_to_propagation(self, figure_1b, system):
        """Propagation keeps the convex hull [0,12]; the true set of
        realisable distances is {0, 12} (see exact-consistency tests)."""
        result = propagate(figure_1b, system)
        assert result.interval("X0", "X2", "month") == (0, 12)


class TestInconsistencyDetection:
    def test_same_granularity_conflict(self, system):
        day = system.get("day")
        structure = EventStructure(
            ["A", "B", "C"],
            {
                ("A", "B"): [TCG(5, 5, day)],
                ("B", "C"): [TCG(5, 5, day)],
                ("A", "C"): [TCG(0, 4, day)],
            },
        )
        assert not check_consistency_approx(structure, system)

    def test_cross_granularity_conflict(self, system):
        """A 10-day gap cannot be within the same week."""
        structure = EventStructure(
            ["A", "B"],
            {
                ("A", "B"): [
                    TCG(10, 10, system.get("day")),
                    TCG(0, 0, system.get("week")),
                ]
            },
        )
        assert not check_consistency_approx(structure, system)

    def test_hour_day_conflict(self, system):
        """Within the same hour but at least two days apart."""
        structure = EventStructure(
            ["A", "B"],
            {
                ("A", "B"): [
                    TCG(0, 0, system.get("hour")),
                    TCG(2, 5, system.get("day")),
                ]
            },
        )
        assert not check_consistency_approx(structure, system)

    def test_empty_intersection_same_arc(self, system):
        structure = EventStructure(
            ["A", "B"],
            {
                ("A", "B"): [
                    TCG(0, 1, system.get("day")),
                    TCG(3, 6, system.get("day")),
                ]
            },
        )
        assert not check_consistency_approx(structure, system)


class TestSoundness:
    """Theorem 2 soundness: any assignment satisfying the original
    structure satisfies every derived constraint."""

    def _random_satisfying_assignment(self, structure, rng):
        """Rejection-sample a satisfying assignment, or None."""
        order = structure.topological_order()
        for _ in range(4000):
            assignment = {}
            base = rng.randrange(0, 30 * SECONDS_PER_DAY)
            ok = True
            for variable in order:
                if variable == structure.root:
                    assignment[variable] = base
                    continue
                parents = [
                    p for p in structure.predecessors(variable)
                    if p in assignment
                ]
                anchor = max(assignment[p] for p in parents)
                assignment[variable] = anchor + rng.randrange(
                    0, 6 * SECONDS_PER_DAY
                )
            if structure.is_satisfied_by(assignment):
                return assignment
        return None

    @pytest.mark.parametrize("seed", range(4))
    def test_figure_1a_soundness(self, figure_1a, system, seed):
        rng = random.Random(seed)
        assignment = self._random_satisfying_assignment(figure_1a, rng)
        assert assignment is not None, "sampler failed to find a witness"
        result = propagate(figure_1a, system, extra_granularities=[second()])
        derived = result.derived_structure()
        assert derived.is_satisfied_by(assignment)

    def test_random_chain_structures_sound(self, system):
        """Random 4-variable chains over random granularities."""
        rng = random.Random(42)
        labels = ["hour", "day", "week", "b-day"]
        for _ in range(10):
            constraints = {}
            names = ["V0", "V1", "V2", "V3"]
            for i in range(3):
                gran = system.get(rng.choice(labels))
                m = rng.randrange(0, 3)
                constraints[(names[i], names[i + 1])] = [
                    TCG(m, m + rng.randrange(0, 4), gran)
                ]
            structure = EventStructure(names, constraints)
            assignment = self._random_satisfying_assignment(structure, rng)
            if assignment is None:
                continue
            result = propagate(structure, system)
            assert result.consistent
            derived = result.derived_structure()
            assert derived.is_satisfied_by(assignment)


class TestExtraGranularities:
    def test_multiple_extra_targets(self, figure_1a, system):
        """Several extra target granularities populate simultaneously
        and remain mutually sound."""
        from repro.granularity import minute, second

        result = propagate(
            figure_1a,
            system,
            extra_granularities=[second(), minute()],
        )
        assert result.consistent
        sec = result.interval("X0", "X3", "second")
        minutes = result.interval("X0", "X3", "minute")
        assert sec is not None and minutes is not None
        # Both lower bounds reflect the b-day step; the minute upper
        # bound (in seconds) must contain the second upper bound.
        # (Lower bounds do NOT scale multiplicatively: tick distance 1
        # in minutes can be a single second across a minute boundary.)
        assert sec[0] >= 1 and minutes[0] >= 1
        assert (minutes[1] + 1) * 60 - 1 >= sec[1]

    def test_extra_granularity_groups_start_empty(self, system):
        from repro.granularity import second

        structure = EventStructure(["A"], {})
        result = propagate(structure, system, extra_granularities=[second()])
        assert result.consistent
        assert result.groups.get("second") == {}


class TestTermination:
    def test_iteration_count_is_small(self, figure_1a, system):
        result = propagate(figure_1a, system)
        assert result.iterations <= 10

    def test_no_constraints(self, system):
        structure = EventStructure(["A"], {})
        result = propagate(structure, system)
        assert result.consistent
        assert result.groups == {}

    def test_max_iterations_guard(self, figure_1a, system):
        with pytest.raises(RuntimeError):
            propagate(figure_1a, system, max_iterations=0)
