"""Property tests for the STP solver: minimality and idempotence."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints import STP, InconsistentSTP, propagate, solve_intervals


@st.composite
def small_stps(draw):
    """Random 3-variable STPs with small integer bounds."""
    constraints = {}
    for pair in [("a", "b"), ("b", "c"), ("a", "c")]:
        if draw(st.booleans()):
            lo = draw(st.integers(min_value=-4, max_value=4))
            span = draw(st.integers(min_value=0, max_value=5))
            constraints[pair] = (lo, lo + span)
    return constraints


def brute_force_hulls(constraints, domain=range(-20, 21)):
    """Exact minimal intervals by enumerating assignments (b, c
    relative to a = 0; differences are translation-invariant)."""
    hulls = {}
    solutions = []
    for b, c in itertools.product(domain, repeat=2):
        values = {"a": 0, "b": b, "c": c}
        ok = True
        for (x, y), (lo, hi) in constraints.items():
            if not lo <= values[y] - values[x] <= hi:
                ok = False
                break
        if ok:
            solutions.append(values)
    if not solutions:
        return None
    for x, y in itertools.permutations(["a", "b", "c"], 2):
        diffs = [v[y] - v[x] for v in solutions]
        hulls[(x, y)] = (min(diffs), max(diffs))
    return hulls


class TestMinimality:
    @given(constraints=small_stps())
    @settings(max_examples=80, deadline=None)
    def test_closure_computes_exact_hulls(self, constraints):
        """DMP91: path consistency is complete for STPs - the closed
        intervals must equal brute-force hulls of the solution set."""
        hulls = brute_force_hulls(constraints)
        stp = STP(["a", "b", "c"])
        try:
            for (x, y), (lo, hi) in constraints.items():
                stp.add(x, y, lo, hi)
            stp.closure()
        except InconsistentSTP:
            assert hulls is None
            return
        if hulls is None:
            # The +-20 domain covers every feasible difference (bounds
            # are within +-9, compositions within +-18), so emptiness
            # means genuine inconsistency - which closure must detect.
            pytest.fail("brute force found no solution but closure passed")
        for (x, y), (lo, hi) in hulls.items():
            got_lo, got_hi = stp.interval(x, y)
            if got_lo != -float("inf"):
                assert got_lo == lo
            if got_hi != float("inf"):
                assert got_hi == hi


class TestIdempotence:
    @given(constraints=small_stps())
    @settings(max_examples=60, deadline=None)
    def test_double_closure_is_stable(self, constraints):
        first = solve_intervals(["a", "b", "c"], constraints)
        if first is None:
            return
        second = solve_intervals(["a", "b", "c"], first)
        assert second == first


class TestPropagationIdempotence:
    def test_repropagating_derived_structure_is_stable(
        self, figure_1a, system
    ):
        """propagate(derived(S)) derives nothing new."""
        first = propagate(figure_1a, system)
        derived = first.derived_structure()
        second = propagate(derived, system)
        assert second.consistent
        for x in figure_1a.variables:
            for y in figure_1a.variables:
                if x == y or not figure_1a.has_path(x, y):
                    continue
                assert second.intervals(x, y) == first.intervals(x, y), (
                    "pair (%s, %s) changed on re-propagation" % (x, y)
                )
