"""Hypothesis property tests over randomly generated event structures."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints import TCG, EventStructure

from ..strategies import rooted_dags


class TestStructureProperties:
    @given(structure=rooted_dags())
    @settings(max_examples=60, deadline=None)
    def test_root_is_first_in_topological_order(self, structure):
        order = structure.topological_order()
        assert order is not None
        assert order[0] == structure.root
        position = {v: i for i, v in enumerate(order)}
        for src, dst in structure.arcs():
            assert position[src] < position[dst]

    @given(structure=rooted_dags())
    @settings(max_examples=60, deadline=None)
    def test_chains_cover_every_arc(self, structure):
        covered = set()
        for chain in structure.chains():
            assert chain[0] == structure.root
            assert not structure.successors(chain[-1])  # ends at a leaf
            for i in range(len(chain) - 1):
                arc = (chain[i], chain[i + 1])
                assert arc in structure.constraints
                covered.add(arc)
        assert covered == set(structure.arcs())

    @given(structure=rooted_dags())
    @settings(max_examples=60, deadline=None)
    def test_chain_count_at_most_arc_count(self, structure):
        assert 1 <= len(structure.chains()) <= max(1, len(structure.arcs()))

    @given(structure=rooted_dags())
    @settings(max_examples=40, deadline=None)
    def test_root_reaches_everything(self, structure):
        for variable in structure.variables:
            assert structure.has_path(structure.root, variable)

    @given(structure=rooted_dags())
    @settings(max_examples=40, deadline=None)
    def test_granularities_collects_exactly_used_types(self, structure):
        expected = {
            tcg.label
            for tcgs in structure.constraints.values()
            for tcg in tcgs
        }
        assert {t.label for t in structure.granularities()} == expected


class TestBuilderProperties:
    @given(structure=rooted_dags())
    @settings(max_examples=30, deadline=None)
    def test_tag_shapes(self, structure):
        """Structural invariants of every generated TAG."""
        from repro.automata import build_tag
        from repro.constraints import ComplexEventType

        assignment = {v: "t_%s" % v for v in structure.variables}
        build = build_tag(ComplexEventType(structure, assignment))
        tag = build.tag
        # One start, one accepting, both reachable by construction.
        assert len(tag.start_states) == 1
        assert len(tag.accepting) <= 1
        # Every non-skip transition consumes exactly one variable, and
        # every variable is consumed by at least one transition.
        consumed = set()
        for transition in tag.transitions:
            if transition.symbol == "*":
                assert transition.source == transition.target
                continue
            assert len(transition.variables) == 1
            consumed.add(transition.variables[0])
        assert consumed == set(structure.variables)
