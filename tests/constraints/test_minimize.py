"""Tests for TCG redundancy removal."""

import pytest

from repro.constraints import TCG, dominates, minimal_tcg_set, propagate


class TestDominates:
    def test_bday_dominates_loose_hours(self, system):
        bday = TCG(0, 5, system.get("b-day"))
        loose_hours = TCG(0, 191, system.get("hour"))
        assert dominates(bday, loose_hours, system)
        assert not dominates(loose_hours, bday, system)

    def test_tight_hours_not_dominated(self, system):
        bday = TCG(0, 5, system.get("b-day"))
        tight_hours = TCG(0, 8, system.get("hour"))
        assert not dominates(bday, tight_hours, system)

    def test_same_granularity_containment(self, system):
        tight = TCG(1, 2, system.get("day"))
        loose = TCG(0, 5, system.get("day"))
        assert dominates(tight, loose, system)
        assert not dominates(loose, tight, system)

    def test_never_self_dominates(self, system):
        constraint = TCG(0, 2, system.get("day"))
        assert not dominates(constraint, constraint, system)

    def test_infeasible_conversion_no_domination(self, system):
        hours = TCG(0, 1, system.get("hour"))
        bday = TCG(0, 90, system.get("b-day"))
        # hour -> b-day is infeasible, so no provable domination.
        assert not dominates(hours, bday, system)


class TestMinimalSet:
    def test_removes_implied_entry(self, system):
        tcgs = [
            TCG(0, 5, system.get("b-day")),
            TCG(0, 191, system.get("hour")),
        ]
        kept = minimal_tcg_set(tcgs, system)
        assert [c.label for c in kept] == ["b-day"]

    def test_keeps_orthogonal_entries(self, system):
        tcgs = [
            TCG(0, 5, system.get("b-day")),
            TCG(0, 8, system.get("hour")),
        ]
        kept = minimal_tcg_set(tcgs, system)
        assert {c.label for c in kept} == {"b-day", "hour"}

    def test_empty_intersection_raises(self, system):
        from repro.constraints import UnsatisfiableConjunction

        with pytest.raises(UnsatisfiableConjunction):
            minimal_tcg_set(
                [
                    TCG(0, 0, system.get("day")),
                    TCG(2, 5, system.get("day")),
                ],
                system,
            )

    def test_same_granularity_intersected(self, system):
        tcgs = [
            TCG(0, 5, system.get("day")),
            TCG(2, 9, system.get("day")),
        ]
        kept = minimal_tcg_set(tcgs, system)
        assert len(kept) == 1
        assert (kept[0].m, kept[0].n) == (2, 5)

    def test_wider_unit_still_prunes(self, system):
        """Interval widths in different units are incomparable; the
        second sweep must still drop the dominated entry."""
        tcgs = [
            TCG(0, 1, system.get("week")),   # width 1 (but 7 days!)
            TCG(0, 100, system.get("hour")),  # width 100 (~4 days)
        ]
        kept = minimal_tcg_set(tcgs, system)
        # [0,100]hour implies [0,1]week; the week entry is redundant.
        assert [c.label for c in kept] == ["hour"]

    def test_derived_network_shrinks(self, figure_1a, system):
        """Minimising the propagated Gamma'(X0,X3) conjunction."""
        result = propagate(figure_1a, system)
        derived = result.derived_tcgs("X0", "X3")
        kept = minimal_tcg_set(derived, system)
        assert len(kept) <= len(derived)
        # The semantics is preserved on samples within the windows.
        for t1, t2 in [(0, 86400), (0, 5 * 86400), (3600, 7 * 86400)]:
            assert all(c.is_satisfied(t1, t2) for c in derived) == all(
                c.is_satisfied(t1, t2) for c in kept
            )

    def test_empty_input(self, system):
        assert minimal_tcg_set([], system) == []


from hypothesis import given, settings
from hypothesis import strategies as st


class TestMinimalSetProperty:
    """Hypothesis: minimisation never changes the satisfying pairs."""

    LABELS = ["hour", "day", "week", "b-day"]

    @given(
        specs=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),  # granularity pick
                st.integers(min_value=0, max_value=4),  # m
                st.integers(min_value=0, max_value=6),  # span
            ),
            min_size=1,
            max_size=4,
        ),
        samples=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=20 * 86400),
                st.integers(min_value=0, max_value=8 * 86400),
            ),
            min_size=5,
            max_size=15,
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_semantics_preserved(self, system, specs, samples):
        from repro.constraints import UnsatisfiableConjunction

        tcgs = [
            TCG(m, m + span, system.get(self.LABELS[pick]))
            for pick, m, span in specs
        ]
        try:
            kept = minimal_tcg_set(tcgs, system)
        except UnsatisfiableConjunction:
            # Same-granularity entries with empty intersection: verify
            # the conjunction really is unsatisfiable on the samples.
            for t1, delta in samples:
                assert not all(c.is_satisfied(t1, t1 + delta) for c in tcgs)
            return
        assert kept  # a non-empty conjunction never minimises to empty
        for t1, delta in samples:
            t2 = t1 + delta
            original = all(c.is_satisfied(t1, t2) for c in tcgs)
            minimised = all(c.is_satisfied(t1, t2) for c in kept)
            assert original == minimised, (
                "pair (%d, %d): original=%s minimised=%s\n%s -> %s"
                % (
                    t1,
                    t2,
                    original,
                    minimised,
                    [str(c) for c in tcgs],
                    [str(c) for c in kept],
                )
            )
