"""Edge cases for redundancy removal and entailment.

Degenerate inputs the main suites never hit: empty conjunctions and
structures, single-node structures, networks whose intervals are all
infinite, and inconsistent inputs (where the witness pair of the
contradiction must be reported).
"""

import pytest

from repro.constraints import (
    INF,
    STP,
    TCG,
    ComplexEventType,
    EventStructure,
    propagate,
)
from repro.constraints.entailment import entails, subsumes
from repro.constraints.minimize import (
    UnsatisfiableConjunction,
    dominates,
    minimal_tcg_set,
)


@pytest.fixture
def hour(system):
    return system.get("hour")


@pytest.fixture
def day(system):
    return system.get("day")


class TestMinimizeEdges:
    def test_empty_conjunction(self, system):
        assert minimal_tcg_set([], system) == []

    def test_singleton_survives(self, system, hour):
        only = TCG(1, 5, hour)
        assert minimal_tcg_set([only], system) == [only]

    def test_exact_duplicates_collapse(self, system, hour):
        tcgs = [TCG(1, 5, hour), TCG(1, 5, hour), TCG(1, 5, hour)]
        assert minimal_tcg_set(tcgs, system) == [TCG(1, 5, hour)]

    def test_same_granularity_intersection(self, system, day):
        kept = minimal_tcg_set([TCG(0, 9, day), TCG(3, 20, day)], system)
        assert kept == [TCG(3, 9, day)]

    def test_unsatisfiable_reports_witness_pair(self, system, day):
        """The exception message names both offending constraints -
        the witness of the contradiction."""
        with pytest.raises(UnsatisfiableConjunction) as info:
            minimal_tcg_set([TCG(0, 2, day), TCG(5, 9, day)], system)
        message = str(info.value)
        assert "[0,2]day" in message
        assert "[5,9]day" in message

    def test_near_infinite_bound_is_dominated(self, system, hour, day):
        """A practically unbounded hour constraint adds nothing next to
        any finite day constraint."""
        wide = TCG(0, 10 ** 9, hour)
        tight = TCG(0, 5, day)
        assert dominates(tight, wide, system)
        assert minimal_tcg_set([wide, tight], system) == [tight]

    def test_nothing_dominates_itself(self, system, hour):
        constraint = TCG(2, 4, hour)
        assert not dominates(constraint, constraint, system)


class TestAllInfiniteIntervals:
    """A network with no constraints at all: every interval is
    infinite, nothing is derived, and nothing is inconsistent."""

    def test_unconstrained_stp(self):
        stp = STP(["a", "b", "c"])
        stp.closure()
        assert stp.interval("a", "b") == (-INF, INF)
        assert stp.finite_intervals() == {}

    def test_single_node_structure_propagates(self, system):
        structure = EventStructure(["A"], {})
        result = propagate(structure, system)
        assert result.consistent
        assert result.groups == {}
        assert result.conversions_performed == 0

    def test_single_node_entails_itself(self, system):
        structure = EventStructure(["A"], {})
        assert entails(structure, structure, system)

    def test_single_node_entailed_by_anything(self, system, hour):
        specific = EventStructure(
            ["A", "B"], {("A", "B"): [TCG(0, 2, hour)]}
        )
        general = EventStructure(["A"], {})
        assert entails(specific, general, system)
        # ... but not the other way around: B is unknown to ``general``.
        assert not entails(general, specific, system)


class TestEntailmentEdges:
    def test_strictly_looser_general_always_entailed(self, system, hour):
        specific = EventStructure(
            ["A", "B", "C"],
            {("A", "B"): [TCG(0, 2, hour)], ("B", "C"): [TCG(0, 2, hour)]},
        )
        general = EventStructure(
            ["A", "C"], {("A", "C"): [TCG(0, 100, hour)]}
        )
        assert entails(specific, general, system)

    def test_unrelated_pair_not_proven(self, system, hour):
        """``general`` constrains a pair with no path in ``specific``:
        no proof, even with an extremely loose requirement."""
        specific = EventStructure(
            ["A", "B", "C"],
            {("A", "B"): [TCG(0, 2, hour)], ("A", "C"): [TCG(0, 2, hour)]},
        )
        general = EventStructure(
            ["B", "C"], {("B", "C"): [TCG(0, 10 ** 9, hour)]}
        )
        assert not entails(specific, general, system)

    def test_inconsistent_specific_entails_vacuously(self, system, hour, day):
        contradiction = EventStructure(
            ["A", "B"],
            {("A", "B"): [TCG(0, 0, hour), TCG(2, 4, day)]},
        )
        assert not propagate(contradiction, system).consistent
        demanding = EventStructure(
            ["A", "B"], {("A", "B"): [TCG(3, 3, day)]}
        )
        assert entails(contradiction, demanding, system)

    def test_subsumes_requires_matching_event_types(self, system, hour):
        structure = EventStructure(
            ["A", "B"], {("A", "B"): [TCG(0, 2, hour)]}
        )
        fills = ComplexEventType(structure, {"A": "buy", "B": "sell"})
        other = ComplexEventType(structure, {"A": "buy", "B": "cancel"})
        assert subsumes(fills, fills, system)
        assert not subsumes(fills, other, system)
