"""API-surface stability guards.

Cheap checks that the advertised public names exist and resolve -
catches broken re-exports before users do.
"""

import importlib

import pytest

import repro

SUBPACKAGES = [
    "repro.granularity",
    "repro.constraints",
    "repro.automata",
    "repro.mining",
    "repro.hardness",
    "repro.resilience",
    "repro.simulation",
    "repro.store",
    "repro.io",
    "repro.core",
    "repro.cli",
]


class TestTopLevel:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), "missing top-level name %r" % name

    def test_headline_api(self):
        for name in (
            "TCG",
            "EventStructure",
            "ComplexEventType",
            "StructureBuilder",
            "standard_system",
            "build_tag",
            "TagMatcher",
            "StreamingMatcher",
            "EventSequence",
            "EventDiscoveryProblem",
            "discover",
            "mine",
            "compile_pattern",
            "stream_pattern",
        ):
            assert name in repro.__all__


class TestSubpackages:
    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_importable(self, module_name):
        module = importlib.import_module(module_name)
        assert module is not None

    @pytest.mark.parametrize(
        "module_name",
        [m for m in SUBPACKAGES if m not in ("repro.cli",)],
    )
    def test_all_exports_resolve(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", ()):
            assert hasattr(module, name), (
                "%s.__all__ advertises missing %r" % (module_name, name)
            )

    def test_py_typed_marker_present(self):
        import os

        package_dir = os.path.dirname(repro.__file__)
        assert os.path.exists(os.path.join(package_dir, "py.typed"))
