"""Property tests for granularity relations."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.granularity import (
    GroupedType,
    day,
    finer_than,
    groups_into,
    hour,
    month,
    partitions,
    subgranularity,
    week,
)


class TestGroupingProperties:
    @given(n=st.integers(min_value=1, max_value=12))
    @settings(max_examples=20, deadline=None)
    def test_base_groups_into_grouping(self, n):
        grouped = GroupedType(day(), n, label="g%d-day" % n)
        assert groups_into(day(), grouped)
        assert partitions(day(), grouped)
        assert finer_than(day(), grouped)

    @given(n=st.integers(min_value=2, max_value=12))
    @settings(max_examples=20, deadline=None)
    def test_grouping_not_finer_than_base(self, n):
        grouped = GroupedType(day(), n, label="h%d-day" % n)
        assert not finer_than(grouped, day())
        # But a grouped tick IS NOT a base tick (it spans several).
        assert not subgranularity(grouped, day())

    @given(
        a=st.integers(min_value=1, max_value=6),
        k=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=20, deadline=None)
    def test_nested_groupings_chain(self, a, k):
        """group(day, a) groups into group(day, a*k)."""
        inner = GroupedType(day(), a, label="i%d-day" % a)
        outer = GroupedType(day(), a * k, label="o%d-day" % (a * k))
        assert groups_into(inner, outer)


class TestTransitivitySpotChecks:
    def test_finer_than_chain(self):
        assert finer_than(hour(), day())
        assert finer_than(day(), month())
        assert finer_than(hour(), month())  # transitivity instance

    def test_groups_into_chain(self):
        assert groups_into(hour(), day())
        assert groups_into(day(), week())
        assert groups_into(hour(), week())

    def test_subgranularity_implies_finer(self):
        from repro.granularity import BusinessDayType

        bday = BusinessDayType()
        assert subgranularity(bday, day())
        assert finer_than(bday, day())
