"""Unit tests for the periodic normal-form compiler and its backend."""

import pickle

import pytest

from repro.granularity import (
    CompiledSizeTable,
    ConversionCache,
    NormalFormError,
    PeriodicNormalForm,
    SizeTable,
    build_size_table,
    compile_normal_form,
    resolve_backend,
    standard_system,
)
from repro.granularity.base import UniformType
from repro.granularity.combinators import FilteredType, GroupedType
from repro.granularity.normalform import (
    cached_normal_form,
    clock_distance,
    clock_form,
    clock_tick_of,
)
from repro.granularity.periodic import PeriodicPatternType
from repro.granularity.sizes import BoundedMemo


class TestResolveBackend:
    def test_default_is_auto(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIZETABLE", raising=False)
        assert resolve_backend() == "auto"

    def test_empty_env_is_auto(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIZETABLE", "")
        assert resolve_backend() == "auto"

    def test_env_selects(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIZETABLE", "sweep")
        assert resolve_backend() == "sweep"

    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIZETABLE", "sweep")
        assert resolve_backend("compiled") == "compiled"

    def test_invalid_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIZETABLE", "turbo")
        with pytest.raises(ValueError):
            resolve_backend()


class TestCompiler:
    def test_uniform_is_structural(self):
        form = compile_normal_form(UniformType("u", 60, phase=7))
        assert form.source == "structural"
        assert form.period_ticks == 1
        assert form.period_seconds == 60
        assert form.exact_cover
        assert form.firsts == (7,)

    def test_periodic_pattern_is_structural(self):
        ttype = PeriodicPatternType("p", 100, [(10, 20), (50, 5)], phase=3)
        form = compile_normal_form(ttype)
        assert form.source == "structural"
        assert form.period_ticks == 2
        assert form.period_instants == 25
        assert form.exact_cover

    def test_gap_runs_account_for_uncovered_seconds(self):
        ttype = PeriodicPatternType("p", 100, [(10, 20), (50, 5)])
        form = compile_normal_form(ttype)
        assert sum(length for _, length in form.gap_runs) == 75
        info = form.describe()
        assert info["gap_seconds"] == 75
        assert info["period_instants"] == 25

    def test_business_day_is_scanned_and_exact(self):
        system = standard_system(cache=ConversionCache())
        form = compile_normal_form(system.get("b-day"))
        assert form.source == "scanned"
        assert form.period_ticks == 5
        assert form.exact_cover

    def test_month_lowers_via_gregorian_cycle(self):
        system = standard_system(cache=ConversionCache())
        form = compile_normal_form(system.get("month"))
        assert form.source == "algebra"
        assert form.rule == "gregorian-cycle"
        assert form.period_ticks == 4800
        assert form.period_seconds == 146097 * 86400
        assert form.prefix_ticks == 0
        assert form.exact_cover

    def test_year_lowers_via_gregorian_cycle(self):
        system = standard_system(cache=ConversionCache())
        form = compile_normal_form(system.get("year"))
        assert form.rule == "gregorian-cycle"
        assert form.period_ticks == 400
        assert form.exact_cover

    def test_filtered_type_does_not_lower(self):
        base = UniformType("u", 10)
        filtered = FilteredType(base, lambda index: index % 2 == 0, "even")
        with pytest.raises(NormalFormError):
            compile_normal_form(filtered)

    def test_grouped_over_gappy_base_is_not_exact_cover(self):
        base = PeriodicPatternType("b", 50, [(0, 10), (25, 10)])
        grouped = GroupedType(base, 2, label="g2")
        form = compile_normal_form(grouped)
        assert not form.exact_cover

    def test_cached_normal_form_memoizes_on_instance(self):
        ttype = UniformType("u", 10)
        first = cached_normal_form(ttype)
        assert cached_normal_form(ttype) is first

    def test_cached_normal_form_none_for_non_lowering(self):
        base = UniformType("u", 10)
        filtered = FilteredType(base, lambda index: index % 2 == 0, "even")
        assert cached_normal_form(filtered) is None

    def test_over_budget_type_does_not_compile(self, monkeypatch):
        monkeypatch.setenv("REPRO_NF_MAX_PERIOD", "16")
        system = standard_system(cache=ConversionCache())
        with pytest.raises(NormalFormError) as excinfo:
            compile_normal_form(system.get("month"))
        assert excinfo.value.reason == "over-budget"

    def test_forms_are_picklable(self):
        form = compile_normal_form(
            PeriodicPatternType("p", 60, [(0, 20), (30, 10)])
        )
        clone = pickle.loads(pickle.dumps(form))
        assert clone == form
        assert clone.gap_runs == form.gap_runs


class TestPrefixForms:
    """Aperiodic-prefix handling via hand-built normal forms."""

    def form(self):
        # Prefix: one irregular tick [0, 4]; then period 2 ticks / 20 s
        # starting at 10: [10,12], [15,19] then [30,32], [35,39] ...
        return PeriodicNormalForm(
            label="pfx",
            period_ticks=2,
            period_seconds=20,
            firsts=(10, 15),
            lasts=(12, 19),
            prefix_firsts=(0,),
            prefix_lasts=(4,),
            exact_cover=False,
        )

    def test_instant_of_tick(self):
        form = self.form()
        assert form.instant_of_tick(0) == (0, 4)
        assert form.instant_of_tick(1) == (10, 12)
        assert form.instant_of_tick(2) == (15, 19)
        assert form.instant_of_tick(3) == (30, 32)
        assert form.instant_of_tick(4) == (35, 39)

    def test_tick_of_instant(self):
        form = self.form()
        assert form.tick_of_instant(0) == 0
        assert form.tick_of_instant(4) == 0
        assert form.tick_of_instant(5) is None
        assert form.tick_of_instant(11) == 1
        assert form.tick_of_instant(19) == 2
        assert form.tick_of_instant(31) == 3
        assert form.tick_of_instant(36) == 4
        assert form.tick_of_instant(13) is None

    def test_size_queries_match_a_sweeping_reference(self):
        form = self.form()

        from repro.granularity.base import TemporalType

        class _FormBacked(TemporalType):
            """A type realising exactly the hand-built form's ticks."""

            label = "pfx"

            def tick_bounds(self, index):
                return form.instant_of_tick(index)

            def tick_of(self, second):
                return form.tick_of_instant(second)

            def period_info(self):
                return None

        ttype = _FormBacked()
        reference = SizeTable(ttype, horizon=64)
        compiled = CompiledSizeTable(ttype, form=form)
        # horizon 64 over a 2-tick period: exact up to n/2 = 32 probes
        # for a type with no declared period.
        for k in range(1, 12):
            assert compiled.minsize(k) == reference.minsize(k), k
            assert compiled.maxsize(k) == reference.maxsize(k), k
            assert compiled.mingap(k) == reference.mingap(k), k

    def test_validation_rejects_overlapping_prefix(self):
        with pytest.raises(ValueError):
            PeriodicNormalForm(
                label="bad",
                period_ticks=1,
                period_seconds=10,
                firsts=(0,),
                lasts=(4,),
                prefix_firsts=(0,),
                prefix_lasts=(5,),
            )

    def test_validation_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            PeriodicNormalForm(
                label="bad",
                period_ticks=1,
                period_seconds=10,
                firsts=(5,),
                lasts=(3,),
            )

    def test_validation_rejects_window_exceeding_period(self):
        with pytest.raises(ValueError):
            PeriodicNormalForm(
                label="bad",
                period_ticks=1,
                period_seconds=10,
                firsts=(0,),
                lasts=(10,),
            )


class TestBuildSizeTable:
    def test_sweep_backend(self):
        table = build_size_table(UniformType("u", 10), backend="sweep")
        assert isinstance(table, SizeTable)
        assert table.backend == "sweep"

    def test_auto_compiles_when_possible(self):
        table = build_size_table(UniformType("u", 10), backend="auto")
        assert isinstance(table, CompiledSizeTable)
        assert table.backend == "compiled"

    def test_auto_falls_back_to_sweep(self, monkeypatch):
        monkeypatch.setenv("REPRO_NF_MAX_PERIOD", "16")
        system = standard_system(cache=ConversionCache())
        table = build_size_table(system.get("month"), backend="auto")
        assert isinstance(table, SizeTable)

    def test_compiled_refuses_non_lowering(self, monkeypatch):
        monkeypatch.setenv("REPRO_NF_MAX_PERIOD", "16")
        system = standard_system(cache=ConversionCache())
        with pytest.raises(NormalFormError):
            build_size_table(system.get("month"), backend="compiled")

    def test_env_is_the_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIZETABLE", "sweep")
        table = build_size_table(UniformType("u", 10))
        assert isinstance(table, SizeTable)

    def test_probe_stats_shape(self):
        table = build_size_table(UniformType("u", 10), backend="auto")
        table.minsize(3)
        table.minsize(3)
        stats = table.probe_stats()
        assert stats["backend"] == "compiled"
        assert stats["probes"] == 2
        assert stats["memo_hits"] == 1
        assert stats["compiled_hits"] == 1
        assert "memo_evictions" in stats


class TestMemoBounds:
    def test_bounded_memo_evicts_lru(self):
        memo = BoundedMemo(2)
        memo.put(1, "a")
        memo.put(2, "b")
        assert memo.get(1) == "a"  # 1 becomes most recent
        memo.put(3, "c")  # evicts 2
        assert memo.get(2) is None
        assert memo.get(1) == "a"
        assert memo.evictions == 1
        assert len(memo) == 2

    def test_sweep_table_memo_is_bounded(self):
        table = SizeTable(UniformType("u", 10), memo_entries=4)
        for k in range(1, 10):
            table.minsize(k)
        assert table.memo_evictions > 0
        assert table.probe_stats()["memo_evictions"] == table.memo_evictions

    def test_compiled_table_memo_is_bounded(self):
        # Varying segment lengths so the minimization pass cannot
        # reduce the period below 10 ticks.
        ttype = PeriodicPatternType(
            "p", 100, [(i * 10, i % 3 + 1) for i in range(10)]
        )
        table = CompiledSizeTable(ttype, memo_entries=4)
        for k in range(1, 10):
            table.minsize(k)
        assert table.memo_evictions > 0


class TestClockRouting:
    def test_clock_form_none_under_sweep(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIZETABLE", "sweep")
        assert clock_form(UniformType("u", 10)) is None

    def test_clock_form_none_without_exact_cover(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIZETABLE", raising=False)
        base = PeriodicPatternType("b", 50, [(0, 10), (25, 10)])
        grouped = GroupedType(base, 2, label="g2")
        assert clock_form(grouped) is None

    def test_clock_helpers_match_type_methods(self, monkeypatch):
        ttype = PeriodicPatternType("p", 60, [(0, 20), (30, 10)])
        for backend in ("sweep", "auto", "compiled"):
            monkeypatch.setenv("REPRO_SIZETABLE", backend)
            # reset the per-instance cache so gating is re-evaluated
            for second in range(0, 200, 7):
                assert clock_tick_of(ttype, second) == ttype.tick_of(
                    second
                ), (backend, second)
            assert clock_distance(ttype, 5, 95) == ttype.distance(5, 95)


class TestConvcacheForms:
    def test_export_and_preload_roundtrip(self):
        cache = ConversionCache()
        form = compile_normal_form(UniformType("u", 10))
        cache.put_normal_form(7, "u", form)
        assert cache.get_normal_form(7, "u") is form
        assert cache.get_normal_form(8, "u") is None
        exported = cache.export_normal_forms(7)
        assert exported == [("u", form)]
        other = ConversionCache()
        assert other.preload_normal_forms(3, exported) == 1
        assert other.get_normal_form(3, "u") == form
        assert cache.stats()["normal_forms"] == 1

    def test_clear_drops_forms(self):
        cache = ConversionCache()
        cache.put_normal_form(1, "u", object())
        cache.clear()
        assert cache.get_normal_form(1, "u") is None

    def test_system_table_populates_form_cache(self):
        cache = ConversionCache()
        system = standard_system(cache=cache, sizetable_backend="auto")
        system.table("b-day")
        namespace = system.cache_namespace
        assert cache.get_normal_form(namespace, "b-day") is not None

    def test_sweep_system_does_not_touch_form_cache(self):
        cache = ConversionCache()
        system = standard_system(cache=cache, sizetable_backend="sweep")
        system.table("b-day")
        assert cache.stats()["normal_forms"] == 0
