"""Tests for GroupedType and FilteredType combinators."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.granularity import FilteredType, GroupedType, day, hour, month
from repro.granularity.gregorian import SECONDS_PER_DAY


class TestGroupedType:
    def test_n_month_grouping(self):
        three_month = GroupedType(month(), 3)
        assert three_month.label == "3-month"
        assert three_month.tick_of(0) == 0
        # April 1 of the epoch year is day 91 (Jan 31 + Feb 29 + Mar 31).
        assert three_month.tick_of(91 * SECONDS_PER_DAY) == 1
        first, last = three_month.tick_bounds(0)
        assert first == 0
        assert last == 91 * SECONDS_PER_DAY - 1

    def test_offset_creates_leading_gap(self):
        fiscal = GroupedType(month(), 12, label="fiscal-year", offset=3)
        assert fiscal.tick_of(0) is None  # January is before the offset
        assert fiscal.tick_of(91 * SECONDS_PER_DAY) == 0  # April
        assert not fiscal.total

    def test_grouping_preserves_totality(self):
        assert GroupedType(month(), 3).total
        assert GroupedType(hour(), 6).total

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            GroupedType(month(), 0)
        with pytest.raises(ValueError):
            GroupedType(month(), 2, offset=-1)
        with pytest.raises(ValueError):
            GroupedType(month(), 2).tick_bounds(-1)

    @given(st.integers(min_value=1, max_value=7), st.integers(min_value=0, max_value=40))
    def test_group_bounds_consistent(self, n, index):
        grouped = GroupedType(day(), n)
        first, last = grouped.tick_bounds(index)
        assert grouped.tick_of(first) == index
        assert grouped.tick_of(last) == index
        assert last - first + 1 == n * SECONDS_PER_DAY

    def test_custom_label(self):
        quarter = GroupedType(month(), 3, label="quarter")
        assert quarter.label == "quarter"


class TestFilteredType:
    def test_mondays(self):
        mondays = FilteredType(day(), lambda i: i % 7 == 0, "monday")
        assert mondays.tick_of(0) == 0
        assert mondays.tick_of(SECONDS_PER_DAY) is None  # Tuesday
        assert mondays.tick_of(7 * SECONDS_PER_DAY) == 1
        assert mondays.tick_bounds(2) == (
            14 * SECONDS_PER_DAY,
            15 * SECONDS_PER_DAY - 1,
        )

    def test_odd_days(self):
        odd = FilteredType(day(), lambda i: i % 2 == 1, "odd-day")
        assert odd.tick_of(0) is None
        assert odd.tick_of(SECONDS_PER_DAY) == 0
        assert odd.tick_of(3 * SECONDS_PER_DAY) == 1

    def test_exhaustion_raises(self):
        few = FilteredType(day(), lambda i: i < 3, "first-3", max_base_index=10)
        assert few.tick_bounds(2)[0] == 2 * SECONDS_PER_DAY
        with pytest.raises(ValueError):
            few.tick_bounds(3)

    def test_negative_index_rejected(self):
        mondays = FilteredType(day(), lambda i: i % 7 == 0, "monday")
        with pytest.raises(ValueError):
            mondays.tick_bounds(-1)

    @given(st.integers(min_value=0, max_value=200))
    def test_bounds_roundtrip(self, index):
        every_third = FilteredType(day(), lambda i: i % 3 == 0, "third-day")
        first, last = every_third.tick_bounds(index)
        assert every_third.tick_of(first) == index
        assert every_third.tick_of(last) == index
