"""Tests for the granularity expression language."""

import pytest

from repro.granularity import (
    GranularityParseError,
    parse_type,
    standard_system,
)
from repro.granularity.gregorian import SECONDS_PER_DAY, SECONDS_PER_HOUR

D, H = SECONDS_PER_DAY, SECONDS_PER_HOUR


@pytest.fixture
def system():
    return standard_system()


class TestNames:
    def test_plain_name_resolves(self, system):
        assert parse_type("month", system).label == "month"

    def test_unknown_name_rejected(self, system):
        with pytest.raises(GranularityParseError):
            parse_type("fortnight", system)


class TestGroup:
    def test_quarter(self, system):
        quarter = parse_type("group(month, 3)", system)
        assert quarter.label == "3-month"
        assert quarter.tick_of(0) == 0
        assert "3-month" in system  # registered as a side effect

    def test_nested(self, system):
        ttype = parse_type("group(group(month, 3), 4)", system)
        assert ttype.tick_of(0) == 0
        # 12 months of the epoch year.
        assert ttype.tick_of(360 * D) == 0
        assert ttype.tick_of(370 * D) == 1

    def test_offset(self, system):
        fiscal = parse_type("group(month, 12, 3)", system)
        assert fiscal.tick_of(0) is None  # January precedes the offset

    def test_arity_checked(self, system):
        with pytest.raises(GranularityParseError):
            parse_type("group(month)", system)
        with pytest.raises(GranularityParseError):
            parse_type("group(3, month)", system)


class TestConstructors:
    def test_uniform(self, system):
        ttype = parse_type("uniform(7200)", system)
        assert ttype.tick_bounds(1) == (7200, 14399)

    def test_uniform_with_phase(self, system):
        ttype = parse_type("uniform(100, 50)", system)
        assert ttype.tick_of(49) is None
        assert ttype.tick_of(50) == 0

    def test_shifts(self, system):
        duty = parse_type("shifts(28800, 57600)", system)
        assert duty.tick_of(0) == 0
        assert duty.tick_of(9 * H) is None

    def test_weekly(self, system):
        lectures = parse_type("weekly(0:9:2, 2:14:2)", system)
        assert lectures.tick_of(9 * H) == 0
        assert lectures.tick_of(2 * D + 14 * H) == 1

    def test_businessday_range(self, system):
        sixday = parse_type("businessday(0-5)", system)
        assert sixday.tick_of(5 * D) == 5  # Saturday works
        assert sixday.tick_of(6 * D) is None

    def test_businessday_list(self, system):
        weekend_only = parse_type("businessday(5, 6)", system)
        assert weekend_only.tick_of(0) is None
        assert weekend_only.tick_of(5 * D) == 0

    def test_unknown_constructor(self, system):
        with pytest.raises(GranularityParseError):
            parse_type("lunar(2)", system)


class TestErrors:
    def test_trailing_garbage(self, system):
        with pytest.raises(GranularityParseError):
            parse_type("month month", system)

    def test_unbalanced_parens(self, system):
        with pytest.raises(GranularityParseError):
            parse_type("group(month, 3", system)

    def test_bad_characters(self, system):
        with pytest.raises(GranularityParseError):
            parse_type("month + day", system)

    def test_bare_int_is_not_a_type(self, system):
        with pytest.raises(GranularityParseError):
            parse_type("42", system)

    def test_descending_range(self, system):
        with pytest.raises(GranularityParseError):
            parse_type("businessday(5-2)", system)


class TestIntersectionConstructors:
    def test_intersect(self, system):
        overlap = parse_type("intersect(week, month)", system)
        assert overlap.tick_of(0) == 0
        assert overlap.label == "week*month"

    def test_businesshours_default_base(self, system):
        office = parse_type("businesshours(9, 17)", system)
        assert office.tick_of(10 * H) == 0
        assert office.tick_of(8 * H) is None

    def test_businesshours_custom_base(self, system):
        office = parse_type(
            "businesshours(8, 12, businessday(0-5))", system
        )
        assert office.tick_of(5 * D + 9 * H) == 5  # Saturday morning works

    def test_businesshours_bad_window(self, system):
        with pytest.raises(GranularityParseError):
            parse_type("businesshours(17, 9)", system)

    def test_intersect_arity(self, system):
        with pytest.raises(GranularityParseError):
            parse_type("intersect(week)", system)
