"""Tests for granularity relationships (finer-than, groups-into, ...)."""

import pytest

from repro.granularity import (
    BusinessDayType,
    GroupedType,
    UniformType,
    day,
    finer_than,
    groups_into,
    hour,
    minute,
    month,
    partitions,
    subgranularity,
    week,
    year,
)
from repro.granularity.business import BusinessWeekType


class TestFinerThan:
    def test_classic_lattice(self):
        assert finer_than(day(), month())
        assert finer_than(day(), week())
        assert finer_than(month(), year())
        assert finer_than(hour(), day())

    def test_incomparable_types(self):
        assert not finer_than(week(), month())  # weeks straddle months
        assert not finer_than(month(), week())

    def test_gap_types(self):
        bday = BusinessDayType()
        assert finer_than(bday, day())
        assert finer_than(bday, week())
        assert not finer_than(day(), bday)  # Saturdays are uncovered

    def test_reflexive(self):
        assert finer_than(day(), day())


class TestGroupsInto:
    def test_classic(self):
        assert groups_into(day(), week())
        assert groups_into(day(), month())
        assert groups_into(month(), year())
        assert groups_into(minute(), hour())

    def test_not_aligned(self):
        assert not groups_into(week(), month())
        # Hours group into days, but days are not unions of weeks.
        assert not groups_into(week(), day())

    def test_gappy_base_fails(self):
        # Weeks are not unions of business days (weekends uncovered).
        assert not groups_into(BusinessDayType(), week())

    def test_gappy_target(self):
        bday = BusinessDayType()
        bweek = BusinessWeekType(bday=bday)
        assert groups_into(bday, bweek)


class TestPartitions:
    def test_classic(self):
        assert partitions(month(), year())
        assert partitions(day(), week())

    def test_grouping_partitions_base_span(self):
        quarter = GroupedType(month(), 3)
        assert partitions(month(), quarter)

    def test_coverage_mismatch(self):
        # Days group into weeks, but a phase-shifted day type leaves
        # the first instants of week 0 uncovered.
        late_day = UniformType("late-day", 86400, phase=86400)
        assert not partitions(late_day, week())


class TestSubgranularity:
    def test_bday_of_day(self):
        assert subgranularity(BusinessDayType(), day())

    def test_day_not_sub_of_bday(self):
        assert not subgranularity(day(), BusinessDayType())

    def test_hour_not_sub_of_day(self):
        assert not subgranularity(hour(), day())

    def test_reflexive(self):
        assert subgranularity(month(), month())
