"""Tests for GranularitySystem registration and resolution."""

import pytest

from repro.granularity import (
    GranularitySystem,
    GroupedType,
    UniformType,
    day,
    month,
    standard_system,
)


class TestRegistration:
    def test_register_and_get(self):
        system = GranularitySystem([day()])
        assert system.get("day").label == "day"
        assert "day" in system
        assert "week" not in system

    def test_reregistering_same_label_is_noop(self):
        system = GranularitySystem([day()])
        again = system.register(day())
        assert again.label == "day"
        assert system.labels() == ["day"]

    def test_conflicting_label_rejected(self):
        system = GranularitySystem([day()])
        impostor = UniformType("day", 3600)
        with pytest.raises(ValueError):
            system.register(impostor)

    def test_resolve_accepts_type_or_label(self):
        system = GranularitySystem([month()])
        assert system.resolve("month").label == "month"
        grouped = GroupedType(month(), 3)
        resolved = system.resolve(grouped)
        assert resolved.label == "3-month"
        assert "3-month" in system

    def test_resolve_rejects_other_objects(self):
        system = GranularitySystem()
        with pytest.raises(TypeError):
            system.resolve(42)

    def test_unknown_label_raises(self):
        system = GranularitySystem()
        with pytest.raises(KeyError):
            system.get("nope")

    def test_bad_conversion_mode_rejected(self):
        with pytest.raises(ValueError):
            GranularitySystem(conversion_mode="psychic")


class TestStandardSystem:
    def test_contains_paper_types(self, system):
        assert set(
            [
                "second",
                "minute",
                "hour",
                "day",
                "week",
                "month",
                "year",
                "b-day",
                "b-week",
                "business-month",
            ]
        ) <= set(system.labels())

    def test_holidays_flow_into_business_types(self):
        system = standard_system(holidays=[2])
        bday = system.get("b-day")
        assert bday.tick_of(2 * 86400) is None

    def test_tables_are_cached(self, system):
        assert system.table("month") is system.table("month")

    def test_feasibility_is_cached(self, system):
        first = system.conversion_feasible("day", "b-day")
        second = system.conversion_feasible("day", "b-day")
        assert first is second is False

    def test_same_label_feasible(self, system):
        assert system.conversion_feasible("day", "day")
