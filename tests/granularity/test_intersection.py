"""Tests for intersection granularities and business hours."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints import TCG
from repro.granularity import (
    BusinessDayType,
    IntersectionType,
    business_hours,
    day,
    hour,
    month,
    standard_system,
    week,
)
from repro.granularity.gregorian import SECONDS_PER_DAY, SECONDS_PER_HOUR

D, H = SECONDS_PER_DAY, SECONDS_PER_HOUR


class TestIntersectionType:
    def test_week_month_overlaps(self):
        overlap = IntersectionType(week(), month())
        # Tick 0: week 0 within January -> the whole week (epoch is a
        # Monday, Jan 1).
        assert overlap.tick_bounds(0) == (0, 7 * D - 1)
        # January has 31 days = 4 weeks + 3 days: tick 4 is the Jan
        # part of week 4, tick 5 the Feb part.
        first4, last4 = overlap.tick_bounds(4)
        assert first4 == 28 * D
        assert last4 == 31 * D - 1
        first5, last5 = overlap.tick_bounds(5)
        assert first5 == 31 * D
        assert last5 == 35 * D - 1

    def test_tick_of_requires_both(self):
        bday = BusinessDayType()
        overlap = IntersectionType(bday, week())
        saturday = 5 * D
        assert overlap.tick_of(saturday) is None  # not a b-day
        assert overlap.tick_of(0) == 0

    def test_default_label(self):
        assert IntersectionType(week(), month()).label == "week*month"

    def test_total_only_if_both_total(self):
        assert IntersectionType(day(), month()).total
        assert not IntersectionType(BusinessDayType(), month()).total

    def test_negative_uncovered(self):
        assert IntersectionType(week(), month()).tick_of(-5) is None

    @given(st.integers(min_value=0, max_value=120))
    @settings(max_examples=30, deadline=None)
    def test_bounds_roundtrip(self, index):
        overlap = IntersectionType(week(), month())
        first, last = overlap.tick_bounds(index)
        assert overlap.tick_of(first) == index
        assert overlap.tick_of(last) == index
        assert first <= last

    def test_ticks_strictly_ordered(self):
        overlap = IntersectionType(week(), month())
        previous_last = -1
        for index in range(60):
            first, last = overlap.tick_bounds(index)
            assert first > previous_last
            previous_last = last


class TestBusinessHours:
    def test_office_day_tick(self):
        office = business_hours(BusinessDayType())
        # Monday (day 0) 09:00-17:00.
        assert office.tick_bounds(0) == (9 * H, 17 * H - 1)
        assert office.tick_of(10 * H) == 0
        assert office.tick_of(8 * H) is None  # before opening
        assert office.tick_of(18 * H) is None  # after closing

    def test_weekend_uncovered(self):
        office = business_hours(BusinessDayType())
        saturday_ten_am = 5 * D + 10 * H
        assert office.tick_of(saturday_ten_am) is None
        # Friday is tick 4, Monday next week tick 5.
        assert office.tick_of(4 * D + 10 * H) == 4
        assert office.tick_of(7 * D + 10 * H) == 5

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            business_hours(BusinessDayType(), 17, 9)

    def test_tcg_over_business_hours(self):
        """'within 2 office-hour days' as a TCG."""
        office = business_hours(BusinessDayType())
        constraint = TCG(0, 1, office)
        # Friday 16:00 to Monday 10:00 = consecutive office ticks.
        friday = 4 * D + 16 * H
        monday = 7 * D + 10 * H
        assert constraint.is_satisfied(friday, monday)
        tuesday = 8 * D + 10 * H
        assert not constraint.is_satisfied(friday, tuesday)

    def test_conversion_from_business_hours(self):
        system = standard_system()
        office = system.register(business_hours(BusinessDayType()))
        outcome = system.convert(1, 1, office, "day")
        # Consecutive office days: next calendar day, or Friday->Monday.
        assert outcome.interval == (1, 3)
        outcome_hours = system.convert(0, 0, office, "hour")
        assert outcome_hours.interval == (0, 7)  # within one office day
