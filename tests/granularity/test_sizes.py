"""Tests for the minsize/maxsize/mingap tables, including the paper's
canonical values and the soundness of out-of-horizon extrapolation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.granularity import (
    BusinessDayType,
    SizeTable,
    UniformType,
    day,
    hour,
    month,
    week,
)
from repro.granularity.gregorian import SECONDS_PER_DAY


def in_days(seconds):
    assert seconds % SECONDS_PER_DAY == 0
    return seconds // SECONDS_PER_DAY


class TestPaperTableValues:
    """The appendix quotes minsize(month,1)=28, maxsize(month,1)=31 and
    maxsize(b-day,2)=4 with day as the primitive type."""

    def test_month_sizes(self):
        table = SizeTable(month())
        assert in_days(table.minsize(1)) == 28
        assert in_days(table.maxsize(1)) == 31

    def test_bday_maxsize_two(self):
        table = SizeTable(BusinessDayType())
        assert in_days(table.maxsize(2)) == 4  # Friday + weekend + Monday

    def test_bday_minsize_two(self):
        table = SizeTable(BusinessDayType())
        assert in_days(table.minsize(2)) == 2  # midweek neighbours


class TestUniformTables:
    def test_hour_sizes_are_linear(self):
        table = SizeTable(hour())
        for k in (1, 2, 10, 100):
            assert table.minsize(k) == 3600 * k
            assert table.maxsize(k) == 3600 * k

    def test_mingap_hour(self):
        table = SizeTable(hour())
        assert table.mingap(1) == 1  # next hour starts 1 second later
        assert table.mingap(2) == 3601
        assert table.mingap(0) == -3599

    def test_zero_k(self):
        table = SizeTable(day())
        assert table.minsize(0) == 0
        assert table.maxsize(0) == 0

    def test_negative_k_rejected(self):
        table = SizeTable(day())
        with pytest.raises(ValueError):
            table.minsize(-1)
        with pytest.raises(ValueError):
            table.maxsize(-1)
        with pytest.raises(ValueError):
            table.mingap(-1)


class TestExtrapolationSoundness:
    """Out-of-horizon values must be sound: minsize/mingap never
    over-estimated, maxsize never under-estimated (compared against a
    larger-horizon exact table).

    The SizeTable contract requires the horizon to cover one period of
    the type (48 months - a leap cycle - for ``month``; 7 days for
    ``b-day``; 1 week for ``week``); 128 satisfies all of them.
    """

    @pytest.mark.parametrize(
        "factory", [month, week, lambda: BusinessDayType()]
    )
    @given(k=st.integers(min_value=1, max_value=480))
    @settings(max_examples=30, deadline=None)
    def test_small_vs_big_horizon(self, factory, k):
        small = SizeTable(factory(), horizon=128)
        big = SizeTable(factory(), horizon=512)
        assert small.minsize(k) <= big.minsize(k)
        assert small.maxsize(k) >= big.maxsize(k)
        assert small.mingap(k) <= big.mingap(k)

    def test_monotonicity_of_minsize(self):
        table = SizeTable(month(), horizon=64)
        values = [table.minsize(k) for k in range(0, 200)]
        assert values == sorted(values)

    def test_mingap_monotone_for_positive_k(self):
        table = SizeTable(BusinessDayType(), horizon=64)
        values = [table.mingap(k) for k in range(1, 200)]
        assert values == sorted(values)


class TestSearches:
    def test_min_k_with_minsize_at_least(self):
        table = SizeTable(hour())
        assert table.min_k_with_minsize_at_least(0) == 0
        assert table.min_k_with_minsize_at_least(1) == 1
        assert table.min_k_with_minsize_at_least(3600) == 1
        assert table.min_k_with_minsize_at_least(3601) == 2

    def test_min_k_with_maxsize_greater(self):
        table = SizeTable(hour())
        assert table.min_k_with_maxsize_greater(-5) == 0
        assert table.min_k_with_maxsize_greater(0) == 1
        assert table.min_k_with_maxsize_greater(3600) == 2

    def test_cap_returns_none(self):
        table = SizeTable(hour())
        assert table.min_k_with_minsize_at_least(10**18, cap=1000) is None


class TestTickScanning:
    def test_bounds_cached(self):
        table = SizeTable(month())
        assert table.bounds(0) == (0, 31 * SECONDS_PER_DAY - 1)
        assert table.bounds(600) is None  # beyond horizon 512

    def test_exhausted_type(self):
        short = UniformType("short", 10, phase=0)

        class ThreeTicks(UniformType):
            def tick_bounds(self, index):
                if index >= 3:
                    raise ValueError("out of ticks")
                return super().tick_bounds(index)

        table = SizeTable(ThreeTicks("three", 10))
        assert table.scanned_ticks() == 3
        assert table.minsize(3) == 30
        # Extrapolation still answers beyond the last tick.
        assert table.minsize(7) >= 30
        assert short.tick_of(5) == 0

    def test_rejects_tiny_horizon(self):
        with pytest.raises(ValueError):
            SizeTable(month(), horizon=2)
