"""Conversions involving exotic (filtered/periodic/custom) types, and
failure injection on the table machinery's validity guards."""

import pytest

from repro.granularity import (
    FilteredType,
    SizeTable,
    day,
    standard_system,
    week,
)
from repro.granularity.base import TemporalType, UniformType
from repro.granularity.gregorian import SECONDS_PER_DAY

D = SECONDS_PER_DAY


class TestFilteredTypeConversions:
    @pytest.fixture
    def system(self):
        system = standard_system()
        system.register(
            FilteredType(day(), lambda i: i % 7 == 0, "monday")
        )
        return system

    def test_monday_to_week_is_exact(self, system):
        # Consecutive Mondays are exactly one week apart.
        outcome = system.convert(1, 1, "monday", "week")
        assert outcome.interval == (1, 1)
        outcome = system.convert(0, 3, "monday", "week")
        assert outcome.interval == (0, 3)

    def test_week_to_monday_infeasible(self, system):
        # Weeks contain non-Monday instants: no coverage.
        assert not system.conversion_feasible("week", "monday")

    def test_monday_to_day(self, system):
        outcome = system.convert(1, 1, "monday", "day")
        assert outcome.interval == (7, 7)

    def test_monday_to_month(self, system):
        outcome = system.convert(0, 0, "monday", "month")
        assert outcome.interval == (0, 0)
        outcome = system.convert(1, 1, "monday", "month")
        assert outcome.interval == (0, 1)


class TestSizeTableGuards:
    """Failure injection: malformed types are rejected loudly."""

    def test_inverted_bounds_detected(self):
        class Broken(TemporalType):
            label = "broken"

            def tick_of(self, second):
                return 0

            def tick_bounds(self, index):
                return 10, 5  # inverted

        with pytest.raises(ValueError):
            SizeTable(Broken()).minsize(1)

    def test_non_monotone_ticks_detected(self):
        class Backwards(TemporalType):
            label = "backwards"

            def tick_of(self, second):
                return 0

            def tick_bounds(self, index):
                return (100 - 10 * index, 105 - 10 * index)

        with pytest.raises(ValueError):
            SizeTable(Backwards()).minsize(1)

    def test_zero_tick_type_rejected(self):
        class Empty(TemporalType):
            label = "empty"

            def tick_of(self, second):
                return None

            def tick_bounds(self, index):
                raise ValueError("no ticks")

        table = SizeTable(Empty())
        with pytest.raises(ValueError):
            table.minsize(1)

    def test_registry_rejects_mismatched_duplicate(self):
        system = standard_system()
        with pytest.raises(ValueError):
            system.register(UniformType("day", 3600))
