"""Tests for business-calendar types (gaps, holidays, custom weeks)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.granularity import (
    BusinessDayType,
    BusinessMonthType,
    BusinessWeekType,
)
from repro.granularity.gregorian import SECONDS_PER_DAY, weekday


def at_day(day_index, second_in_day=0):
    """Absolute second at the start of a day (plus an offset)."""
    return day_index * SECONDS_PER_DAY + second_in_day


class TestBusinessDay:
    def test_weekend_is_a_gap(self):
        bday = BusinessDayType()
        # Day 0 is a Monday; days 5 and 6 are the first weekend.
        assert bday.tick_of(at_day(0)) == 0
        assert bday.tick_of(at_day(4)) == 4
        assert bday.tick_of(at_day(5)) is None
        assert bday.tick_of(at_day(6)) is None
        assert bday.tick_of(at_day(7)) == 5

    def test_tick_bounds_is_single_day(self):
        bday = BusinessDayType()
        assert bday.tick_bounds(0) == (0, SECONDS_PER_DAY - 1)
        # Tick 5 is the second Monday (day 7).
        assert bday.tick_bounds(5) == (at_day(7), at_day(8) - 1)

    def test_holiday_removes_a_tick(self):
        plain = BusinessDayType()
        with_holiday = BusinessDayType(holidays=[2])  # Wednesday off
        assert with_holiday.tick_of(at_day(2)) is None
        # Thursday's rank shifts down by one.
        assert plain.tick_of(at_day(3)) == 3
        assert with_holiday.tick_of(at_day(3)) == 2

    def test_holiday_shifts_tick_bounds(self):
        with_holiday = BusinessDayType(holidays=[2])
        # Tick 2 is now Thursday (day 3).
        assert with_holiday.tick_bounds(2) == (at_day(3), at_day(4) - 1)
        # Tick 4 is now the second Monday.
        assert with_holiday.tick_bounds(4) == (at_day(7), at_day(8) - 1)

    def test_weekend_holidays_are_ignored(self):
        bday = BusinessDayType(holidays=[5, 6])  # Saturday/Sunday anyway
        assert bday.holidays == ()

    def test_six_day_trading_week(self):
        sixday = BusinessDayType(label="b-day6", workdays=(0, 1, 2, 3, 4, 5))
        assert sixday.tick_of(at_day(5)) == 5  # Saturday works
        assert sixday.tick_of(at_day(6)) is None  # Sunday off
        assert sixday.tick_bounds(6) == (at_day(7), at_day(8) - 1)

    def test_rejects_empty_or_bad_workdays(self):
        with pytest.raises(ValueError):
            BusinessDayType(workdays=())
        with pytest.raises(ValueError):
            BusinessDayType(workdays=(7,))

    def test_negative_instants_uncovered(self):
        assert BusinessDayType().tick_of(-1) is None

    @given(st.integers(min_value=0, max_value=2000))
    def test_bounds_roundtrip(self, index):
        bday = BusinessDayType(holidays=[2, 10, 17, 100])
        first, last = bday.tick_bounds(index)
        assert bday.tick_of(first) == index
        assert bday.tick_of(last) == index

    @given(st.integers(min_value=0, max_value=20_000))
    def test_tick_of_only_on_workdays(self, day_index):
        bday = BusinessDayType()
        tick = bday.tick_of(at_day(day_index))
        assert (tick is None) == (weekday(day_index) in (5, 6))

    @given(st.integers(min_value=0, max_value=1000))
    def test_ticks_strictly_increasing(self, index):
        bday = BusinessDayType(holidays=[4, 8, 15])
        first_a, last_a = bday.tick_bounds(index)
        first_b, last_b = bday.tick_bounds(index + 1)
        assert last_a < first_b


class TestBusinessWeek:
    def test_tick_is_week_of_business_days(self):
        bweek = BusinessWeekType()
        first, last = bweek.tick_bounds(0)
        assert first == 0  # Monday
        assert last == at_day(5) - 1  # end of Friday

    def test_weekend_instants_uncovered(self):
        bweek = BusinessWeekType()
        assert bweek.tick_of(at_day(5)) is None
        assert bweek.tick_of(at_day(4)) == 0
        assert bweek.tick_of(at_day(7)) == 1

    def test_all_holiday_week_raises(self):
        bday = BusinessDayType(holidays=[7, 8, 9, 10, 11])  # week 1 gone
        bweek = BusinessWeekType(bday=bday)
        with pytest.raises(ValueError):
            bweek.tick_bounds(1)

    def test_partially_holiday_week_shrinks(self):
        bday = BusinessDayType(holidays=[7])  # second Monday off
        bweek = BusinessWeekType(bday=bday)
        first, last = bweek.tick_bounds(1)
        assert first == at_day(8)  # Tuesday
        assert last == at_day(12) - 1


class TestBusinessMonth:
    def test_first_business_month(self):
        bmonth = BusinessMonthType()
        first, last = bmonth.tick_bounds(0)
        # January of the epoch year: day 0 is Monday Jan 1; Jan 31 falls
        # on day 30, a Wednesday - a business day.
        assert first == 0
        assert last == at_day(31) - 1

    def test_weekends_inside_month_are_gaps(self):
        bmonth = BusinessMonthType()
        assert bmonth.tick_of(at_day(5)) is None
        assert bmonth.tick_of(at_day(4)) == 0
        assert bmonth.tick_of(at_day(31)) == 1  # Feb 1 (a Thursday)

    def test_non_contiguous_tick_contains(self):
        bmonth = BusinessMonthType()
        # A weekend second is within the bounds of tick 0 but not a
        # member of it - exactly the paper's non-contiguous ticks.
        saturday = at_day(5)
        first, last = bmonth.tick_bounds(0)
        assert first <= saturday <= last
        assert not bmonth.contains(0, saturday)
