"""Unit tests for the calendar-algebra compiler (PR 10).

The differential suites in ``tests/differential`` compare compiled
forms against the sweep reference and the types themselves; these unit
tests pin the algebra layer's own contracts - operator semantics,
minimization, budget fallback, provenance, and the batched conversion
kernel.
"""

import pytest

from repro.granularity import (
    BusinessDayType,
    BusinessMonthType,
    BusinessWeekType,
    ConversionCache,
    FormBackedType,
    NormalFormError,
    PeriodicNormalForm,
    PeriodicPatternType,
    UniformType,
    clock_ticks_of,
    compile_normal_form,
    explain_normal_form,
    minimize_form,
    nf_group,
    nf_intersect,
    nf_max_period,
    nf_nth_within,
    nf_select,
    nf_shift,
    nf_union,
    parse_type,
    standard_system,
)
from repro.granularity.combinators import (
    FilteredType,
    GroupedType,
    NthSubgranuleType,
    ShiftedType,
    UnionType,
)
from repro.granularity.customcal import CustomCalendar, CustomMonthType
from repro.granularity.gregorian import (
    DAYS_PER_400_YEARS,
    MONTHS_PER_400_YEARS,
    SECONDS_PER_DAY,
)
from repro.granularity.normalform import cached_normal_form

DAY = SECONDS_PER_DAY
WEEK = 7 * DAY
CYCLE_SECONDS = DAYS_PER_400_YEARS * DAY


def day_form():
    return compile_normal_form(UniformType("day", DAY))


def month_form():
    system = standard_system(cache=ConversionCache())
    return compile_normal_form(system.get("month"))


class TestMinimization:
    def test_reducible_period_shrinks(self):
        # Two identical half-cycles: P=2/S=20 is really P=1/S=10.
        form = PeriodicNormalForm(
            label="r",
            period_ticks=2,
            period_seconds=20,
            firsts=(0, 10),
            lasts=(4, 14),
        )
        minimized = minimize_form(form)
        assert minimized.period_ticks == 1
        assert minimized.period_seconds == 10
        assert minimized.minimized_from == (2, 0)

    def test_redundant_prefix_is_absorbed(self):
        # The prefix tick continues the periodic recurrence exactly.
        form = PeriodicNormalForm(
            label="a",
            period_ticks=1,
            period_seconds=10,
            firsts=(10,),
            lasts=(14,),
            prefix_firsts=(0,),
            prefix_lasts=(4,),
        )
        minimized = minimize_form(form)
        assert minimized.prefix_ticks == 0
        assert minimized.firsts == (0,)
        assert minimized.lasts == (4,)
        assert minimized.minimized_from == (1, 1)

    def test_minimal_form_is_returned_unchanged(self):
        form = PeriodicNormalForm(
            label="m",
            period_ticks=2,
            period_seconds=20,
            firsts=(0, 10),
            lasts=(4, 16),
        )
        assert minimize_form(form) is form

    def test_genuine_prefix_survives(self):
        form = PeriodicNormalForm(
            label="g",
            period_ticks=1,
            period_seconds=10,
            firsts=(10,),
            lasts=(14,),
            prefix_firsts=(2,),
            prefix_lasts=(4,),
        )
        minimized = minimize_form(form)
        assert minimized.prefix_ticks == 1

    def test_minimization_preserves_semantics(self):
        form = PeriodicNormalForm(
            label="s",
            period_ticks=4,
            period_seconds=40,
            firsts=(0, 10, 20, 30),
            lasts=(6, 16, 26, 36),
            prefix_firsts=(-20, -10),
            prefix_lasts=(-14, -4),
        )
        minimized = minimize_form(form)
        assert minimized.period_ticks == 1
        assert minimized.prefix_ticks == 0
        for index in range(12):
            assert minimized.instant_of_tick(index) == form.instant_of_tick(
                index
            )
        for second in range(-25, 60):
            assert minimized.tick_of_instant(second) == form.tick_of_instant(
                second
            )


class TestGregorianLowerings:
    def test_month_form_shape(self):
        form = month_form()
        assert form.period_ticks == MONTHS_PER_400_YEARS
        assert form.period_seconds == CYCLE_SECONDS
        assert form.prefix_ticks == 0
        assert form.exact_cover
        assert form.source == "algebra"
        assert form.rule == "gregorian-cycle"

    def test_year_form_shape(self):
        system = standard_system(cache=ConversionCache())
        form = compile_normal_form(system.get("year"))
        assert form.period_ticks == 400
        assert form.period_seconds == CYCLE_SECONDS

    def test_leap_february_tick(self):
        # Month 25 = February of year 2002 (common, 28 days);
        # month 49 = February of 2004 (leap, 29 days).
        form = month_form()
        feb_common = form.instant_of_tick(25)
        feb_leap = form.instant_of_tick(49)
        assert feb_common[1] - feb_common[0] + 1 == 28 * DAY
        assert feb_leap[1] - feb_leap[0] + 1 == 29 * DAY


class TestBusinessLowerings:
    def test_holiday_business_day_has_prefix(self):
        bday = BusinessDayType(holidays=[3, 10])
        form = compile_normal_form(bday)
        assert form.rule == "business-overlay"
        assert form.period_ticks == 5
        assert form.prefix_ticks > 0
        assert form.exact_cover

    def test_holiday_free_business_day_stays_scanned(self):
        form = compile_normal_form(BusinessDayType())
        assert form.source == "scanned"

    def test_business_week_is_week_periodic(self):
        bweek = BusinessWeekType(BusinessDayType())
        form = compile_normal_form(bweek)
        assert form.period_ticks == 1
        assert form.period_seconds == WEEK
        assert not form.exact_cover

    def test_business_month_is_cycle_periodic(self):
        bmonth = BusinessMonthType(BusinessDayType())
        form = compile_normal_form(bmonth)
        assert form.period_ticks == MONTHS_PER_400_YEARS
        assert form.period_seconds == CYCLE_SECONDS


class TestOperators:
    def test_group_takes_period_lcm(self):
        form = nf_group(month_form(), 7)
        # lcm(4800, 7) / 7 = 4800: months per cycle is divisible by 7
        # only after a full extra factor of 7.
        assert form.period_ticks == 4800
        assert form.period_seconds == 7 * CYCLE_SECONDS

    def test_group_fiscal_offset(self):
        fiscal = nf_group(month_form(), 12, offset=3, label="fiscal")
        months = month_form()
        assert fiscal.instant_of_tick(0)[0] == months.instant_of_tick(3)[0]
        assert fiscal.instant_of_tick(0)[1] == months.instant_of_tick(14)[1]
        assert fiscal.period_ticks == 400

    def test_select_residues(self):
        form = nf_select(day_form(), lambda i: i % 7 in (0, 3), 7)
        assert form.period_ticks == 2
        assert form.period_seconds == WEEK
        assert form.instant_of_tick(0) == (0, DAY - 1)
        assert form.instant_of_tick(1) == (3 * DAY, 4 * DAY - 1)
        assert form.instant_of_tick(2) == (WEEK, WEEK + DAY - 1)

    def test_select_empty_raises(self):
        with pytest.raises(NormalFormError) as excinfo:
            nf_select(day_form(), lambda i: False, 7)
        assert excinfo.value.reason == "empty"

    def test_shift_positive(self):
        form = nf_shift(day_form(), 3600)
        assert form.instant_of_tick(0) == (3600, DAY + 3599)

    def test_shift_negative_drops_clipped_ticks(self):
        form = nf_shift(day_form(), -3600)
        # Old tick 0 would start at -3600; it is dropped and old tick 1
        # becomes tick 0.
        assert form.instant_of_tick(0) == (DAY - 3600, 2 * DAY - 3601)

    def test_intersect_matches_type(self):
        hour = compile_normal_form(UniformType("hour", 3600))
        odd_days = nf_select(day_form(), lambda i: i % 2 == 1, 2)
        form = nf_intersect(hour, odd_days)
        assert form.period_ticks == 24
        assert form.period_seconds == 2 * DAY
        assert form.instant_of_tick(0) == (DAY, DAY + 3599)

    def test_union_keeps_adjacent_ticks_separate(self):
        a = nf_select(day_form(), lambda i: i % 7 == 0, 7)
        b = nf_select(day_form(), lambda i: i % 7 == 1, 7)
        form = nf_union(a, b)
        assert form.period_ticks == 2
        assert form.instant_of_tick(0) == (0, DAY - 1)
        assert form.instant_of_tick(1) == (DAY, 2 * DAY - 1)

    def test_union_coalesces_overlaps(self):
        a = compile_normal_form(
            PeriodicPatternType("a", 100, [(0, 30)])
        )
        b = compile_normal_form(
            PeriodicPatternType("b", 100, [(20, 30)])
        )
        form = nf_union(a, b)
        assert form.period_ticks == 1
        assert form.instant_of_tick(0) == (0, 49)

    def test_nth_second_tuesday(self):
        tuesdays = nf_select(day_form(), lambda i: i % 7 == 1, 7)
        form = nf_nth_within(tuesdays, month_form(), 2, label="2nd-tue")
        # Day 0 is Monday, so day 8 is the second Tuesday of month 0.
        assert form.instant_of_tick(0) == (8 * DAY, 9 * DAY - 1)
        assert form.period_ticks == MONTHS_PER_400_YEARS

    def test_operator_results_survive_roundtrip(self):
        form = nf_group(month_form(), 3, label="quarter")
        import pickle

        clone = pickle.loads(pickle.dumps(form))
        assert clone == form


class TestCustomCalendarInference:
    def test_undeclared_cycle_is_inferred(self):
        calendar = CustomCalendar(
            [28] * 13, leap_days=lambda y: 7 if y % 5 == 4 else 0
        )
        form = compile_normal_form(CustomMonthType(calendar, "acct-month"))
        assert form.rule == "custom-cycle"
        assert form.period_ticks == 65

    def test_declared_cycle_still_scans(self):
        calendar = CustomCalendar(
            [28] * 13,
            leap_days=lambda y: 7 if y % 5 == 4 else 0,
            period_years=5,
        )
        form = compile_normal_form(CustomMonthType(calendar, "acct-month"))
        assert form.source == "scanned"


class TestBudgetAndFallback:
    def test_env_knob_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_NF_MAX_PERIOD", raising=False)
        assert nf_max_period() == 1 << 20

    def test_env_knob_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_NF_MAX_PERIOD", "many")
        with pytest.raises(ValueError):
            nf_max_period()
        monkeypatch.setenv("REPRO_NF_MAX_PERIOD", "0")
        with pytest.raises(ValueError):
            nf_max_period()

    def test_over_budget_reason(self, monkeypatch):
        monkeypatch.setenv("REPRO_NF_MAX_PERIOD", "16")
        system = standard_system(cache=ConversionCache())
        with pytest.raises(NormalFormError) as excinfo:
            compile_normal_form(system.get("month"))
        assert excinfo.value.reason == "over-budget"

    def test_smallest_budget_keeps_uniform_types(self, monkeypatch):
        # The REPRO_NF_MAX_PERIOD=1 smoke: single-phase types still
        # compile, everything larger falls back cleanly.
        monkeypatch.setenv("REPRO_NF_MAX_PERIOD", "1")
        assert compile_normal_form(UniformType("u", 10)).period_ticks == 1
        system = standard_system(cache=ConversionCache())
        assert cached_normal_form(system.get("month")) is None
        assert cached_normal_form(system.get("b-day")) is None

    def test_fallback_counter_labels(self, monkeypatch, obs_on):
        from repro.obs import counter_deltas, metrics_snapshot

        monkeypatch.setenv("REPRO_NF_MAX_PERIOD", "16")
        before = metrics_snapshot()
        system = standard_system(cache=ConversionCache())
        assert cached_normal_form(system.get("month")) is None
        deltas = counter_deltas(before, metrics_snapshot())
        assert (
            deltas['repro_sizetable_fallback_total{reason="over-budget"}']
            >= 1
        )


class TestProvenance:
    def test_explain_compiling_type(self):
        system = standard_system(cache=ConversionCache())
        info = explain_normal_form(system.get("month"))
        assert info["compiles"]
        assert info["rule"] == "gregorian-cycle"
        assert info["period_ticks"] == MONTHS_PER_400_YEARS

    def test_explain_non_compiling_type(self):
        filtered = FilteredType(
            UniformType("u", 10), lambda i: i % 2 == 0, "odd"
        )
        info = explain_normal_form(filtered)
        assert not info["compiles"]
        assert info["reason"] == "no-period"
        assert "odd" in info["detail"]

    def test_minimization_savings_reported(self):
        form = PeriodicNormalForm(
            label="r",
            period_ticks=2,
            period_seconds=20,
            firsts=(0, 10),
            lasts=(4, 14),
        )
        info = minimize_form(form).describe()
        assert info["minimized_from_period"] == 2
        assert info["minimized_from_prefix"] == 0


class TestFormBackedType:
    def test_roundtrips_through_compiler(self):
        form = nf_group(month_form(), 3, label="quarter")
        ttype = FormBackedType(form)
        assert cached_normal_form(ttype) is form
        assert ttype.tick_bounds(7) == form.instant_of_tick(7)
        assert ttype.tick_of(form.instant_of_tick(7)[0]) == 7

    def test_rejects_boundary_only_forms(self):
        gappy = PeriodicNormalForm(
            label="g",
            period_ticks=1,
            period_seconds=100,
            firsts=(0,),
            lasts=(49,),
            exact_cover=False,
        )
        with pytest.raises(ValueError):
            FormBackedType(gappy)

    def test_registers_in_a_system(self):
        system = standard_system(cache=ConversionCache())
        quarter = system.register(
            FormBackedType(nf_group(month_form(), 3, label="quarter"))
        )
        outcome = system.convert(0, 0, quarter, system.get("month"))
        assert outcome.interval == (0, 2)


class TestCoveredInstantQueries:
    def test_first_and_last_covered(self):
        bday = BusinessDayType(holidays=[3])
        form = compile_normal_form(bday)
        # Week 0: Mon,Tue,Wed,Fri are working (Thu day 3 is a holiday).
        assert form.first_covered_at_or_after(0) == 0
        assert form.first_covered_at_or_after(3 * DAY) == 4 * DAY
        assert form.last_covered_at_or_before(4 * DAY - 1) == 3 * DAY - 1
        assert form.last_covered_at_or_before(7 * DAY - 1) == 5 * DAY - 1
        # The start of week-1 Monday is itself covered.
        assert form.last_covered_at_or_before(7 * DAY) == 7 * DAY


class TestBatchedConversion:
    def test_matches_scalar_path(self):
        system = standard_system(cache=ConversionCache())
        month = system.get("month")
        seconds = [0, DAY, 31 * DAY, CYCLE_SECONDS + 5, 7 * CYCLE_SECONDS]
        ticks, defined = clock_ticks_of(month, seconds)
        assert list(defined) == [1] * len(seconds)
        assert list(ticks) == [month.tick_of(s) for s in seconds]

    def test_undefined_instants_marked(self):
        bday = BusinessDayType(holidays=[1])
        seconds = [0, DAY, DAY + 5, 2 * DAY, 5 * DAY]
        ticks, defined = clock_ticks_of(bday, seconds)
        assert list(defined) == [1, 0, 0, 1, 0]
        assert list(ticks) == [0, 0, 0, 1, 0]

    def test_sweep_mode_uses_reference_path(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIZETABLE", "sweep")
        system = standard_system(cache=ConversionCache())
        month = system.get("month")
        seconds = [0, 40 * DAY]
        ticks, defined = clock_ticks_of(month, seconds)
        assert list(ticks) == [0, 1]
        assert list(defined) == [1, 1]


class TestParserConstructors:
    @pytest.mark.parametrize(
        "expr, klass",
        [
            ("select(day, 7, 0, 3)", FilteredType),
            ("shift(hour, -600)", ShiftedType),
            ("union(b-day, select(day, 7, 5, 6))", UnionType),
            ("nth(select(day, 7, 1), month, 2)", NthSubgranuleType),
        ],
    )
    def test_parse_and_compile(self, expr, klass):
        system = standard_system(cache=ConversionCache())
        ttype = parse_type(expr, system)
        assert isinstance(ttype, klass)
        form = compile_normal_form(ttype)
        for index in range(8):
            assert form.instant_of_tick(index) == ttype.tick_bounds(index)

    def test_select_requires_residues(self):
        from repro.granularity import GranularityParseError

        system = standard_system(cache=ConversionCache())
        with pytest.raises(GranularityParseError):
            parse_type("select(day, 7)", system)


class TestPrewarmShipsForms:
    # The backend is pinned so the tests also hold under the CI jobs
    # that set an ambient REPRO_SIZETABLE=sweep.
    def test_month_form_exports(self):
        cache = ConversionCache()
        system = standard_system(cache=cache, sizetable_backend="auto")
        system.table("month")
        labels = [label for label, _ in cache.export_normal_forms()]
        assert "month" in labels

    def test_preloaded_form_is_used(self):
        cache = ConversionCache()
        source = standard_system(cache=cache, sizetable_backend="auto")
        source.table("month")
        exported = cache.export_normal_forms()

        target_cache = ConversionCache()
        target = standard_system(
            cache=target_cache, sizetable_backend="auto"
        )
        count = target_cache.preload_normal_forms(
            target.cache_namespace, exported
        )
        assert count >= 1
        table = target.table("month")
        assert table.backend == "compiled"
