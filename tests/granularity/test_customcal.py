"""Tests for user-defined calendars."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints import TCG
from repro.granularity import (
    CustomCalendar,
    CustomMonthType,
    CustomYearType,
    retail_445_calendar,
    standard_system,
    thirteen_period_calendar,
)
from repro.granularity.gregorian import SECONDS_PER_DAY

D = SECONDS_PER_DAY


class TestCustomCalendar:
    def test_validation(self):
        with pytest.raises(ValueError):
            CustomCalendar([])
        with pytest.raises(ValueError):
            CustomCalendar([30, 0])
        with pytest.raises(ValueError):
            CustomCalendar([30, 30], leap_month=5)

    def test_simple_two_month_calendar(self):
        cal = CustomCalendar([10, 20])
        assert cal.year_bounds(0) == (0, 29)
        assert cal.year_bounds(1) == (30, 59)
        assert cal.month_bounds(0) == (0, 9)
        assert cal.month_bounds(1) == (10, 29)
        assert cal.month_bounds(2) == (30, 39)
        assert cal.month_of_day(9) == 0
        assert cal.month_of_day(10) == 1
        assert cal.year_of_day(30) == 1

    def test_leap_rule_extends_leap_month(self):
        cal = CustomCalendar(
            [10, 20], leap_days=lambda y: 5 if y == 0 else 0
        )
        assert cal.days_in_year(0) == 35
        assert cal.days_in_year(1) == 30
        assert cal.month_bounds(1) == (10, 34)  # last month absorbs
        assert cal.year_bounds(1) == (35, 64)

    def test_negative_leap_rejected(self):
        cal = CustomCalendar([10], leap_days=lambda y: -1)
        with pytest.raises(ValueError):
            cal.days_in_year(0)


class TestThirteenPeriodCalendar:
    def test_period_lengths(self):
        cal = thirteen_period_calendar()
        assert cal.months_per_year() == 13
        assert cal.days_in_year(0) == 364
        assert cal.days_in_year(4) == 371  # leap week year

    def test_month_type(self):
        period = CustomMonthType(thirteen_period_calendar(), "period")
        assert period.tick_of(0) == 0
        assert period.tick_of(27 * D) == 0
        assert period.tick_of(28 * D) == 1
        assert period.tick_of(364 * D) == 13  # period 1 of year 1

    def test_year_type(self):
        fiscal = CustomYearType(thirteen_period_calendar(), "fiscal-year")
        assert fiscal.tick_of(363 * D) == 0
        assert fiscal.tick_of(364 * D) == 1

    @given(st.integers(min_value=0, max_value=80))
    @settings(max_examples=30, deadline=None)
    def test_month_bounds_roundtrip(self, index):
        period = CustomMonthType(thirteen_period_calendar(), "period2")
        first, last = period.tick_bounds(index)
        assert period.tick_of(first) == index
        assert period.tick_of(last) == index


class TestRetailCalendar:
    def test_445_shape(self):
        cal = retail_445_calendar()
        assert cal.months_per_year() == 12
        assert cal.days_in_month(0, 0) == 28
        assert cal.days_in_month(0, 2) == 35
        assert cal.days_in_year(0) == 364


class TestMixedCalendarConstraints:
    def test_tcg_across_calendars(self):
        """A pattern mixing Gregorian weeks and accounting periods."""
        system = standard_system()
        period = system.register(
            CustomMonthType(thirteen_period_calendar(), "period")
        )
        week = system.get("week")
        same_period = TCG(0, 0, period)
        next_week = TCG(1, 1, week)
        t1 = 7 * D  # Monday, week 1, period 0
        t2 = 14 * D  # Monday, week 2, period 0
        assert same_period.is_satisfied(t1, t2)
        assert next_week.is_satisfied(t1, t2)
        t3 = 30 * D  # period 1 already
        assert not same_period.is_satisfied(t1, t3)

    def test_conversion_between_calendars(self):
        system = standard_system()
        period = system.register(
            CustomMonthType(thirteen_period_calendar(), "period")
        )
        outcome = system.convert(0, 0, period, "week")
        # A 28-day period spans exactly 4 Monday weeks when aligned;
        # in general at most 5 tick boundaries -> distance <= 4.
        assert outcome.interval is not None
        lo, hi = outcome.interval
        assert lo == 0
        assert 3 <= hi <= 4
