"""Tests for constraint conversion between granularities.

The central property (both conversion strategies): conversions are
**implied constraints** - any timestamp pair satisfying the source TCG
satisfies the converted TCG.  Verified here by hypothesis-driven
sampling of satisfying pairs.
"""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.constraints import TCG
from repro.granularity import standard_system
from repro.granularity.conversion import covers_prefix
from repro.granularity.gregorian import SECONDS_PER_DAY

SYSTEM = standard_system()
SYSTEM_F3 = standard_system(conversion_mode="figure3")

#: (source, target) pairs for which conversion is feasible.
FEASIBLE_PAIRS = [
    ("hour", "day"),
    ("hour", "week"),
    ("hour", "month"),
    ("day", "week"),
    ("day", "month"),
    ("day", "year"),
    ("week", "month"),
    ("month", "week"),
    ("month", "year"),
    ("year", "month"),
    ("b-day", "day"),
    ("b-day", "week"),
    ("b-day", "hour"),
    ("b-day", "month"),
    ("b-week", "week"),
    ("business-month", "month"),
    ("month", "day"),
    ("week", "hour"),
]


class TestFeasibility:
    def test_total_target_always_covers(self):
        assert SYSTEM.conversion_feasible("b-day", "second")
        assert SYSTEM.conversion_feasible("month", "minute")

    def test_gap_target_rejects_total_source(self):
        assert not SYSTEM.conversion_feasible("hour", "b-day")
        assert not SYSTEM.conversion_feasible("day", "b-day")
        assert not SYSTEM.conversion_feasible("week", "b-week")

    def test_bday_into_bweek_feasible(self):
        # Every business day lies in a business week.
        assert SYSTEM.conversion_feasible("b-day", "b-week")

    def test_covers_prefix_detects_weekend_gap(self):
        assert not covers_prefix(SYSTEM.get("b-day"), SYSTEM.get("hour"))
        assert covers_prefix(SYSTEM.get("week"), SYSTEM.get("b-day"))

    @pytest.mark.parametrize("src,tgt", FEASIBLE_PAIRS)
    def test_declared_pairs_feasible(self, src, tgt):
        assert SYSTEM.conversion_feasible(src, tgt)


def _sample_satisfying_pair(source, m, n, base_seed):
    """Deterministically build (t1, t2) satisfying [m, n]_source."""
    tick1 = base_seed % 200
    distance = m + (base_seed // 200) % (n - m + 1)
    first1, last1 = source.tick_bounds(tick1)
    first2, last2 = source.tick_bounds(tick1 + distance)
    # Pick covered instants inside the ticks (bounds are always covered).
    t1 = last1 if base_seed % 2 else first1
    t2 = first2 if base_seed % 3 else last2
    if t2 < t1:
        t1, t2 = first1, last2
    return t1, t2


@pytest.mark.parametrize("mode,system", [("direct", SYSTEM), ("figure3", SYSTEM_F3)])
@pytest.mark.parametrize("src_label,tgt_label", FEASIBLE_PAIRS)
@given(
    m=st.integers(min_value=0, max_value=12),
    span=st.integers(min_value=0, max_value=12),
    base_seed=st.integers(min_value=0, max_value=10**6),
)
@settings(max_examples=25, deadline=None)
def test_conversion_is_implied(mode, system, src_label, tgt_label, m, span, base_seed):
    """Soundness: satisfying pairs of the source satisfy the target."""
    source = system.get(src_label)
    target = system.get(tgt_label)
    n = m + span
    outcome = system.convert(m, n, source, target)
    assume(outcome.interval is not None)
    assert not outcome.empty
    t1, t2 = _sample_satisfying_pair(source, m, n, base_seed)
    source_tcg = TCG(m, n, source)
    assume(source_tcg.is_satisfied(t1, t2))
    lo, hi = outcome.interval
    target_tcg = TCG(lo, hi, target)
    assert target_tcg.is_satisfied(t1, t2), (
        "pair (%d, %d) satisfies %s but not converted %s"
        % (t1, t2, source_tcg, target_tcg)
    )


class TestKnownConversions:
    """Hand-checked conversions, including the paper's examples."""

    def test_same_granularity_identity(self):
        outcome = SYSTEM.convert(2, 5, "day", "day")
        assert outcome.interval == (2, 5)

    def test_day_zero_zero_to_seconds(self):
        # The paper: [0,0]day implies second distances 0..86399, and the
        # implied constraint is [0, 86399]second (strictly weaker).
        outcome = SYSTEM.convert(0, 0, "day", "second")
        assert outcome.interval == (0, SECONDS_PER_DAY - 1)

    def test_consecutive_bdays_in_hours(self):
        # [1,1]b-day: as close as adjacent midnight hours, as far as
        # Friday 00h .. Monday 23h = 95 hours.
        outcome = SYSTEM.convert(1, 1, "b-day", "hour")
        assert outcome.interval == (1, 95)

    def test_five_bdays_in_hours(self):
        outcome = SYSTEM.convert(0, 5, "b-day", "hour")
        assert outcome.interval == (0, 191)

    def test_month_to_day_uses_28_and_31(self):
        outcome = SYSTEM.convert(1, 1, "month", "day")
        lo, hi = outcome.interval
        assert lo == 1
        assert hi == 61  # first of a 31-day month to last of the next

    def test_next_month_bounds(self):
        outcome = SYSTEM.convert(1, 2, "month", "week")
        lo, hi = outcome.interval
        assert lo >= 0
        assert hi >= 8  # two 31-day months span at least 8 week ticks

    def test_figure3_weaker_or_equal_direct(self):
        for (m, n) in [(0, 0), (1, 1), (0, 5), (2, 7)]:
            direct = SYSTEM.convert(m, n, "b-day", "hour").interval
            table = SYSTEM_F3.convert(m, n, "b-day", "hour").interval
            assert direct is not None and table is not None
            assert table[0] <= direct[0]
            assert table[1] >= direct[1]

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            SYSTEM.convert(3, 1, "day", "week")
        with pytest.raises(ValueError):
            SYSTEM.convert(-1, 1, "day", "week")

    def test_infeasible_conversion_yields_none(self):
        outcome = SYSTEM.convert(0, 1, "day", "b-day")
        assert outcome.interval is None

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            SYSTEM.convert(0, 1, "day", "week", mode="magic")

    def test_conversions_are_cached(self):
        fresh = standard_system()
        first = fresh.convert(0, 3, "day", "week")
        second = fresh.convert(0, 3, "day", "week")
        assert first is second


class TestGuardsAndFallbacks:
    def test_refusal_when_target_scan_too_costly(self):
        """A non-total 1-second-aligned target would need tens of
        millions of probes: the coverage check refuses to certify
        (sound: the conversion is simply not performed)."""
        from repro.granularity import UniformType

        system = standard_system()
        awkward = system.register(UniformType("offbeat", 97, phase=1))
        assert not system.conversion_feasible("day", "offbeat")
        assert system.convert(0, 1, "day", "offbeat").interval is None

    def test_direct_falls_back_beyond_horizon(self):
        """Ranges wider than the boundary-scan horizon use the sound
        Figure 3 tables instead of failing."""
        system = standard_system()
        outcome = system.convert(0, 600, "day", "week")
        assert outcome.interval is not None
        lo, hi = outcome.interval
        assert lo == 0
        assert hi >= 86  # 601 days span at least 85 week boundaries

        # Soundness spot check on a concrete satisfying pair.
        pair = TCG(0, 600, system.get("day"))
        target = TCG(lo, hi, system.get("week"))
        t1, t2 = 0, 600 * SECONDS_PER_DAY
        assert pair.is_satisfied(t1, t2)
        assert target.is_satisfied(t1, t2)
