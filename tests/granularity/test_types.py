"""Tests for the temporal-type core: uniform and calendar types.

Includes the paper's formal well-formedness conditions (monotonicity,
no interior empty ticks) checked as properties on every shipped type.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.granularity import (
    UniformType,
    day,
    hour,
    minute,
    month,
    second,
    standard_system,
    week,
    year,
)
from repro.granularity.gregorian import SECONDS_PER_DAY

ALL_FACTORY_TYPES = [second, minute, hour, day, week, month, year]


class TestUniformType:
    def test_second_tick_of_is_identity(self):
        sec = second()
        assert sec.tick_of(0) == 0
        assert sec.tick_of(12345) == 12345
        assert sec.tick_bounds(7) == (7, 7)

    def test_hour_ticks(self):
        h = hour()
        assert h.tick_of(0) == 0
        assert h.tick_of(3599) == 0
        assert h.tick_of(3600) == 1
        assert h.tick_bounds(2) == (7200, 10799)

    def test_phase_creates_leading_gap(self):
        shifted = UniformType("shifted-hour", 3600, phase=1800)
        assert shifted.tick_of(0) is None
        assert shifted.tick_of(1799) is None
        assert shifted.tick_of(1800) == 0
        assert shifted.tick_bounds(0) == (1800, 5399)
        assert not shifted.total

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            UniformType("bad", 0)
        with pytest.raises(ValueError):
            UniformType("bad", 10, phase=-1)

    def test_negative_tick_bounds_rejected(self):
        with pytest.raises(ValueError):
            second().tick_bounds(-1)


class TestCalendarTypes:
    def test_month_boundaries(self):
        mo = month()
        assert mo.tick_of(0) == 0
        jan_last_second = 31 * SECONDS_PER_DAY - 1
        assert mo.tick_of(jan_last_second) == 0
        assert mo.tick_of(jan_last_second + 1) == 1

    def test_year_boundaries(self):
        yr = year()
        assert yr.tick_of(0) == 0
        leap_year_seconds = 366 * SECONDS_PER_DAY
        assert yr.tick_of(leap_year_seconds - 1) == 0
        assert yr.tick_of(leap_year_seconds) == 1

    def test_week_is_monday_aligned(self):
        wk = week()
        assert wk.tick_of(0) == 0
        assert wk.tick_of(7 * SECONDS_PER_DAY - 1) == 0
        assert wk.tick_of(7 * SECONDS_PER_DAY) == 1

    def test_negative_seconds_uncovered(self):
        assert month().tick_of(-1) is None
        assert year().tick_of(-1) is None


class TestTypeInvariants:
    """The paper's two defining conditions, plus bounds consistency."""

    @pytest.mark.parametrize("factory", ALL_FACTORY_TYPES)
    def test_ticks_strictly_ordered(self, factory):
        ttype = factory()
        previous_last = None
        for index in range(40):
            first, last = ttype.tick_bounds(index)
            assert first <= last
            if previous_last is not None:
                assert first > previous_last
            previous_last = last

    @pytest.mark.parametrize("factory", ALL_FACTORY_TYPES)
    def test_tick_of_agrees_with_bounds(self, factory):
        ttype = factory()
        for index in range(25):
            first, last = ttype.tick_bounds(index)
            assert ttype.tick_of(first) == index
            assert ttype.tick_of(last) == index

    @given(st.integers(min_value=0, max_value=10**9))
    def test_month_tick_monotone(self, t):
        mo = month()
        assert mo.tick_of(t) <= mo.tick_of(t + SECONDS_PER_DAY)

    @given(
        st.integers(min_value=0, max_value=10**8),
        st.integers(min_value=0, max_value=10**6),
    )
    def test_distance_is_tick_difference(self, t1, delta):
        wk = week()
        t2 = t1 + delta
        assert wk.distance(t1, t2) == wk.tick_of(t2) - wk.tick_of(t1)


class TestHelpers:
    def test_first_tick_at_or_after(self):
        mo = month()
        assert mo.first_tick_at_or_after(0) == 0
        assert mo.first_tick_at_or_after(1) == 1
        feb_first, _ = mo.tick_bounds(1)
        assert mo.first_tick_at_or_after(feb_first) == 1

    def test_first_tick_at_or_after_in_gap(self):
        shifted = UniformType("late", 100, phase=1000)
        assert shifted.first_tick_at_or_after(0) == 0
        assert shifted.first_tick_at_or_after(1050) == 1

    def test_equality_is_by_label(self):
        assert month() == month()
        assert month() != year()
        assert hash(month()) == hash(month())

    def test_str_and_contains(self):
        mo = month()
        assert str(mo) == "month"
        assert mo.contains(0, 100)
        assert not mo.contains(1, 100)

    def test_covers(self):
        shifted = UniformType("late", 100, phase=1000)
        assert not shifted.covers(0)
        assert shifted.covers(1000)


class TestStandardSystemTypes:
    def test_all_expected_labels_present(self, system):
        for label in [
            "second",
            "minute",
            "hour",
            "day",
            "week",
            "month",
            "year",
            "b-day",
            "b-week",
            "business-month",
        ]:
            assert label in system

    def test_second_is_primitive_and_total(self, system):
        sec = system.get("second")
        assert sec.total
        assert sec.tick_of(987654) == 987654
