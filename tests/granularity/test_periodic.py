"""Tests for finitely-represented periodic temporal types."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints import TCG
from repro.granularity import (
    PeriodicPatternType,
    SizeTable,
    shifts,
    standard_system,
    weekly_slots,
)
from repro.granularity.gregorian import SECONDS_PER_DAY, SECONDS_PER_HOUR

D, H = SECONDS_PER_DAY, SECONDS_PER_HOUR


class TestConstruction:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            PeriodicPatternType("t", 0, [(0, 1)])
        with pytest.raises(ValueError):
            PeriodicPatternType("t", 10, [])
        with pytest.raises(ValueError):
            PeriodicPatternType("t", 10, [(0, 0)])
        with pytest.raises(ValueError):
            PeriodicPatternType("t", 10, [(0, 5), (3, 2)])  # overlap
        with pytest.raises(ValueError):
            PeriodicPatternType("t", 10, [(8, 5)])  # exceeds cycle
        with pytest.raises(ValueError):
            PeriodicPatternType("t", 10, [(0, 5)], phase=-1)

    def test_totality_detection(self):
        assert PeriodicPatternType("t", 10, [(0, 10)]).total
        assert not PeriodicPatternType("t", 10, [(0, 5)]).total
        assert not PeriodicPatternType("t", 10, [(0, 10)], phase=3).total

    def test_period_info(self):
        ttype = PeriodicPatternType("t", 100, [(0, 10), (50, 20)])
        assert ttype.period_info() == (2, 100)


class TestShifts:
    def test_duty_cycle(self):
        duty = shifts("duty", on_seconds=8 * H, off_seconds=16 * H)
        assert duty.tick_of(0) == 0
        assert duty.tick_of(8 * H - 1) == 0
        assert duty.tick_of(8 * H) is None
        assert duty.tick_of(D) == 1
        assert duty.tick_bounds(2) == (2 * D, 2 * D + 8 * H - 1)

    def test_phase(self):
        late = shifts("late", 3600, 3600, phase=100)
        assert late.tick_of(50) is None
        assert late.tick_of(100) == 0


class TestWeeklySlots:
    def test_two_lectures(self):
        lectures = weekly_slots(
            "lecture", [(0, 9, 2), (2, 14, 2)]
        )  # Mon 9-11, Wed 14-16
        assert lectures.tick_of(9 * H) == 0
        assert lectures.tick_of(11 * H) is None
        assert lectures.tick_of(2 * D + 14 * H) == 1
        assert lectures.tick_of(7 * D + 9 * H) == 2  # next Monday

    def test_rejects_bad_slots(self):
        with pytest.raises(ValueError):
            weekly_slots("bad", [(7, 9, 1)])
        with pytest.raises(ValueError):
            weekly_slots("bad", [(0, 23, 2)])  # spills past midnight

    @given(st.integers(min_value=0, max_value=200))
    @settings(max_examples=40, deadline=None)
    def test_bounds_roundtrip(self, index):
        lectures = weekly_slots("lec2", [(0, 9, 2), (3, 8, 1)])
        first, last = lectures.tick_bounds(index)
        assert lectures.tick_of(first) == index
        assert lectures.tick_of(last) == index


class TestSizeTableExactness:
    def test_declared_period_used(self):
        duty = shifts("duty8", 8 * H, 16 * H)
        table = SizeTable(duty, horizon=16)
        # With a declared period, the horizon is widened and minsize is
        # exact for every k up to near the horizon.
        assert table.minsize(1) == 8 * H
        assert table.maxsize(1) == 8 * H
        assert table.mingap(1) == 16 * H + 1
        assert table.minsize(3) == 2 * D + 8 * H

    def test_conversions_with_periodic_types(self):
        system = standard_system()
        duty = system.register(shifts("duty8", 8 * H, 16 * H))
        # duty ticks lie inside single days -> conversion feasible.
        outcome = system.convert(1, 1, duty, "day")
        assert outcome.interval == (1, 1)
        outcome_hours = system.convert(0, 2, duty, "hour")
        assert outcome_hours.interval == (0, 55)

    def test_tcg_on_periodic_type(self):
        duty = shifts("duty-x", 8 * H, 16 * H)
        constraint = TCG(1, 1, duty)
        assert constraint.is_satisfied(7 * H, D)  # consecutive shifts
        assert not constraint.is_satisfied(7 * H, 7 * H + 1)
        # Off-duty instants violate the definedness requirement.
        assert not constraint.is_satisfied(9 * H, D)
