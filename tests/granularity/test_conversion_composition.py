"""Compositional soundness of conversions.

If a pair satisfies ``[m, n]_src`` and the conversion chain
``src -> mid -> tgt`` is feasible, then converting in two hops must
still be implied - i.e. the two-hop interval contains every pair the
one-hop interval contains.  These properties justify the propagation
algorithm's iterated cross-granularity translation.
"""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.constraints import TCG
from repro.granularity import standard_system

SYSTEM = standard_system()

CHAINS = [
    ("hour", "day", "week"),
    ("day", "week", "month"),
    ("b-day", "day", "month"),
    ("b-day", "week", "month"),
    ("day", "month", "year"),
]


def sample_pair(source, m, n, seed):
    tick1 = seed % 150
    distance = m + (seed // 150) % (n - m + 1)
    first1, last1 = source.tick_bounds(tick1)
    first2, last2 = source.tick_bounds(tick1 + distance)
    t1 = last1 if seed % 2 else first1
    t2 = first2 if seed % 3 else last2
    if t2 < t1:
        t1, t2 = first1, last2
    return t1, t2


@pytest.mark.parametrize("src,mid,tgt", CHAINS)
@given(
    m=st.integers(min_value=0, max_value=8),
    span=st.integers(min_value=0, max_value=8),
    seed=st.integers(min_value=0, max_value=10**6),
)
@settings(max_examples=20, deadline=None)
def test_two_hop_conversion_is_implied(src, mid, tgt, m, span, seed):
    source = SYSTEM.get(src)
    middle = SYSTEM.get(mid)
    target = SYSTEM.get(tgt)
    n = m + span
    hop1 = SYSTEM.convert(m, n, source, middle)
    assume(hop1.interval is not None)
    hop2 = SYSTEM.convert(hop1.interval[0], hop1.interval[1], middle, target)
    assume(hop2.interval is not None)
    t1, t2 = sample_pair(source, m, n, seed)
    source_tcg = TCG(m, n, source)
    assume(source_tcg.is_satisfied(t1, t2))
    two_hop = TCG(hop2.interval[0], hop2.interval[1], target)
    assert two_hop.is_satisfied(t1, t2)


@pytest.mark.parametrize("src,mid,tgt", CHAINS)
def test_direct_hop_at_least_as_tight(src, mid, tgt):
    """The one-hop conversion never loses to the two-hop composition
    (it may be strictly tighter), for a spread of intervals."""
    source = SYSTEM.get(src)
    middle = SYSTEM.get(mid)
    target = SYSTEM.get(tgt)
    for (m, n) in [(0, 0), (0, 3), (1, 1), (2, 6)]:
        one_hop = SYSTEM.convert(m, n, source, target)
        hop1 = SYSTEM.convert(m, n, source, middle)
        if hop1.interval is None or one_hop.interval is None:
            continue
        hop2 = SYSTEM.convert(
            hop1.interval[0], hop1.interval[1], middle, target
        )
        if hop2.interval is None:
            continue
        assert hop2.interval[0] <= one_hop.interval[0]
        assert hop2.interval[1] >= one_hop.interval[1]


def test_identity_hop_is_exact():
    for label in ("day", "week", "month"):
        outcome = SYSTEM.convert(2, 5, label, label)
        assert outcome.interval == (2, 5)
