"""Tests for the from-scratch Gregorian calendar arithmetic.

The Python ``datetime`` module serves as an independent oracle (it is
never used by the library itself).
"""

import datetime

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.granularity import gregorian as greg

_ORACLE_EPOCH = datetime.date(greg.EPOCH_YEAR, 1, 1)


class TestLeapYears:
    def test_standard_leap_rules(self):
        assert greg.is_leap_year(2000)
        assert greg.is_leap_year(2004)
        assert not greg.is_leap_year(2001)
        assert not greg.is_leap_year(2100)
        assert greg.is_leap_year(2400)

    def test_days_in_year(self):
        assert greg.days_in_year(2000) == 366
        assert greg.days_in_year(2001) == 365

    def test_days_in_month_february(self):
        assert greg.days_in_month(2000, 2) == 29
        assert greg.days_in_month(2001, 2) == 28

    def test_days_in_month_rejects_bad_month(self):
        with pytest.raises(ValueError):
            greg.days_in_month(2000, 0)
        with pytest.raises(ValueError):
            greg.days_in_month(2000, 13)


class TestDayConversions:
    def test_epoch_is_day_zero(self):
        assert greg.ymd_to_day(greg.EPOCH_YEAR, 1, 1) == 0
        assert greg.day_to_ymd(0) == (greg.EPOCH_YEAR, 1, 1)

    def test_rejects_invalid_day_of_month(self):
        with pytest.raises(ValueError):
            greg.ymd_to_day(2001, 2, 29)

    @given(st.integers(min_value=0, max_value=300_000))
    def test_roundtrip_matches_datetime(self, day_index):
        date = _ORACLE_EPOCH + datetime.timedelta(days=day_index)
        assert greg.day_to_ymd(day_index) == (date.year, date.month, date.day)
        assert greg.ymd_to_day(date.year, date.month, date.day) == day_index

    def test_400_year_cycle_boundary(self):
        # The last day of the first 400-year cycle and the first of the next.
        last = greg.DAYS_PER_400_YEARS - 1
        assert greg.day_to_ymd(last) == (greg.EPOCH_YEAR + 399, 12, 31)
        assert greg.day_to_ymd(last + 1) == (greg.EPOCH_YEAR + 400, 1, 1)


class TestWeekday:
    def test_epoch_weekday_is_monday(self):
        assert greg.weekday(0) == 0

    def test_weekday_cycles(self):
        assert greg.weekday(6) == 6
        assert greg.weekday(7) == 0


class TestMonthIndex:
    def test_epoch_month(self):
        assert greg.month_index_of_day(0) == 0
        assert greg.month_bounds(0) == (0, 30)

    def test_february_2000_has_29_days(self):
        first, last = greg.month_bounds(1)
        assert last - first + 1 == 29

    @given(st.integers(min_value=0, max_value=5000))
    def test_month_bounds_partition_time(self, month_index):
        first, last = greg.month_bounds(month_index)
        assert greg.month_index_of_day(first) == month_index
        assert greg.month_index_of_day(last) == month_index
        if month_index > 0:
            _, prev_last = greg.month_bounds(month_index - 1)
            assert prev_last == first - 1

    @given(st.integers(min_value=0, max_value=300_000))
    def test_month_index_consistent_with_ymd(self, day_index):
        year, month, _ = greg.day_to_ymd(day_index)
        expected = (year - greg.EPOCH_YEAR) * 12 + (month - 1)
        assert greg.month_index_of_day(day_index) == expected


class TestYearIndex:
    def test_epoch_year(self):
        assert greg.year_index_of_day(0) == 0
        assert greg.year_bounds(0) == (0, 365)  # 2000 is a leap year

    @given(st.integers(min_value=0, max_value=800))
    def test_year_bounds_partition_time(self, year_index):
        first, last = greg.year_bounds(year_index)
        assert greg.year_index_of_day(first) == year_index
        assert greg.year_index_of_day(last) == year_index
        length = last - first + 1
        assert length in (365, 366)
        assert (length == 366) == greg.is_leap_year(greg.EPOCH_YEAR + year_index)
