"""Tests for trigger rules, including the mine-back integration."""

import random

import pytest

from repro.constraints import TCG, EventStructure
from repro.granularity.gregorian import SECONDS_PER_DAY, SECONDS_PER_HOUR
from repro.mining import EventDiscoveryProblem, discover
from repro.simulation import (
    PoissonProcess,
    RuleSimulator,
    TriggerRule,
    fixed_delay,
    uniform_delay,
)

D, H = SECONDS_PER_DAY, SECONDS_PER_HOUR


class TestTriggerRule:
    def test_validation(self):
        with pytest.raises(ValueError):
            TriggerRule("a", "b", 1.5, fixed_delay(10))
        with pytest.raises(ValueError):
            TriggerRule("a", "b", 0.5, fixed_delay(10), align=0)
        with pytest.raises(ValueError):
            fixed_delay(-1)
        with pytest.raises(ValueError):
            uniform_delay(5, 2)

    def test_fire_probability(self):
        rng = random.Random(0)
        rule = TriggerRule("a", "b", 0.5, fixed_delay(100), align=1)
        fired = sum(
            1 for _ in range(2000) if rule.fire(0, rng) is not None
        )
        assert 900 <= fired <= 1100

    def test_fire_alignment_and_delay(self):
        rng = random.Random(1)
        rule = TriggerRule("a", "b", 1.0, fixed_delay(90), align=60)
        assert rule.fire(600, rng) == 660  # 690 aligned down to 660


class TestRuleSimulator:
    def test_links_are_recorded(self):
        rng = random.Random(2)
        background = PoissonProcess(["alert"], rate=1 / (6 * H))
        simulator = RuleSimulator(
            background,
            [TriggerRule("alert", "ack", 1.0, uniform_delay(60, 1800))],
        )
        result = simulator.run(0, 10 * D, rng)
        assert result.links
        for cause, effect in result.links:
            assert cause.etype == "alert"
            assert effect.etype == "ack"
            assert 0 <= effect.time - cause.time <= 1800

    def test_rule_confidence_tracks_probability(self):
        rng = random.Random(3)
        background = PoissonProcess(["alert"], rate=1 / (2 * H))
        simulator = RuleSimulator(
            background,
            [TriggerRule("alert", "ack", 0.7, fixed_delay(600))],
        )
        result = simulator.run(0, 60 * D, rng)
        assert 0.6 <= result.rule_confidence("alert", "ack") <= 0.8

    def test_chained_rules(self):
        rng = random.Random(4)
        background = PoissonProcess(["a"], rate=1 / (12 * H))
        simulator = RuleSimulator(
            background,
            [
                TriggerRule("a", "b", 1.0, fixed_delay(300)),
                TriggerRule("b", "c", 1.0, fixed_delay(300)),
            ],
        )
        result = simulator.run(0, 5 * D, rng)
        assert {e.etype for e in result.sequence} >= {"a", "b", "c"}

    def test_chain_depth_bounds_self_trigger(self):
        rng = random.Random(5)
        background = PoissonProcess(["a"], rate=1 / D)
        simulator = RuleSimulator(
            background,
            [TriggerRule("a", "a", 1.0, fixed_delay(60))],
            max_chain_depth=3,
        )
        result = simulator.run(0, 2 * D, rng)
        # Each base event spawns at most 3 chained copies.
        base = sum(1 for c, _ in result.links if True)
        assert len(result.sequence) <= 4 * max(
            1, len(result.sequence) - base
        ) + 4

    def test_bad_depth_rejected(self):
        with pytest.raises(ValueError):
            RuleSimulator(PoissonProcess(["a"], 1.0), [], max_chain_depth=0)


class TestMineBack:
    """The full-circle experiment: discovery recovers the planted rule."""

    def test_discovery_recovers_trigger_rule(self, system):
        rng = random.Random(1996)
        background = PoissonProcess(
            ["deploy"], rate=1 / (12 * H), align=60
        )
        noise = PoissonProcess(
            ["login", "scan"], rate=1 / (8 * H), align=60
        )
        from repro.simulation import CompositeProcess

        simulator = RuleSimulator(
            CompositeProcess([background, noise]),
            [
                TriggerRule(
                    "deploy", "error-spike", 0.9, uniform_delay(300, 3 * H)
                )
            ],
        )
        result = simulator.run(0, 90 * D, rng)
        hour = system.get("hour")
        structure = EventStructure(
            ["cause", "effect"],
            {("cause", "effect"): [TCG(0, 3, hour)]},
        )
        problem = EventDiscoveryProblem(structure, 0.6, "deploy")
        outcome = discover(problem, result.sequence, system)
        solutions = outcome.solution_assignments()
        assert {"cause": "deploy", "effect": "error-spike"} in solutions
        (solution,) = [
            cet
            for cet in outcome.solutions
            if cet.assignment["effect"] == "error-spike"
        ]
        mined = outcome.frequencies[solution]
        planted = result.rule_confidence("deploy", "error-spike")
        # Mined frequency >= planted confidence (coincidental matches
        # can only add).
        assert mined >= planted - 0.05
