"""Tests for the stochastic event processes."""

import random

import pytest

from repro.simulation import (
    CompositeProcess,
    PoissonProcess,
    RenewalProcess,
    uniform_interarrival,
)


class TestPoissonProcess:
    def test_validation(self):
        with pytest.raises(ValueError):
            PoissonProcess([], 1.0)
        with pytest.raises(ValueError):
            PoissonProcess(["a"], 0.0)
        with pytest.raises(ValueError):
            PoissonProcess(["a"], 1.0, weights=[1, 2])
        with pytest.raises(ValueError):
            PoissonProcess(["a"], 1.0, align=0)

    def test_rate_controls_count(self):
        rng = random.Random(1)
        process = PoissonProcess(["a"], rate=1 / 100.0)
        events = process.generate(0, 100_000, rng)
        # Expected ~1000; allow generous tolerance.
        assert 800 <= len(events) <= 1200

    def test_events_within_window_and_sorted(self):
        rng = random.Random(2)
        process = PoissonProcess(["a", "b"], rate=1 / 50.0, align=10)
        events = process.generate(500, 5000, rng)
        times = [e.time for e in events]
        assert all(500 <= t <= 5000 for t in times)
        assert times == sorted(times)
        assert all(t % 10 == 0 for t in times)

    def test_weights_bias_types(self):
        rng = random.Random(3)
        process = PoissonProcess(
            ["common", "rare"], rate=1 / 20.0, weights=[9, 1]
        )
        events = process.generate(0, 100_000, rng)
        commons = sum(1 for e in events if e.etype == "common")
        assert commons > 0.7 * len(events)

    def test_deterministic_given_seed(self):
        process = PoissonProcess(["a"], rate=1 / 30.0)
        first = process.generate(0, 10_000, random.Random(7))
        second = process.generate(0, 10_000, random.Random(7))
        assert first == second

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            PoissonProcess(["a"], 1.0).generate(10, 5, random.Random(0))


class TestRenewalProcess:
    def test_uniform_interarrivals(self):
        rng = random.Random(4)
        process = RenewalProcess(
            "tick", uniform_interarrival(50, 100), align=1
        )
        events = process.generate(0, 10_000, rng)
        gaps = [
            b.time - a.time for a, b in zip(events, events[1:])
        ]
        assert all(49 <= gap <= 101 for gap in gaps)

    def test_bad_sampler_rejected(self):
        process = RenewalProcess("tick", lambda rng: 0)
        with pytest.raises(ValueError):
            process.generate(0, 100, random.Random(0))

    def test_bad_bounds_rejected(self):
        with pytest.raises(ValueError):
            uniform_interarrival(0, 5)
        with pytest.raises(ValueError):
            uniform_interarrival(9, 5)


class TestCompositeProcess:
    def test_superposition_sorted(self):
        rng = random.Random(5)
        composite = CompositeProcess(
            [
                PoissonProcess(["a"], 1 / 100.0),
                RenewalProcess("b", uniform_interarrival(80, 120)),
            ]
        )
        events = composite.generate(0, 20_000, rng)
        times = [e.time for e in events]
        assert times == sorted(times)
        assert {"a", "b"} <= {e.etype for e in events}

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CompositeProcess([])
