"""LRU residency, spill, rehydration and WAL replay."""

import pytest

from repro.automata import StreamingMatcher
from repro.service import MemoryCheckpointStore, SessionRegistry

H = 3600
EVENTS = [("a", 0), ("b", H), ("c", 2 * H)]


@pytest.fixture
def registry(chain_build, system):
    return SessionRegistry(
        MemoryCheckpointStore(),
        lambda: StreamingMatcher(chain_build),
        max_resident=2,
        system=system,
    )


def feed(registry, tenant, key, events):
    """Feed events the way the service does: WAL first, then matcher."""
    detections = []
    for etype, time in events:
        session, replayed = registry.acquire(tenant, key)
        assert not replayed
        session.seq += 1
        registry.store.append_wal(tenant, key, session.seq, etype, time)
        detections.extend(session.matcher.feed(etype, time))
    return detections


class TestResidency:
    def test_lru_eviction_order(self, registry):
        registry.acquire("t", "k1")
        registry.acquire("t", "k2")
        registry.acquire("t", "k1")  # k2 is now least recently used
        registry.acquire("t", "k3")  # forces one eviction
        assert registry.is_resident("t", "k1")
        assert not registry.is_resident("t", "k2")
        assert registry.is_resident("t", "k3")
        assert registry.evictions == 1

    def test_eviction_checkpoints_state(self, registry):
        feed(registry, "t", "k1", EVENTS[:2])
        registry.acquire("t", "k2")
        registry.acquire("t", "k3")  # evicts k1
        assert registry.store.has("t", "k1")
        assert not registry.is_resident("t", "k1")

    def test_rehydration_restores_detection_state(self, registry):
        feed(registry, "t", "k1", EVENTS[:2])  # a, b fed
        registry.acquire("t", "k2")
        registry.acquire("t", "k3")  # evicts k1
        # The chain completes across the eviction boundary.
        detections = feed(registry, "t", "k1", EVENTS[2:])
        assert len(detections) == 1
        assert detections[0].anchor_time == 0
        assert registry.rehydrations == 1

    def test_acquire_same_session_is_stable(self, registry):
        first, _ = registry.acquire("t", "k")
        second, _ = registry.acquire("t", "k")
        assert first is second


class TestReplay:
    def test_wal_replay_reemits_detections_after_crash(
        self, chain_build, system
    ):
        store = MemoryCheckpointStore()

        def factory():
            return StreamingMatcher(chain_build)

        crashed = SessionRegistry(store, factory, system=system)
        session, _ = crashed.acquire("t", "k")
        for etype, time in EVENTS:
            session.seq += 1
            store.append_wal("t", "k", session.seq, etype, time)
            session.matcher.feed(etype, time)
        # Checkpoint covered only the first event; the crash loses the
        # in-memory matcher but the WAL carries events 2 and 3.
        checkpointed = SessionRegistry(store, factory, system=system)
        early, _ = checkpointed.acquire("t2", "k")  # unrelated session
        store.save("t", "k", 1, _matcher_after(chain_build, EVENTS[:1]))

        fresh = SessionRegistry(store, factory, system=system)
        session, replayed = fresh.acquire("t", "k")
        assert session.seq == 3
        assert [seq for seq, _, _ in replayed] == [3]
        assert replayed[0][2].anchor_time == 0

    def test_wal_only_session_replays_from_scratch(
        self, chain_build, system
    ):
        store = MemoryCheckpointStore()
        for seq, (etype, time) in enumerate(EVENTS, start=1):
            store.append_wal("t", "k", seq, etype, time)
        registry = SessionRegistry(
            store, lambda: StreamingMatcher(chain_build), system=system
        )
        session, replayed = registry.acquire("t", "k")
        assert session.seq == 3
        assert len(replayed) == 1

    def test_maybe_checkpoint_respects_interval(self, registry):
        session, _ = registry.acquire("t", "k")
        session.seq = 5
        registry.maybe_checkpoint(session, interval=10)
        assert not registry.store.has("t", "k")
        session.seq = 10
        registry.maybe_checkpoint(session, interval=10)
        assert registry.store.has("t", "k")
        assert session.checkpointed_seq == 10


def _matcher_after(build, events):
    matcher = StreamingMatcher(build)
    for etype, time in events:
        matcher.feed(etype, time)
    return matcher.checkpoint()


class TestStats:
    def test_stats_counts(self, registry):
        registry.acquire("t", "k1")
        registry.acquire("t", "k2")
        registry.acquire("t", "k3")
        stats = registry.stats()
        assert stats["resident"] == 2
        assert stats["evicted"] == 1
        assert stats["evictions"] == 1
