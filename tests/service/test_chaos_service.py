"""Chaos acceptance: the service under injected faults.

The contract (ISSUE 6): with seeded fault injection - corrupt events,
worker crashes mid-feed, corrupted checkpoint files, a flooded hot
tenant - per-tenant detections remain bit-identical to direct
single-matcher runs, with at-least-once delivery (dedupe on the
service coordinates) across crash recovery.
"""

import json
import random

import pytest

from repro.automata import StreamingMatcher, build_tag
from repro.resilience import EventValidationError, FaultInjector
from repro.service import DetectionService, ServiceConfig

STEP = 60
MAX_DELAY = 10 * STEP


def make_stream(seed, n=300):
    rng = random.Random(seed)
    types = ["a", "b", "c", "n"]
    return [(rng.choice(types), i * STEP) for i in range(n)]


def dirty_reference(build, stream, max_lateness=MAX_DELAY):
    """What a direct single matcher detects on the same dirty stream
    (corrupt events skipped, reorder buffer flushed)."""
    matcher = StreamingMatcher(build, max_lateness=max_lateness)
    detections = []
    for etype, time in stream:
        try:
            detections.extend(matcher.feed(etype, time))
        except EventValidationError:
            continue
    detections.extend(matcher.flush())
    return detections


def as_json(detections):
    return json.dumps(
        [
            [d.anchor_time, d.detected_at, sorted(d.bindings.items())]
            for d in detections
        ],
        sort_keys=True,
    )


def service_config(**overrides):
    overrides.setdefault("enabled", True)
    # High threshold: corruption should quarantine, not trip, in the
    # bit-identity scenarios (breaker trips are exercised separately).
    overrides.setdefault("breaker_failure_threshold", 10_000)
    overrides.setdefault("max_lateness", MAX_DELAY)
    return ServiceConfig(**overrides)


class TestChaosService:
    @pytest.mark.parametrize("seed", range(3))
    def test_faulted_tenants_stay_bit_identical(
        self, chain_build, system, run, seed
    ):
        """Three tenants, each with its own seeded dirty stream,
        multiplexed with forced eviction churn: every tenant's
        detections equal its direct single-matcher run."""
        streams = {}
        for index in range(3):
            injector = FaultInjector(
                seed * 10 + index,
                drop_rate=0.05,
                duplicate_rate=0.05,
                delay_rate=0.25,
                max_delay=MAX_DELAY,
                corrupt_rate=0.05,
            )
            streams["t%d" % index] = injector.inject(
                make_stream(seed * 10 + index)
            ).stream

        async def go():
            service = DetectionService(
                chain_build,
                service_config(max_resident_sessions=1),
                system=system,
            )
            length = max(len(s) for s in streams.values())
            for position in range(length):
                for tenant, stream in streams.items():
                    if position < len(stream):
                        etype, time = stream[position]
                        await service.submit(tenant, "k", etype, time)
            await service.flush()
            await service.close()
            return service

        service = run(go())
        assert service.registry.rehydrations > 0  # churn really happened
        for tenant, stream in streams.items():
            got = [
                sd.detection for sd in service.detections
                if sd.tenant == tenant and not sd.replayed
            ]
            assert as_json(got) == as_json(
                dirty_reference(chain_build, stream)
            )

    @pytest.mark.parametrize("seed", range(3))
    def test_crash_recovery_replays_to_identical_detections(
        self, chain_build, system, run, tmp_path, seed
    ):
        """Kill the workers mid-stream with no clean shutdown; a new
        service recovers from the checkpoint directory and the merged,
        deduped detections equal the uninterrupted direct run."""
        injector = FaultInjector(
            seed,
            duplicate_rate=0.05,
            delay_rate=0.2,
            max_delay=MAX_DELAY,
            corrupt_rate=0.05,
        )
        stream = injector.inject(make_stream(seed)).stream
        cut = len(stream) // 2
        ckpt_dir = str(tmp_path / "ckpt")

        def make_service():
            return DetectionService(
                chain_build,
                service_config(
                    checkpoint_dir=ckpt_dir, checkpoint_interval=17
                ),
                system=system,
            )

        async def first_half():
            service = make_service()
            for etype, time in stream[:cut]:
                await service.submit("t", "k", etype, time)
            await service.drain()
            # Crash: cancel the workers, never close or checkpoint.
            for state in service._tenants.values():
                if state.worker is not None:
                    state.worker.cancel()
            return list(service.detections)

        async def second_half():
            service = make_service()
            recovered = service.recover()
            assert all(sd.replayed for sd in recovered)
            for etype, time in stream[cut:]:
                await service.submit("t", "k", etype, time)
            await service.flush()
            await service.close()
            return service

        pre_crash = run(first_half())
        service = run(second_half())

        merged = {}
        for sd in pre_crash + service.detections:
            merged[sd.dedupe_key()] = sd
        got = [
            merged[key].detection
            for key in sorted(merged, key=lambda k: (k[2], k[3]))
        ]
        assert as_json(got) == as_json(
            dirty_reference(chain_build, stream)
        )

    def test_corrupted_checkpoint_falls_back_a_generation(
        self, chain_build, system, run, tmp_path
    ):
        """Corrupt the newest checkpoint file on disk: recovery falls
        back to the previous generation and replays the WAL gap, still
        reaching bit-identical detections."""
        stream = make_stream(99, n=120)
        ckpt_dir = str(tmp_path / "ckpt")

        def make_service():
            return DetectionService(
                chain_build,
                service_config(
                    checkpoint_dir=ckpt_dir, checkpoint_interval=13
                ),
                system=system,
            )

        async def run_stream():
            service = make_service()
            for etype, time in stream:
                await service.submit("t", "k", etype, time)
            await service.drain()
            for state in service._tenants.values():
                if state.worker is not None:
                    state.worker.cancel()
            return list(service.detections)

        pre_crash = run(run_stream())

        # Sabotage the newest generation on disk.
        crashed_store = make_service().store
        generations = crashed_store._generations("t", "k")
        assert len(generations) >= 2
        newest = crashed_store._gen_path("t", "k", generations[-1])
        text = open(newest).read()
        with open(newest, "w") as handle:
            handle.write(text[: len(text) // 2])

        async def recover():
            service = make_service()
            service.recover()
            await service.flush()
            await service.close()
            return service

        service = run(recover())
        merged = {}
        for sd in pre_crash + service.detections:
            merged[sd.dedupe_key()] = sd
        got = [
            merged[key].detection
            for key in sorted(merged, key=lambda k: (k[2], k[3]))
        ]
        assert as_json(got) == as_json(
            dirty_reference(chain_build, stream)
        )

    def test_hot_tenant_flood_does_not_disturb_others(
        self, chain_build, system, run
    ):
        """A tenant flooding far past its queue capacity (shed-oldest)
        degrades only itself; a quiet tenant's detections stay exact."""
        quiet = [("a", 0), ("b", STEP), ("c", 2 * STEP)]
        flood = [("a", i) for i in range(500)]

        async def go():
            service = DetectionService(
                chain_build,
                service_config(
                    max_lateness=None,
                    queue_capacity=4,
                    shed_policy="shed-oldest",
                    max_live_anchors=8,
                    overflow_policy="shed-oldest",
                    breaker_failure_threshold=1,
                    breaker_clock=lambda: 0.0,  # hot breaker never heals
                ),
                system=system,
            )
            # Park the hot tenant behind a tripped breaker so the
            # flood piles into its bounded queue.
            await service.submit("hot", "k", "", 0)
            for etype, time in flood:
                await service.submit("hot", "k", etype, time)
            for etype, time in quiet:
                await service.submit("quiet", "k", etype, time)
            await service.drain()
            await service.close()
            return service

        service = run(go())
        stats = service.stats()
        assert stats["tenants"]["hot"]["shed"] >= 490
        assert service.parked("hot") <= 4
        direct = StreamingMatcher(chain_build)
        expected = [d for e, t in quiet for d in direct.feed(e, t)]
        got = [
            sd.detection for sd in service.detections
            if sd.tenant == "quiet"
        ]
        assert as_json(got) == as_json(expected)
