"""Generational checkpoint stores: durability, fallback, WAL."""

import json
import os

import pytest

from repro.service import (
    CheckpointCorruptError,
    DirectoryCheckpointStore,
    MemoryCheckpointStore,
    open_store,
)


@pytest.fixture(params=["memory", "directory"])
def store(request, tmp_path):
    if request.param == "memory":
        return MemoryCheckpointStore()
    return DirectoryCheckpointStore(str(tmp_path / "ckpt"))


def corrupt_latest(store, tenant, key):
    """Truncate the newest generation, whatever the backend."""
    if isinstance(store, MemoryCheckpointStore):
        store.corrupt_latest(tenant, key)
        return
    gen = store._generations(tenant, key)[-1]
    path = store._gen_path(tenant, key, gen)
    text = open(path).read()
    with open(path, "w") as handle:
        handle.write(text[: len(text) // 2])


MATCHER = {"fake": "matcher-state"}


class TestRoundTrip:
    def test_save_load(self, store):
        store.save("t", "k", 5, MATCHER)
        payload = store.load("t", "k")
        assert payload["seq"] == 5
        assert payload["matcher"] == MATCHER
        assert payload["tenant"] == "t" and payload["key"] == "k"

    def test_missing_session_loads_none(self, store):
        assert store.load("t", "nope") is None
        assert not store.has("t", "nope")

    def test_generations_pruned_to_keep(self, store):
        for seq in range(1, 6):
            store.save("t", "k", seq, MATCHER)
        assert len(store._generations("t", "k")) == store.keep_generations
        assert store.load("t", "k")["seq"] == 5

    def test_discard_forgets_everything(self, store):
        store.save("t", "k", 1, MATCHER)
        store.append_wal("t", "k", 2, "a", 100)
        store.discard("t", "k")
        assert store.load("t", "k") is None
        assert store.wal_suffix("t", "k", 0) == []

    def test_sessions_enumerates_coordinates(self, store):
        store.save("t1", "k1", 1, MATCHER)
        store.save("t2", "k2", 1, MATCHER)
        assert store.sessions() == [("t1", "k1"), ("t2", "k2")]


class TestWal:
    def test_append_and_suffix(self, store):
        for seq in range(1, 5):
            store.append_wal("t", "k", seq, "a", seq * 100)
        assert store.wal_suffix("t", "k", 2) == [
            (3, "a", 300), (4, "a", 400),
        ]

    def test_save_truncates_through_oldest_retained(self, store):
        for seq in range(1, 4):
            store.append_wal("t", "k", seq, "a", seq * 100)
        store.save("t", "k", 3, MATCHER)
        for seq in range(4, 7):
            store.append_wal("t", "k", seq, "b", seq * 100)
        store.save("t", "k", 6, MATCHER)
        # Two generations retained (seq 3 and 6): the WAL must keep
        # everything after seq 3 so a fallback to the older generation
        # can still replay to the present.
        assert store.wal_suffix("t", "k", 3) == [
            (4, "b", 400), (5, "b", 500), (6, "b", 600),
        ]
        # A third save drops the seq-3 generation and its WAL prefix.
        store.save("t", "k", 6, MATCHER)
        assert store.wal_suffix("t", "k", 3) == []


class TestCorruption:
    def test_fallback_to_previous_generation(self, store):
        store.save("t", "k", 3, MATCHER)
        store.save("t", "k", 6, {"newer": True})
        corrupt_latest(store, "t", "k")
        payload = store.load("t", "k")
        assert payload["seq"] == 3
        assert payload["matcher"] == MATCHER

    def test_all_generations_corrupt_raises(self, store):
        store.save("t", "k", 3, MATCHER)
        corrupt_latest(store, "t", "k")
        with pytest.raises(CheckpointCorruptError) as excinfo:
            store.load("t", "k")
        assert excinfo.value.tenant == "t"
        assert excinfo.value.key == "k"

    def test_wrong_shape_json_is_treated_as_corrupt(self, store):
        store.save("t", "k", 3, MATCHER)
        store.save("t", "k", 6, MATCHER)
        if isinstance(store, MemoryCheckpointStore):
            gen = store._generations("t", "k")[-1]
            store._data[("t", "k")][gen] = json.dumps(["not", "a", "dict"])
        else:
            gen = store._generations("t", "k")[-1]
            with open(store._gen_path("t", "k", gen), "w") as handle:
                json.dump(["not", "a", "dict"], handle)
        assert store.load("t", "k")["seq"] == 3


class TestDirectoryStore:
    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        store = DirectoryCheckpointStore(str(tmp_path / "ckpt"))
        store.save("t", "k", 1, MATCHER)
        session_dir = store._session_dir("t", "k")
        assert not [
            name for name in os.listdir(session_dir)
            if name.endswith(".tmp")
        ]

    def test_survives_reopen(self, tmp_path):
        root = str(tmp_path / "ckpt")
        first = DirectoryCheckpointStore(root)
        first.save("t", "k", 2, MATCHER)
        first.append_wal("t", "k", 3, "a", 100)
        reopened = DirectoryCheckpointStore(root)
        assert reopened.load("t", "k")["seq"] == 2
        assert reopened.wal_suffix("t", "k", 2) == [(3, "a", 100)]
        assert reopened.sessions() == [("t", "k")]

    def test_torn_wal_tail_is_skipped(self, tmp_path):
        store = DirectoryCheckpointStore(str(tmp_path / "ckpt"))
        store.append_wal("t", "k", 1, "a", 100)
        with open(store._wal_path("t", "k"), "a") as handle:
            handle.write('[2, "b"')  # crash mid-append
        assert store.wal_suffix("t", "k", 0) == [(1, "a", 100)]

    def test_open_store_picks_backend(self, tmp_path):
        assert isinstance(open_store(None), MemoryCheckpointStore)
        assert isinstance(
            open_store(str(tmp_path / "d")), DirectoryCheckpointStore
        )
