"""Shared fixtures for the detection-service tests.

Every service constructed here forces ``ServiceConfig(enabled=True)``
so the suite also passes under ``REPRO_SERVICE=off`` (the CI service
job runs exactly that combination to prove the kill switch).
"""

import asyncio

import pytest

from repro.automata.builder import build_tag
from repro.constraints import TCG, ComplexEventType, EventStructure
from repro.granularity.gregorian import SECONDS_PER_HOUR

H = SECONDS_PER_HOUR


@pytest.fixture
def chain_build(system):
    """The compiled a -> b -> c chain TAG (hops within [0, 2] hours)."""
    hour = system.get("hour")
    structure = EventStructure(
        ["A", "B", "C"],
        {
            ("A", "B"): [TCG(0, 2, hour)],
            ("B", "C"): [TCG(0, 2, hour)],
        },
    )
    cet = ComplexEventType(structure, {"A": "a", "B": "b", "C": "c"})
    return build_tag(cet, system=system)


@pytest.fixture
def run():
    """Run a coroutine to completion on a fresh event loop."""
    return asyncio.run


class FakeClock:
    """A manually advanced monotonic clock for breaker determinism."""

    def __init__(self, start: float = 0.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()
