"""Service observability: tenant labels, breaker-trip flight dumps,
and trace-context routing."""

import os
import uuid

import pytest

from repro.obs import (
    Tracer,
    activate_tracer,
    configure,
    global_metrics,
    global_recorder,
    load_flight_dump,
    obs_enabled,
    span,
)
from repro.service import DetectionService, ServiceConfig, serve_events
from repro.service.service import _TenantCounters


@pytest.fixture
def obs_on():
    previous = obs_enabled()
    configure(True)
    yield
    configure(previous)


def _tenant(prefix):
    """Unique tenant names so labelled counters never collide across
    tests (label children register in the process-wide registry)."""
    return "%s-%s" % (prefix, uuid.uuid4().hex[:8])


def _events(tenant, count, key="k"):
    return [(tenant, key, "a", index) for index in range(count)]


class TestTenantLabels:
    def test_top_n_tenants_get_labelled_children(
        self, chain_build, obs_on
    ):
        big = _tenant("big")
        mid = _tenant("mid")
        small = _tenant("small")
        events = (
            _events(big, 8) + _events(mid, 4) + _events(small, 1)
        )
        service = serve_events(
            chain_build, events,
            config=ServiceConfig(enabled=True, tenant_labels=2),
        )
        assert service.stats()["labelled_tenants"] == sorted([big, mid])
        registry = global_metrics()
        child = registry.get(
            "repro_service_events_total", labels={"tenant": big}
        )
        assert child.value() == 8
        assert registry.get(
            "repro_service_events_total", labels={"tenant": mid}
        ).value() == 4

    def test_labels_default_off(self, chain_build, obs_on, monkeypatch):
        monkeypatch.delenv("REPRO_OBS_TENANT_LABELS", raising=False)
        service = serve_events(
            chain_build, _events(_tenant("quiet"), 3),
            config=ServiceConfig(enabled=True),
        )
        assert service.stats()["labelled_tenants"] == []

    def test_env_knob_enables_labels(
        self, chain_build, obs_on, monkeypatch
    ):
        monkeypatch.setenv("REPRO_OBS_TENANT_LABELS", "1")
        tenant = _tenant("env")
        service = serve_events(
            chain_build, _events(tenant, 2),
            config=ServiceConfig(enabled=True),
        )
        assert service.stats()["labelled_tenants"] == [tenant]

    def test_aggregate_family_counts_unlabelled_tenants_too(
        self, chain_build, obs_on
    ):
        registry = global_metrics()
        aggregate = registry.get("repro_service_events_total")
        before = aggregate.value()
        serve_events(
            chain_build, _events(_tenant("agg"), 5),
            config=ServiceConfig(enabled=True, tenant_labels=0),
        )
        assert aggregate.value() == before + 5

    def test_newcomer_displaces_the_coldest(self, obs_on):
        counters = _TenantCounters(limit=1)
        cold = _tenant("cold")
        hot = _tenant("hot")
        counters.record(cold, received=3)
        assert counters.labelled_tenants() == [cold]
        # Not hotter yet: the slot is kept.
        counters.record(hot, received=2)
        assert counters.labelled_tenants() == [cold]
        # Outgrows the incumbent: promoted; the demoted child keeps
        # its last value (monotonic) but stops advancing.
        counters.record(hot, received=4)
        assert counters.labelled_tenants() == [hot]
        registry = global_metrics()
        assert registry.get(
            "repro_service_events_total", labels={"tenant": cold}
        ).value() == 3
        counters.record(cold, received=1)  # volume 4, still <= 6
        assert registry.get(
            "repro_service_events_total", labels={"tenant": cold}
        ).value() == 3

    def test_zero_limit_registers_nothing(self, obs_on):
        counters = _TenantCounters(limit=0)
        counters.record(_tenant("zero"), received=5)
        assert counters.labelled_tenants() == []


class TestBreakerTripDumps:
    def _trip(self, chain_build, tenant, recorder_dir=None):
        """Two invalid events trip a threshold-2 breaker."""
        return serve_events(
            chain_build,
            [
                (tenant, "k", "", 0),  # rejected: empty etype
                (tenant, "k", "a", -1),  # rejected: negative time
            ],
            config=ServiceConfig(
                enabled=True,
                breaker_failure_threshold=2,
                recorder_dir=recorder_dir,
            ),
        )

    def test_trip_writes_a_flight_dump(
        self, chain_build, obs_on, tmp_path
    ):
        tenant = _tenant("trippy")
        directory = str(tmp_path / "dumps")
        service = self._trip(chain_build, tenant, recorder_dir=directory)
        assert service.stats()["tenants"][tenant]["quarantined"] == 2
        files = sorted(os.listdir(directory))
        assert len(files) == 1
        assert files[0].startswith("flightrec-%s" % tenant)
        payload = load_flight_dump(os.path.join(directory, files[0]))
        assert tenant in payload["reason"]
        # The ring is process-global, so scope to our tenant (earlier
        # tests may have left their own trips in it).
        ours = [
            record for record in payload["captured"]
            if record["attributes"].get("tenant") == tenant
        ]
        names = [record["name"] for record in ours]
        assert "service.reject" in names
        assert "service.breaker_trip" in names
        trip = next(
            record for record in ours
            if record["name"] == "service.breaker_trip"
        )
        assert trip["trigger"] == "error"

    def test_env_dir_is_the_fallback(
        self, chain_build, obs_on, tmp_path, monkeypatch
    ):
        directory = str(tmp_path / "env-dumps")
        monkeypatch.setenv("REPRO_OBS_RECORDER_DIR", directory)
        self._trip(chain_build, _tenant("envtrip"))
        assert len(os.listdir(directory)) == 1

    def test_no_dir_means_no_file_but_still_noted(
        self, chain_build, obs_on, monkeypatch, tmp_path
    ):
        monkeypatch.delenv("REPRO_OBS_RECORDER_DIR", raising=False)
        monkeypatch.chdir(tmp_path)  # a stray write would land here
        tenant = _tenant("quiet-trip")
        self._trip(chain_build, tenant)
        assert os.listdir(".") == []
        names = [
            record["name"] for record in global_recorder().captured()
            if record["attributes"].get("tenant") == tenant
        ]
        assert "service.breaker_trip" in names

    def test_tenant_name_is_sanitised_in_filename(
        self, chain_build, obs_on, tmp_path
    ):
        directory = str(tmp_path / "dumps")
        self._trip(
            chain_build, "weird/|tenant %s" % uuid.uuid4().hex[:4],
            recorder_dir=directory,
        )
        (name,) = os.listdir(directory)
        assert "/" not in name and "|" not in name and " " not in name


class TestTraceRouting:
    def test_route_spans_reparent_under_the_submitting_span(
        self, chain_build, obs_on, run
    ):
        tenant = _tenant("traced")
        tracer = Tracer()

        async def scenario():
            service = DetectionService(
                chain_build, config=ServiceConfig(enabled=True)
            )
            with span("request"):
                for event in _events(tenant, 3):
                    await service.submit(*event)
                await service.drain()
            await service.close()

        with activate_tracer(tracer):
            run(scenario())
        (request,) = [
            root for root in tracer.roots if root.name == "request"
        ]
        routes = [
            child for child in request.children
            if child.name == "service.route"
        ]
        assert routes, [c.name for c in request.children]
        for route in routes:
            assert route.attributes["tenant"] == tenant
            assert route.parent_id == request.span_id
            assert route.trace_id == tracer.trace_id

    def test_rehydrate_spans_reparent_too(
        self, chain_build, obs_on, run, tmp_path
    ):
        tenant = _tenant("rehydrated")
        tracer = Tracer()

        async def scenario():
            service = DetectionService(
                chain_build,
                config=ServiceConfig(
                    enabled=True, max_resident_sessions=1,
                    checkpoint_dir=str(tmp_path / "ckpt"),
                ),
            )
            with span("request"):
                # Two keys with one residency slot force an eviction
                # and a rehydration on the way back.
                await service.submit(tenant, "k1", "a", 0)
                await service.submit(tenant, "k2", "a", 1)
                await service.submit(tenant, "k1", "b", 2)
                await service.drain()
            await service.close()

        with activate_tracer(tracer):
            run(scenario())
        (request,) = [
            root for root in tracer.roots if root.name == "request"
        ]

        def walk(span_):
            yield span_
            for child in span_.children:
                yield from walk(child)

        rehydrates = [
            s for s in walk(request) if s.name == "service.rehydrate"
        ]
        assert rehydrates
        for rehydrate in rehydrates:
            assert rehydrate.trace_id == tracer.trace_id
            assert rehydrate.parent_id == request.span_id
