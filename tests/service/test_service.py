"""DetectionService: routing, isolation, backpressure, lifecycle."""

import json

import pytest

from repro.automata import StreamingMatcher
from repro.service import (
    DetectionService,
    ServiceClosedError,
    ServiceConfig,
    ServiceDisabledError,
    TenantOverloadError,
    serve_events,
    service_enabled,
)

H = 3600
CHAIN = [("a", 0), ("b", H), ("c", 2 * H)]


def config(**overrides):
    overrides.setdefault("enabled", True)
    return ServiceConfig(**overrides)


def direct_detections(build, events):
    matcher = StreamingMatcher(build)
    return [d for e, t in events for d in matcher.feed(e, t)]


def as_json(detections):
    return json.dumps(
        [
            [d.anchor_time, d.detected_at, sorted(d.bindings.items())]
            for d in detections
        ],
        sort_keys=True,
    )


class TestKillSwitch:
    def test_env_off_values(self, monkeypatch):
        for value in ("off", "0", "false", "no", "disabled", " OFF "):
            monkeypatch.setenv("REPRO_SERVICE", value)
            assert not service_enabled()
        for value in ("on", "1", "yes", ""):
            monkeypatch.setenv("REPRO_SERVICE", value)
            assert service_enabled()
        monkeypatch.delenv("REPRO_SERVICE")
        assert service_enabled()

    def test_disabled_env_blocks_construction(
        self, monkeypatch, chain_build
    ):
        monkeypatch.setenv("REPRO_SERVICE", "off")
        with pytest.raises(ServiceDisabledError):
            DetectionService(chain_build)

    def test_explicit_enabled_overrides_env(self, monkeypatch, chain_build):
        monkeypatch.setenv("REPRO_SERVICE", "off")
        service = DetectionService(chain_build, config())
        assert service.stats()["closed"] is False

    def test_explicit_disabled_overrides_env(
        self, monkeypatch, chain_build
    ):
        monkeypatch.setenv("REPRO_SERVICE", "on")
        with pytest.raises(ServiceDisabledError):
            DetectionService(chain_build, ServiceConfig(enabled=False))


class TestRouting:
    def test_detections_match_direct_run_per_session(
        self, chain_build, system, run
    ):
        events = CHAIN + [("a", 3 * H), ("b", 4 * H), ("c", 5 * H)]
        expected = direct_detections(chain_build, events)

        async def go():
            service = DetectionService(
                chain_build, config(), system=system
            )
            for tenant in ("t1", "t2"):
                for key in ("k1", "k2"):
                    for etype, time in events:
                        await service.submit(tenant, key, etype, time)
            await service.drain()
            await service.close()
            return service

        service = run(go())
        for tenant in ("t1", "t2"):
            for key in ("k1", "k2"):
                got = [
                    sd.detection for sd in service.detections
                    if sd.tenant == tenant and sd.key == key
                ]
                assert as_json(got) == as_json(expected)

    def test_sequence_numbers_are_per_session(
        self, chain_build, system, run
    ):
        async def go():
            service = DetectionService(
                chain_build, config(), system=system
            )
            for etype, time in CHAIN:
                await service.submit("t", "k1", etype, time)
                await service.submit("t", "k2", etype, time)
            await service.drain()
            await service.close()
            return service

        service = run(go())
        assert {sd.seq for sd in service.detections} == {3}

    def test_submit_after_close_raises(self, chain_build, run):
        async def go():
            service = DetectionService(chain_build, config())
            await service.close()
            with pytest.raises(ServiceClosedError):
                await service.submit("t", "k", "a", 0)

        run(go())


class TestFaultIsolation:
    def test_bad_tenant_is_quarantined_not_fatal(
        self, chain_build, system, run
    ):
        async def go():
            service = DetectionService(
                chain_build,
                config(breaker_failure_threshold=100),
                system=system,
            )
            for etype, time in CHAIN:
                await service.submit("good", "k", etype, time)
                await service.submit("bad", "k", "", -5)
            await service.drain()
            await service.close()
            return service

        service = run(go())
        good = [sd for sd in service.detections if sd.tenant == "good"]
        assert len(good) == 1
        stats = service.stats()
        assert stats["tenants"]["bad"]["quarantined"] == 3
        assert stats["tenants"]["good"]["quarantined"] == 0
        assert len(service.quarantine) == 3
        assert all(record.reason for record in service.quarantine)

    def test_breaker_parks_then_drains_without_loss(
        self, chain_build, system, run, clock
    ):
        async def go():
            service = DetectionService(
                chain_build,
                config(
                    breaker_failure_threshold=2,
                    breaker_reset_seconds=30.0,
                    breaker_clock=clock,
                ),
                system=system,
            )
            # Two consecutive bad events trip the breaker ...
            for _ in range(2):
                await service.submit("t", "k", "", 0)
            # ... so the valid chain parks instead of processing.
            for etype, time in CHAIN:
                await service.submit("t", "k", etype, time)
            await service.drain()
            assert service.parked("t") == 3
            assert (
                service.stats()["tenants"]["t"]["breaker"]["state"]
                == "open"
            )
            # Cooldown elapses; the parked backlog drains in order.
            clock.advance(30.0)
            await service.drain()
            assert service.parked("t") == 0
            await service.close()
            return service

        service = run(go())
        got = [sd.detection for sd in service.detections]
        assert as_json(got) == as_json(
            direct_detections(chain_build, CHAIN)
        )
        assert service.stats()["tenants"]["t"]["breaker"]["trips"] == 1

    def test_tripped_tenant_does_not_block_others(
        self, chain_build, system, run, clock
    ):
        async def go():
            service = DetectionService(
                chain_build,
                config(
                    breaker_failure_threshold=1, breaker_clock=clock
                ),
                system=system,
            )
            await service.submit("noisy", "k", "", 0)  # trips immediately
            for etype, time in CHAIN:
                await service.submit("noisy", "k", etype, time)
                await service.submit("quiet", "k", etype, time)
            await service.drain()
            await service.close()
            return service

        service = run(go())
        quiet = [
            sd.detection for sd in service.detections
            if sd.tenant == "quiet"
        ]
        assert as_json(quiet) == as_json(
            direct_detections(chain_build, CHAIN)
        )
        assert service.parked("noisy") == 3


class TestBackpressure:
    def test_raise_policy_surfaces_overload(self, chain_build, run, clock):
        async def go():
            service = DetectionService(
                chain_build,
                config(
                    queue_capacity=2,
                    breaker_failure_threshold=1,
                    breaker_clock=clock,
                ),
            )
            # Trip the breaker so nothing drains, then fill the queue.
            await service.submit("t", "k", "", 0)
            await service.submit("t", "k", "a", 0)
            await service.submit("t", "k", "b", H)
            with pytest.raises(TenantOverloadError) as excinfo:
                await service.submit("t", "k", "c", 2 * H)
            assert excinfo.value.tenant == "t"
            await service.close()
            return service

        service = run(go())
        assert service.stats()["tenants"]["t"]["shed"] == 1

    @pytest.mark.parametrize("policy", ["shed-oldest", "shed-newest"])
    def test_shedding_policies_bound_the_queue(
        self, chain_build, run, clock, policy
    ):
        async def go():
            service = DetectionService(
                chain_build,
                config(
                    queue_capacity=2,
                    shed_policy=policy,
                    breaker_failure_threshold=1,
                    breaker_clock=clock,
                ),
            )
            await service.submit("t", "k", "", 0)  # trip: park everything
            for index in range(5):
                await service.submit("t", "k", "a", index * H)
            assert service.parked("t") == 2
            await service.close()
            return service

        service = run(go())
        assert service.stats()["tenants"]["t"]["shed"] == 3

    def test_hot_session_halves_effective_capacity(
        self, chain_build, system, run
    ):
        async def go():
            service = DetectionService(
                chain_build,
                config(
                    queue_capacity=8,
                    max_live_anchors=5,
                    overflow_policy="shed-oldest",
                ),
                system=system,
            )
            assert service.effective_capacity("t") == 8
            # Four unfinished anchors out of five allowed: 80% live.
            for index in range(4):
                await service.submit("t", "k", "a", index)
            await service.drain()
            assert service.effective_capacity("t") == 4
            await service.close()

        run(go())


class TestLifecycle:
    def test_close_checkpoints_resident_sessions(
        self, chain_build, system, run
    ):
        async def go():
            service = DetectionService(
                chain_build, config(), system=system
            )
            await service.submit("t", "k", "a", 0)
            await service.drain()
            await service.close()
            return service

        service = run(go())
        assert service.store.has("t", "k")
        assert service.store.load("t", "k")["seq"] == 1

    def test_close_is_idempotent(self, chain_build, run):
        async def go():
            service = DetectionService(chain_build, config())
            await service.close()
            await service.close()

        run(go())

    def test_flush_drains_reorder_buffers(self, chain_build, system):
        events = [
            ("t", "k", "a", 0),
            ("t", "k", "c", 2 * H),  # arrives before b
            ("t", "k", "b", H),
        ]
        service = serve_events(
            chain_build, events,
            config=config(max_lateness=2 * H), system=system,
        )
        assert len(service.detections) == 1
        assert service.detections[0].detection.anchor_time == 0

    def test_serve_events_facade_reports_stats(self, chain_build, system):
        events = [("t", "k", e, t) for e, t in CHAIN]
        service = serve_events(
            chain_build, events, config=config(), system=system
        )
        stats = service.stats()
        assert stats["closed"] is True
        assert stats["tenants"]["t"]["submitted"] == 3
        assert stats["detections"] == 1

    def test_invalid_config_rejected(self, chain_build):
        with pytest.raises(ValueError):
            DetectionService(
                chain_build, config(queue_capacity=0)
            )
        with pytest.raises(ValueError):
            DetectionService(
                chain_build, config(shed_policy="bogus")
            )
