"""The circuit-breaker state machine, driven by a fake clock."""

import pytest

from repro.service import BREAKER_STATES, CircuitBreaker
from repro.service.breaker import CLOSED, HALF_OPEN, OPEN


def make(clock, threshold=3, reset=30.0, probes=1):
    return CircuitBreaker(
        failure_threshold=threshold,
        reset_seconds=reset,
        half_open_probes=probes,
        clock=clock,
    )


class TestClosed:
    def test_starts_closed_and_allows(self, clock):
        breaker = make(clock)
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_sporadic_failures_do_not_trip(self, clock):
        breaker = make(clock, threshold=3)
        for _ in range(10):
            breaker.record_failure()
            breaker.record_failure()
            breaker.record_success()  # resets the consecutive count
        assert breaker.state == CLOSED
        assert breaker.trips == 0

    def test_consecutive_failures_trip(self, clock):
        breaker = make(clock, threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.trips == 1


class TestOpen:
    def test_open_rejects_until_cooldown(self, clock):
        breaker = make(clock, threshold=1, reset=30.0)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(29.9)
        assert not breaker.allow()
        clock.advance(0.1)
        assert breaker.state == HALF_OPEN
        assert breaker.allow()


class TestHalfOpen:
    def test_probe_success_closes(self, clock):
        breaker = make(clock, threshold=1)
        breaker.record_failure()
        clock.advance(30.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED

    def test_probe_failure_reopens_and_restarts_cooldown(self, clock):
        breaker = make(clock, threshold=1, reset=30.0)
        breaker.record_failure()
        clock.advance(30.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.trips == 2
        clock.advance(29.0)
        assert not breaker.allow()
        clock.advance(1.0)
        assert breaker.allow()

    def test_probe_budget_is_enforced(self, clock):
        breaker = make(clock, threshold=1, probes=2)
        breaker.record_failure()
        clock.advance(30.0)
        assert breaker.allow()
        assert breaker.allow()
        assert not breaker.allow()  # both probe slots in flight
        breaker.record_success()
        assert breaker.state == HALF_OPEN  # one probe still out
        breaker.record_success()
        assert breaker.state == CLOSED


class TestSurface:
    def test_snapshot_shape(self, clock):
        breaker = make(clock)
        breaker.record_failure()
        snap = breaker.snapshot()
        assert snap["state"] in BREAKER_STATES
        assert snap["consecutive_failures"] == 1
        assert snap["trips"] == 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"failure_threshold": 0},
            {"reset_seconds": -1.0},
            {"half_open_probes": 0},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            CircuitBreaker(**kwargs)
