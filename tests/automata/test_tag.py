"""Tests for the TAG structure and definition-level run semantics."""

import pytest

from repro.automata import ANY, Clock, TAG, Transition, within
from repro.granularity import day, hour
from repro.granularity.business import BusinessDayType
from repro.granularity.gregorian import SECONDS_PER_DAY, SECONDS_PER_HOUR


def two_step_tag():
    """Accepts 'a' then 'b' within 2 hours, with skips allowed."""
    clock = Clock("x", hour())
    transitions = [
        Transition("s0", "s0", ANY),
        Transition("s1", "s1", ANY),
        Transition("s0", "s1", "a", resets=frozenset(["x"]), variables=("A",)),
        Transition("s1", "s2", "b", guard=within("x", 0, 2), variables=("B",)),
    ]
    return TAG(
        alphabet=["a", "b"],
        states=["s0", "s1", "s2"],
        start_states=["s0"],
        clocks=[clock],
        transitions=transitions,
        accepting=["s2"],
    )


class TestValidation:
    def test_valid_tag(self):
        tag = two_step_tag()
        assert len(tag.states) == 3
        assert len(tag.transitions_from("s0")) == 2

    def test_unknown_state_rejected(self):
        with pytest.raises(ValueError):
            TAG(["a"], ["s0"], ["s0"], [], [Transition("s0", "zz", "a")], [])

    def test_unknown_start_rejected(self):
        with pytest.raises(ValueError):
            TAG(["a"], ["s0"], ["zz"], [], [], [])

    def test_unknown_accepting_rejected(self):
        with pytest.raises(ValueError):
            TAG(["a"], ["s0"], ["s0"], [], [], ["zz"])

    def test_unknown_reset_clock_rejected(self):
        with pytest.raises(ValueError):
            TAG(
                ["a"],
                ["s0"],
                ["s0"],
                [],
                [Transition("s0", "s0", "a", resets=frozenset(["x"]))],
                [],
            )

    def test_unknown_guard_clock_rejected(self):
        with pytest.raises(ValueError):
            TAG(
                ["a"],
                ["s0"],
                ["s0"],
                [],
                [Transition("s0", "s0", "a", guard=within("x", 0, 1))],
                [],
            )


class TestRunSemantics:
    def test_accepting_run(self):
        tag = two_step_tag()
        config = tag.initial_configuration()
        (after_a,) = [
            c for c in tag.step(config, "a", 100) if c.state == "s1"
        ]
        assert after_a.reset_times["x"] == 100
        successors = tag.step(after_a, "b", 100 + SECONDS_PER_HOUR)
        states = {c.state for c in successors}
        assert "s2" in states  # guard satisfied
        accepted = [c for c in successors if c.state == "s2"][0]
        assert tag.accepts_run_end(accepted)
        assert dict(accepted.bindings) == {
            "A": 100,
            "B": 100 + SECONDS_PER_HOUR,
        }

    def test_guard_blocks_late_event(self):
        tag = two_step_tag()
        config = tag.initial_configuration()
        (after_a,) = [
            c for c in tag.step(config, "a", 0) if c.state == "s1"
        ]
        late = tag.step(after_a, "b", 3 * SECONDS_PER_HOUR + 1)
        assert {c.state for c in late} == {"s1"}  # only the skip survives

    def test_skip_preserves_clock(self):
        tag = two_step_tag()
        config = tag.initial_configuration()
        (after_a,) = [
            c for c in tag.step(config, "a", 50) if c.state == "s1"
        ]
        (skipped,) = tag.step(after_a, "a", 60)  # 'a' only skips from s1
        assert skipped.state == "s1"
        assert skipped.reset_times["x"] == 50

    def test_non_monotone_timestamps_rejected(self):
        tag = two_step_tag()
        config = tag.initial_configuration(start_time=100)
        with pytest.raises(ValueError):
            tag.step(config, "a", 50)

    def test_strict_mode_kills_on_gap(self):
        clock = Clock("x", BusinessDayType())
        tag = TAG(
            alphabet=["a"],
            states=["s0"],
            start_states=["s0"],
            clocks=[clock],
            transitions=[Transition("s0", "s0", ANY)],
            accepting=["s0"],
        )
        config = tag.initial_configuration()
        saturday = 5 * SECONDS_PER_DAY
        assert tag.step(config, "a", saturday, strict=True) == []
        assert len(tag.step(config, "a", saturday, strict=False)) == 1

    def test_initial_configuration_needs_unique_start(self):
        tag = TAG(["a"], ["s0", "s1"], ["s0", "s1"], [], [], [])
        with pytest.raises(ValueError):
            tag.initial_configuration()

    def test_clock_value_accessor(self):
        tag = two_step_tag()
        config = tag.initial_configuration()
        assert config.clock_value(tag, "x", 2 * SECONDS_PER_HOUR) == 2
