"""Tests for the streaming (online) matcher."""

import random

import pytest

from repro.automata import StreamingMatcher, TagMatcher, build_tag
from repro.constraints import TCG, ComplexEventType, EventStructure
from repro.granularity.gregorian import SECONDS_PER_DAY, SECONDS_PER_HOUR
from repro.mining.events import Event, EventSequence

D, H = SECONDS_PER_DAY, SECONDS_PER_HOUR


@pytest.fixture
def chain_cet(system):
    hour = system.get("hour")
    structure = EventStructure(
        ["A", "B", "C"],
        {
            ("A", "B"): [TCG(0, 2, hour)],
            ("B", "C"): [TCG(0, 2, hour)],
        },
    )
    return ComplexEventType(structure, {"A": "a", "B": "b", "C": "c"})


class TestBasics:
    def test_detection_on_completion(self, chain_cet):
        matcher = StreamingMatcher(build_tag(chain_cet))
        assert matcher.feed("a", 100) == []
        assert matcher.feed("b", 100 + H) == []
        detections = matcher.feed("c", 100 + 2 * H)
        assert len(detections) == 1
        detection = detections[0]
        assert detection.anchor_time == 100
        assert detection.detected_at == 100 + 2 * H
        assert detection.bindings == {
            "A": 100,
            "B": 100 + H,
            "C": 100 + 2 * H,
        }
        assert matcher.live_anchors == 0

    def test_noise_is_skipped(self, chain_cet):
        matcher = StreamingMatcher(build_tag(chain_cet))
        matcher.feed("a", 0)
        matcher.feed("noise", 10)
        matcher.feed("b", H)
        matcher.feed("noise", H + 10)
        assert matcher.feed("c", 2 * H)

    def test_late_event_cannot_complete(self, chain_cet):
        matcher = StreamingMatcher(build_tag(chain_cet))
        matcher.feed("a", 0)
        assert matcher.feed("b", 5 * H) == []  # too late for [0, 2] hours
        # The anchor stays live via the skip loop (only a horizon can
        # retire it), but no completion is possible any more.
        assert matcher.feed("c", 5 * H + 60) == []
        bounded = StreamingMatcher(build_tag(chain_cet), horizon_seconds=4 * H)
        bounded.feed("a", 0)
        bounded.feed("b", 5 * H)
        assert bounded.live_anchors == 0  # horizon retired it

    def test_overlapping_anchors(self, chain_cet):
        matcher = StreamingMatcher(build_tag(chain_cet))
        matcher.feed("a", 0)
        matcher.feed("a", 1800)
        assert matcher.live_anchors == 2
        matcher.feed("b", H)
        detections = matcher.feed("c", 2 * H)
        # Both anchors complete on the same c event.
        assert {d.anchor_time for d in detections} == {0, 1800}

    def test_out_of_order_rejected(self, chain_cet):
        matcher = StreamingMatcher(build_tag(chain_cet))
        matcher.feed("a", 100)
        with pytest.raises(ValueError):
            matcher.feed("b", 50)

    def test_single_variable_pattern(self, system):
        structure = EventStructure(["A"], {})
        cet = ComplexEventType(structure, {"A": "ping"})
        matcher = StreamingMatcher(build_tag(cet))
        detections = matcher.feed("ping", 42)
        assert len(detections) == 1
        assert detections[0].bindings == {"A": 42}

    def test_horizon_expires_anchors(self, chain_cet):
        matcher = StreamingMatcher(
            build_tag(chain_cet), horizon_seconds=3 * H
        )
        matcher.feed("a", 0)
        assert matcher.live_anchors == 1
        matcher.feed("noise", 4 * H)
        assert matcher.live_anchors == 0

    def test_anchor_cap(self, chain_cet):
        matcher = StreamingMatcher(build_tag(chain_cet), max_live_anchors=2)
        matcher.feed("a", 0)
        matcher.feed("a", 1)
        with pytest.raises(RuntimeError):
            matcher.feed("a", 2)


class TestHorizonBoundary:
    def test_event_exactly_at_horizon_stays_live(self, chain_cet):
        """time == anchor.time + horizon must NOT expire the anchor."""
        matcher = StreamingMatcher(
            build_tag(chain_cet), horizon_seconds=2 * H
        )
        matcher.feed("a", 0)
        matcher.feed("b", H)
        detections = matcher.feed("c", 2 * H)  # on the boundary
        assert [d.anchor_time for d in detections] == [0]

    def test_noise_at_boundary_keeps_anchor(self, chain_cet):
        matcher = StreamingMatcher(
            build_tag(chain_cet), horizon_seconds=2 * H
        )
        matcher.feed("a", 0)
        matcher.feed("noise", 2 * H)
        assert matcher.live_anchors == 1

    def test_one_second_past_horizon_expires(self, chain_cet):
        matcher = StreamingMatcher(
            build_tag(chain_cet), horizon_seconds=2 * H
        )
        matcher.feed("a", 0)
        matcher.feed("noise", 2 * H + 1)
        assert matcher.live_anchors == 0


class TestDuplicateTimestampAnchors:
    def test_two_roots_at_same_time_open_two_anchors(self, chain_cet):
        matcher = StreamingMatcher(build_tag(chain_cet))
        matcher.feed("a", 100)
        matcher.feed("a", 100)
        assert matcher.live_anchors == 2

    def test_both_duplicate_anchors_complete(self, chain_cet):
        matcher = StreamingMatcher(build_tag(chain_cet))
        matcher.feed("a", 100)
        matcher.feed("a", 100)
        matcher.feed("b", 100 + H)
        detections = matcher.feed("c", 100 + 2 * H)
        assert [d.anchor_time for d in detections] == [100, 100]
        assert all(
            d.bindings == {"A": 100, "B": 100 + H, "C": 100 + 2 * H}
            for d in detections
        )
        assert matcher.live_anchors == 0

    def test_duplicate_anchors_expire_together(self, chain_cet):
        matcher = StreamingMatcher(
            build_tag(chain_cet), horizon_seconds=H
        )
        matcher.feed("a", 100)
        matcher.feed("a", 100)
        matcher.feed("noise", 100 + H + 1)
        assert matcher.live_anchors == 0


class TestAgainstBatchMatcher:
    @pytest.mark.parametrize("seed", range(5))
    def test_detections_match_batch_counts(self, system, chain_cet, seed):
        """Streaming detections = batch matcher's matching roots."""
        rng = random.Random(seed)
        types = ["a", "b", "c", "n"]
        times = sorted(rng.sample(range(0, 4 * D, 600), 80))
        sequence = EventSequence(
            Event(rng.choice(types), t) for t in times
        )
        batch = TagMatcher(build_tag(chain_cet))
        expected = {
            sequence[i].time for i in batch.matching_roots(sequence)
        }
        streaming = StreamingMatcher(build_tag(chain_cet))
        detections = streaming.feed_sequence(sequence)
        assert {d.anchor_time for d in detections} == expected

    def test_bindings_satisfy_structure(self, system, chain_cet):
        rng = random.Random(9)
        types = ["a", "b", "c"]
        times = sorted(rng.sample(range(0, 2 * D, 300), 60))
        sequence = EventSequence(
            Event(rng.choice(types), t) for t in times
        )
        streaming = StreamingMatcher(build_tag(chain_cet))
        for detection in streaming.feed_sequence(sequence):
            assert chain_cet.structure.is_satisfied_by(detection.bindings)
