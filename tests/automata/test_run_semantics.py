"""Properties of the clock-value semantics.

The library stores reset timestamps and computes clock values as
``ceil(now) - ceil(reset)``; the paper's run definition updates values
incrementally per event (``t + ceil(t_i) - ceil(t_{i-1})``).  These
tests verify the telescoping equivalence whenever the paper's updates
are defined, and exercise the definition-level stepping of TAG runs
against hand-computed values.
"""

import random

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.automata import ANY, Clock, TAG, Transition, within
from repro.granularity import day, hour, week
from repro.granularity.business import BusinessDayType
from repro.granularity.gregorian import SECONDS_PER_DAY, SECONDS_PER_HOUR

D, H = SECONDS_PER_DAY, SECONDS_PER_HOUR


class TestTelescoping:
    """Incremental updates sum to the lazy two-point formula."""

    @given(
        times=st.lists(
            st.integers(min_value=0, max_value=40 * SECONDS_PER_DAY),
            min_size=2,
            max_size=8,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_hour_clock(self, times):
        times = sorted(times)
        clock = Clock("x", hour())
        reset = times[0]
        # Paper-style incremental accumulation.
        value = 0
        for previous, current in zip(times, times[1:]):
            step = clock.granularity.tick_of(current) - clock.granularity.tick_of(previous)
            value += step
        assert value == clock.value(reset, times[-1])

    @given(
        day_indices=st.lists(
            st.integers(min_value=0, max_value=200),
            min_size=2,
            max_size=8,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_bday_clock_when_defined(self, day_indices):
        """With every intermediate timestamp covered, the incremental
        and the two-point computations agree for gap types too."""
        bday = BusinessDayType()
        days = sorted(d for d in day_indices if d % 7 not in (5, 6))
        assume(len(days) >= 2)
        times = [d * SECONDS_PER_DAY + 9 * 3600 for d in days]
        clock = Clock("x", bday)
        value = 0
        for previous, current in zip(times, times[1:]):
            step = bday.tick_of(current) - bday.tick_of(previous)
            value += step
        assert value == clock.value(times[0], times[-1])

    def test_bday_clock_gap_is_none(self):
        clock = Clock("x", BusinessDayType())
        saturday = 5 * SECONDS_PER_DAY
        assert clock.value(0, saturday) is None
        assert clock.value(saturday, 7 * SECONDS_PER_DAY) is None


class TestRunStepping:
    """Definition-level run of a two-clock TAG, by hand."""

    def _tag(self):
        clock_h = Clock("h", hour())
        clock_w = Clock("w", week())
        transitions = [
            Transition("s0", "s0", ANY),
            Transition("s1", "s1", ANY),
            Transition(
                "s0", "s1", "start", resets=frozenset(["h", "w"]),
                variables=("S",),
            ),
            Transition(
                "s1",
                "s2",
                "stop",
                guard=within("h", 1, 48) & within("w", 0, 0),
                variables=("T",),
            ),
        ]
        return TAG(
            ["start", "stop"],
            ["s0", "s1", "s2"],
            ["s0"],
            [clock_h, clock_w],
            transitions,
            ["s2"],
        )

    def test_two_clock_guard(self):
        tag = self._tag()
        config = tag.initial_configuration()
        (after_start,) = [
            c for c in tag.step(config, "start", 2 * D) if c.state == "s1"
        ]
        # 26 hours later but still the same week: both guards hold.
        successors = tag.step(after_start, "stop", 3 * D + 2 * H)
        assert any(c.state == "s2" for c in successors)
        # 6 days later crosses the week boundary: the w guard fails.
        late = tag.step(after_start, "stop", 2 * D + 5 * D)
        assert all(c.state != "s2" for c in late)

    def test_clock_values_along_run(self):
        tag = self._tag()
        config = tag.initial_configuration()
        (after_start,) = [
            c for c in tag.step(config, "start", 10 * H) if c.state == "s1"
        ]
        assert after_start.clock_value(tag, "h", 13 * H) == 3
        assert after_start.clock_value(tag, "w", 13 * H) == 0
        assert after_start.clock_value(tag, "w", 8 * D) == 1
