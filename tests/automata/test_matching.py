"""Tests for the TAG matcher, including TAG-vs-reference equivalence."""

import random

import pytest

from repro.automata import TagMatcher, build_tag
from repro.automata.structmatch import count_occurrences, find_occurrence
from repro.constraints import TCG, ComplexEventType, EventStructure
from repro.granularity import day, hour, week
from repro.granularity.gregorian import SECONDS_PER_DAY, SECONDS_PER_HOUR
from repro.mining.events import Event, EventSequence


@pytest.fixture
def example1_cet(figure_1a):
    return ComplexEventType(
        figure_1a,
        {
            "X0": "IBM-rise",
            "X1": "IBM-earnings-report",
            "X2": "HP-rise",
            "X3": "IBM-fall",
        },
    )


def example1_positive_sequence():
    """A hand-built realisation of Example 1 with noise sprinkled in.

    Day 0 is a Monday: X0 Monday 09:00, X1 Tuesday 10:00 (next b-day),
    X2 Wednesday 11:00 (within 5 b-days of X0), X3 Wednesday 15:00
    (within 8 hours of X2, same week as X1).
    """
    D, H = SECONDS_PER_DAY, SECONDS_PER_HOUR
    return EventSequence(
        [
            Event("NOISE", 0),
            Event("IBM-rise", 9 * H),
            Event("HP-fall", 12 * H),
            Event("IBM-earnings-report", D + 10 * H),
            Event("NOISE", D + 12 * H),
            Event("HP-rise", 2 * D + 11 * H),
            Event("IBM-fall", 2 * D + 15 * H),
        ]
    )


class TestExample1Matching:
    def test_positive(self, example1_cet):
        matcher = TagMatcher(build_tag(example1_cet))
        seq = example1_positive_sequence()
        result = matcher.match_from(seq, 1)
        assert result.matched
        assert result.bindings["X0"] == 9 * SECONDS_PER_HOUR

    def test_negative_late_fall(self, example1_cet):
        D, H = SECONDS_PER_DAY, SECONDS_PER_HOUR
        seq = EventSequence(
            [
                Event("IBM-rise", 9 * H),
                Event("IBM-earnings-report", D + 10 * H),
                Event("HP-rise", 2 * D + 11 * H),
                Event("IBM-fall", 2 * D + 21 * H),  # 10h after HP-rise
            ]
        )
        matcher = TagMatcher(build_tag(example1_cet))
        assert not matcher.occurs_at(seq, 0)

    def test_negative_weekend_root(self, example1_cet):
        """A root on Saturday is uncovered by b-day: no match."""
        D, H = SECONDS_PER_DAY, SECONDS_PER_HOUR
        seq = EventSequence(
            [
                Event("IBM-rise", 5 * D + 9 * H),  # Saturday
                Event("IBM-earnings-report", 7 * D + 10 * H),
                Event("HP-rise", 7 * D + 11 * H),
                Event("IBM-fall", 7 * D + 15 * H),
            ]
        )
        matcher = TagMatcher(build_tag(example1_cet))
        assert not matcher.occurs_at(seq, 0)

    def test_wrong_root_type(self, example1_cet):
        seq = example1_positive_sequence()
        matcher = TagMatcher(build_tag(example1_cet))
        assert not matcher.occurs_at(seq, 0)  # NOISE event

    def test_count_and_accepts(self, example1_cet):
        seq = example1_positive_sequence()
        matcher = TagMatcher(build_tag(example1_cet))
        assert matcher.count_occurrences(seq) == 1
        assert matcher.accepts(seq)

    def test_agrees_with_reference(self, example1_cet):
        seq = example1_positive_sequence()
        matcher = TagMatcher(build_tag(example1_cet))
        for index in range(len(seq)):
            assert matcher.occurs_at(seq, index) == (
                find_occurrence(example1_cet, seq, index) is not None
            )


class TestHorizon:
    def test_horizon_stops_early(self, example1_cet):
        seq = example1_positive_sequence()
        bounded = TagMatcher(
            build_tag(example1_cet), horizon_seconds=14 * SECONDS_PER_DAY
        )
        unbounded = TagMatcher(build_tag(example1_cet))
        assert bounded.occurs_at(seq, 1) == unbounded.occurs_at(seq, 1)
        # A horizon of one hour cuts the scan but keeps soundness for
        # a pattern that needs days: simply no match.
        tight = TagMatcher(build_tag(example1_cet), horizon_seconds=3600)
        result = tight.match_from(seq, 1)
        assert not result.matched
        assert result.events_scanned < len(seq)


class TestRandomEquivalence:
    """The TAG product construction must agree with binding semantics.

    Random chains and diamonds over random granularities, random noise
    sequences with strictly increasing timestamps (ties are the
    documented incompleteness of linear-scan matching).
    """

    def _random_structure(self, rng, system):
        labels = ["hour", "day", "week", "b-day"]
        shape = rng.choice(["chain3", "chain4", "diamond"])
        grab = lambda: system.get(rng.choice(labels))
        bounds = lambda: (
            lambda m: (m, m + rng.randrange(0, 4))
        )(rng.randrange(0, 3))
        if shape == "chain3":
            names = ["A", "B", "C"]
            arcs = [("A", "B"), ("B", "C")]
        elif shape == "chain4":
            names = ["A", "B", "C", "D"]
            arcs = [("A", "B"), ("B", "C"), ("C", "D")]
        else:
            names = ["A", "B", "C", "D"]
            arcs = [("A", "B"), ("A", "C"), ("B", "D"), ("C", "D")]
        constraints = {}
        for arc in arcs:
            m, n = bounds()
            constraints[arc] = [TCG(m, n, grab())]
        return EventStructure(names, constraints)

    def _random_sequence(self, rng, types, length):
        times = sorted(
            rng.sample(range(0, 21 * SECONDS_PER_DAY, 900), length)
        )
        return EventSequence(
            Event(rng.choice(types), t) for t in times
        )

    @pytest.mark.parametrize("seed", range(12))
    def test_tag_equals_reference(self, system, seed):
        rng = random.Random(seed)
        structure = self._random_structure(rng, system)
        types = ["e%d" % i for i in range(3)]
        assignment = {
            v: rng.choice(types) for v in structure.variables
        }
        cet = ComplexEventType(structure, assignment)
        matcher = TagMatcher(build_tag(cet))
        sequence = self._random_sequence(rng, types, 40)
        for index in range(len(sequence)):
            tag_says = matcher.occurs_at(sequence, index)
            ref_says = find_occurrence(cet, sequence, index) is not None
            assert tag_says == ref_says, (
                "disagreement at %d (seed %d): tag=%s ref=%s on %r"
                % (index, seed, tag_says, ref_says, structure)
            )

    @pytest.mark.parametrize("seed", range(12, 16))
    def test_counts_agree(self, system, seed):
        rng = random.Random(seed)
        structure = self._random_structure(rng, system)
        types = ["e%d" % i for i in range(2)]  # heavy type collisions
        assignment = {v: rng.choice(types) for v in structure.variables}
        cet = ComplexEventType(structure, assignment)
        matcher = TagMatcher(build_tag(cet))
        sequence = self._random_sequence(rng, types, 30)
        assert matcher.count_occurrences(sequence) == count_occurrences(
            cet, sequence
        )


class TestStrictMode:
    def test_strict_kills_on_uncovered_skip(self, system):
        """An irrelevant Saturday event kills strict runs of a b-day
        pattern but not lazy ones - the documented divergence."""
        bday = system.get("b-day")
        structure = EventStructure(
            ["A", "B"], {("A", "B"): [TCG(0, 3, bday)]}
        )
        cet = ComplexEventType(structure, {"A": "a", "B": "b"})
        D = SECONDS_PER_DAY
        seq = EventSequence(
            [
                Event("a", 4 * D),        # Friday
                Event("noise", 5 * D),    # Saturday: gap in b-day
                Event("b", 7 * D),        # Monday
            ]
        )
        lazy = TagMatcher(build_tag(cet), strict=False)
        strict = TagMatcher(build_tag(cet), strict=True)
        assert lazy.occurs_at(seq, 0)
        assert not strict.occurs_at(seq, 0)

    def test_strict_equals_lazy_after_reduction(self, system):
        """On sequences with only covered timestamps the two coincide."""
        bday = system.get("b-day")
        structure = EventStructure(
            ["A", "B"], {("A", "B"): [TCG(0, 3, bday)]}
        )
        cet = ComplexEventType(structure, {"A": "a", "B": "b"})
        D = SECONDS_PER_DAY
        seq = EventSequence(
            [Event("a", 4 * D), Event("noise", 7 * D), Event("b", 8 * D)]
        )
        lazy = TagMatcher(build_tag(cet), strict=False)
        strict = TagMatcher(build_tag(cet), strict=True)
        assert lazy.occurs_at(seq, 0) == strict.occurs_at(seq, 0) is True
