"""Tests for granularity clocks and clock-constraint formulas."""

import pytest

from repro.automata import And, Atom, Clock, Not, Or, TrueConstraint, within
from repro.granularity import day, hour
from repro.granularity.business import BusinessDayType
from repro.granularity.gregorian import SECONDS_PER_DAY, SECONDS_PER_HOUR


class TestClock:
    def test_value_is_tick_distance(self):
        clock = Clock("x", hour())
        assert clock.value(0, 0) == 0
        assert clock.value(0, 2 * SECONDS_PER_HOUR) == 2
        assert clock.value(SECONDS_PER_HOUR - 1, SECONDS_PER_HOUR) == 1

    def test_value_undefined_in_gap(self):
        clock = Clock("x", BusinessDayType())
        saturday = 5 * SECONDS_PER_DAY
        assert clock.value(0, saturday) is None
        assert clock.value(saturday, 7 * SECONDS_PER_DAY) is None

    def test_str(self):
        assert str(Clock("x", day())) == "x[day]"


class TestAtoms:
    def test_le(self):
        atom = Atom("x", "le", 5)
        assert atom.evaluate({"x": 5})
        assert atom.evaluate({"x": 0})
        assert not atom.evaluate({"x": 6})

    def test_ge(self):
        atom = Atom("x", "ge", 2)
        assert atom.evaluate({"x": 2})
        assert not atom.evaluate({"x": 1})

    def test_undefined_value_falsifies(self):
        assert not Atom("x", "le", 5).evaluate({"x": None})
        assert not Atom("x", "ge", 0).evaluate({"x": None})
        assert not Atom("x", "le", 5).evaluate({})

    def test_invalid_op_rejected(self):
        with pytest.raises(ValueError):
            Atom("x", "eq", 5)

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            Atom("x", "le", -1)

    def test_clocks(self):
        assert Atom("x", "le", 5).clocks() == frozenset(["x"])


class TestCombinations:
    def test_within(self):
        guard = within("x", 2, 4)
        assert not guard.evaluate({"x": 1})
        assert guard.evaluate({"x": 2})
        assert guard.evaluate({"x": 4})
        assert not guard.evaluate({"x": 5})
        assert not guard.evaluate({"x": None})

    def test_and_or(self):
        formula = Atom("x", "le", 3) & Atom("y", "ge", 1)
        assert formula.evaluate({"x": 3, "y": 1})
        assert not formula.evaluate({"x": 4, "y": 1})
        either = Atom("x", "le", 3) | Atom("y", "ge", 1)
        assert either.evaluate({"x": 9, "y": 2})
        assert not either.evaluate({"x": 9, "y": 0})

    def test_not(self):
        formula = ~Atom("x", "le", 3)
        assert formula.evaluate({"x": 4})
        assert not formula.evaluate({"x": 3})
        # Documented three-valued subtlety: negation of an undefined
        # atom is true.
        assert formula.evaluate({"x": None})

    def test_true_constraint(self):
        assert TrueConstraint().evaluate({})
        assert TrueConstraint().clocks() == frozenset()

    def test_nested_clock_collection(self):
        formula = And(
            (Or((Atom("a", "le", 1), Atom("b", "ge", 2))), Not(Atom("c", "le", 3)))
        )
        assert formula.clocks() == frozenset(["a", "b", "c"])

    def test_str_forms(self):
        assert str(Atom("x", "le", 5)) == "x<=5"
        assert str(Atom("x", "ge", 5)) == "5<=x"
        assert "true" in str(TrueConstraint())
