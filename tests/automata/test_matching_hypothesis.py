"""Hypothesis-driven TAG-vs-reference equivalence on arbitrary DAGs.

The strongest form of the Theorem 3 validation: hypothesis generates
the event structures AND the sequences, shrinking any disagreement to
a minimal counterexample.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata import TagMatcher, build_tag
from repro.automata.structmatch import find_occurrence
from repro.constraints import ComplexEventType
from repro.mining.events import Event, EventSequence

from ..strategies import rooted_dags


@st.composite
def matching_cases(draw):
    structure = draw(rooted_dags(max_nodes=6))
    type_count = draw(st.integers(min_value=1, max_value=3))
    types = ["e%d" % i for i in range(type_count)]
    assignment = {
        variable: draw(st.sampled_from(types))
        for variable in structure.variables
    }
    # Strictly increasing timestamps on a 15-minute grid (ties are the
    # documented out-of-scope case for linear-scan matching).
    grid = draw(
        st.lists(
            st.integers(min_value=0, max_value=20 * 96),  # 20 days of slots
            min_size=4,
            max_size=30,
            unique=True,
        )
    )
    events = [
        Event(draw(st.sampled_from(types)), slot * 900)
        for slot in sorted(grid)
    ]
    return ComplexEventType(structure, assignment), EventSequence(events)


class TestHypothesisEquivalence:
    @given(case=matching_cases())
    @settings(max_examples=60, deadline=None)
    def test_tag_equals_reference_everywhere(self, case):
        cet, sequence = case
        matcher = TagMatcher(build_tag(cet))
        for index in range(len(sequence)):
            tag_says = matcher.occurs_at(sequence, index)
            ref_says = find_occurrence(cet, sequence, index) is not None
            assert tag_says == ref_says, (
                "index %d: tag=%s ref=%s on %r / %r"
                % (index, tag_says, ref_says, cet, list(sequence))
            )

    @given(case=matching_cases())
    @settings(max_examples=40, deadline=None)
    def test_reported_bindings_always_valid(self, case):
        cet, sequence = case
        matcher = TagMatcher(build_tag(cet))
        for index in range(len(sequence)):
            result = matcher.match_from(sequence, index)
            if result.matched:
                assert cet.structure.is_satisfied_by(result.bindings)
                # The root binding is the anchored event.
                root = cet.structure.root
                assert result.bindings[root] == sequence[index].time
