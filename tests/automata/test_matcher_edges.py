"""Edge-case and failure-injection tests for the TAG matcher."""

import pytest

from repro.automata import TagMatcher, build_tag
from repro.constraints import TCG, ComplexEventType, EventStructure
from repro.granularity.gregorian import SECONDS_PER_DAY, SECONDS_PER_HOUR
from repro.mining.events import Event, EventSequence

D, H = SECONDS_PER_DAY, SECONDS_PER_HOUR


@pytest.fixture
def loose_cet(system):
    """A very permissive pattern that keeps many configurations alive."""
    week = system.get("week")
    structure = EventStructure(
        ["A", "B", "C"],
        {
            ("A", "B"): [TCG(0, 50, week)],
            ("B", "C"): [TCG(0, 50, week)],
        },
    )
    return ComplexEventType(structure, {"A": "x", "B": "x", "C": "missing"})


class TestConfigurationCap:
    def test_cap_raises(self, loose_cet):
        # Many 'x' events, huge windows, and a final type that never
        # arrives: the configuration set grows linearly until the cap.
        sequence = EventSequence(
            [("x", i * 3600) for i in range(200)]
        )
        matcher = TagMatcher(build_tag(loose_cet), max_configurations=20)
        with pytest.raises(RuntimeError):
            matcher.match_from(sequence, 0)

    def test_dedup_bounds_tight_patterns(self, system):
        """With tight constraints, configs die fast and the default cap
        is never approached."""
        hour = system.get("hour")
        structure = EventStructure(
            ["A", "B"], {("A", "B"): [TCG(0, 1, hour)]}
        )
        cet = ComplexEventType(structure, {"A": "x", "B": "x"})
        sequence = EventSequence([("x", i * 600) for i in range(500)])
        matcher = TagMatcher(build_tag(cet))
        result = matcher.match_from(sequence, 0)
        assert result.matched
        assert result.peak_configurations <= 10


class TestDegenerateInputs:
    def test_empty_alphabet_overlap(self, system):
        hour = system.get("hour")
        structure = EventStructure(
            ["A", "B"], {("A", "B"): [TCG(0, 1, hour)]}
        )
        cet = ComplexEventType(structure, {"A": "a", "B": "b"})
        matcher = TagMatcher(build_tag(cet))
        sequence = EventSequence([("z", 0), ("z", 10)])
        assert matcher.count_occurrences(sequence) == 0
        assert not matcher.accepts(sequence)

    def test_anchor_on_last_event(self, system):
        hour = system.get("hour")
        structure = EventStructure(
            ["A", "B"], {("A", "B"): [TCG(0, 1, hour)]}
        )
        cet = ComplexEventType(structure, {"A": "a", "B": "b"})
        matcher = TagMatcher(build_tag(cet))
        sequence = EventSequence([("b", 0), ("a", 10)])
        assert not matcher.occurs_at(sequence, 1)  # nothing after it

    def test_zero_distance_same_second(self, system):
        """TCGs allow equal timestamps; two events at the same second
        in sequence order can both bind."""
        hour = system.get("hour")
        structure = EventStructure(
            ["A", "B"], {("A", "B"): [TCG(0, 0, hour)]}
        )
        cet = ComplexEventType(structure, {"A": "a", "B": "b"})
        matcher = TagMatcher(build_tag(cet))
        sequence = EventSequence([("a", 500), ("b", 500)])
        assert matcher.occurs_at(sequence, 0)

    def test_root_type_reused_downstream(self, system):
        """phi maps the root's type to another variable too: later root
        -typed events must be usable for that variable."""
        hour = system.get("hour")
        structure = EventStructure(
            ["A", "B"], {("A", "B"): [TCG(1, 2, hour)]}
        )
        cet = ComplexEventType(structure, {"A": "tick", "B": "tick"})
        matcher = TagMatcher(build_tag(cet))
        sequence = EventSequence([("tick", 0), ("tick", 2 * H)])
        assert matcher.occurs_at(sequence, 0)
        assert not matcher.occurs_at(sequence, 1)  # no later tick
