"""Heavier randomised equivalence fuzzing: TAG vs reference matcher.

Wider structure shapes (diamonds with tails, double diamonds, deep
chains), heavy event-type collisions, and longer sequences than the
basic equivalence tests - the strongest evidence that the synchronised
cross-product construction recognises exactly the paper's binding
semantics.
"""

import random

import pytest

from repro.automata import TagMatcher, build_tag
from repro.automata.structmatch import find_occurrence
from repro.constraints import TCG, ComplexEventType, EventStructure
from repro.granularity.gregorian import SECONDS_PER_DAY
from repro.mining.events import Event, EventSequence

SHAPES = {
    "deep-chain": [
        ("V0", "V1"),
        ("V1", "V2"),
        ("V2", "V3"),
        ("V3", "V4"),
        ("V4", "V5"),
    ],
    "diamond-tail": [
        ("V0", "V1"),
        ("V0", "V2"),
        ("V1", "V3"),
        ("V2", "V3"),
        ("V3", "V4"),
    ],
    "double-diamond": [
        ("V0", "V1"),
        ("V0", "V2"),
        ("V1", "V3"),
        ("V2", "V3"),
        ("V3", "V4"),
        ("V3", "V5"),
        ("V4", "V6"),
        ("V5", "V6"),
    ],
    "wide-fan": [
        ("V0", "V1"),
        ("V0", "V2"),
        ("V0", "V3"),
        ("V1", "V4"),
        ("V2", "V4"),
        ("V3", "V4"),
    ],
    "skip-edges": [
        ("V0", "V1"),
        ("V1", "V2"),
        ("V0", "V2"),
        ("V2", "V3"),
        ("V0", "V3"),
    ],
}

LABELS = ["hour", "day", "week", "b-day"]


def build_random_case(shape, seed, system):
    rng = random.Random((hash(shape) & 0xFFFF) * 1000 + seed)
    arcs = SHAPES[shape]
    names = sorted({v for arc in arcs for v in arc})
    constraints = {}
    for arc in arcs:
        m = rng.randrange(0, 3)
        constraints[arc] = [
            TCG(m, m + rng.randrange(0, 5), system.get(rng.choice(LABELS)))
        ]
    structure = EventStructure(names, constraints)
    types = ["e%d" % i for i in range(rng.choice([2, 3]))]
    assignment = {v: rng.choice(types) for v in names}
    cet = ComplexEventType(structure, assignment)
    # Strictly increasing timestamps (tie behaviour is documented as
    # out of scope for the linear-scan matcher).
    times = sorted(rng.sample(range(0, 28 * SECONDS_PER_DAY, 1800), 60))
    sequence = EventSequence(Event(rng.choice(types), t) for t in times)
    return cet, sequence


@pytest.mark.parametrize("shape", sorted(SHAPES))
@pytest.mark.parametrize("seed", range(4))
def test_fuzz_equivalence(system, shape, seed):
    cet, sequence = build_random_case(shape, seed, system)
    matcher = TagMatcher(build_tag(cet))
    disagreements = []
    for index in range(len(sequence)):
        tag_says = matcher.occurs_at(sequence, index)
        ref_says = find_occurrence(cet, sequence, index) is not None
        if tag_says != ref_says:
            disagreements.append((index, tag_says, ref_says))
    assert not disagreements, (
        "shape=%s seed=%d: %r on %r" % (shape, seed, disagreements[:3], cet)
    )


@pytest.mark.parametrize("seed", range(3))
def test_fuzz_bindings_are_valid(system, seed):
    """Any bindings the TAG reports must actually satisfy the structure."""
    cet, sequence = build_random_case("diamond-tail", 100 + seed, system)
    matcher = TagMatcher(build_tag(cet))
    checked = 0
    for index in range(len(sequence)):
        result = matcher.match_from(sequence, index)
        if result.matched:
            assert cet.structure.is_satisfied_by(result.bindings)
            checked += 1
    # Not every random case matches; the assertion above is the point.
    assert checked >= 0
