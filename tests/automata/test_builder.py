"""Tests for TAG construction from complex event types (Theorem 3)."""

import pytest

from repro.automata import build_tag
from repro.constraints import TCG, ComplexEventType, EventStructure
from repro.granularity import day, hour


@pytest.fixture
def example1_cet(figure_1a):
    return ComplexEventType(
        figure_1a,
        {
            "X0": "IBM-rise",
            "X1": "IBM-earnings-report",
            "X2": "HP-rise",
            "X3": "IBM-fall",
        },
    )


class TestExample1Construction:
    def test_chain_decomposition(self, example1_cet):
        build = build_tag(example1_cet)
        assert len(build.chains) == 2
        for chain in build.chains:
            assert chain[0] == "X0"
            assert chain[-1] == "X3"

    def test_state_count_matches_figure2(self, example1_cet):
        """Figure 2's product automaton has 6 reachable states
        (S0S0, S1S1, S1S2, S2S1, S2S2, S3S3)."""
        build = build_tag(example1_cet)
        assert len(build.tag.states) == 6

    def test_clocks_are_chain_local(self, example1_cet):
        build = build_tag(example1_cet)
        labels = sorted(build.tag.clocks)
        # One chain carries b-day+week, the other b-day+hour.
        granularities = sorted(
            name.split(":", 1)[1] for name in labels
        )
        assert granularities == ["b-day", "b-day", "hour", "week"]

    def test_every_state_has_skip_loop(self, example1_cet):
        build = build_tag(example1_cet)
        for state in build.tag.states:
            loops = [
                t
                for t in build.tag.transitions_from(state)
                if t.symbol == "*" and t.target == state
            ]
            assert len(loops) == 1

    def test_symbols_are_event_types(self, example1_cet):
        build = build_tag(example1_cet)
        symbols = {
            t.symbol for t in build.tag.transitions if t.symbol != "*"
        }
        assert symbols == {
            "IBM-rise",
            "IBM-earnings-report",
            "HP-rise",
            "IBM-fall",
        }

    def test_shared_variables_advance_together(self, example1_cet):
        """The root (and the shared leaf X3) must advance every chain
        containing them simultaneously."""
        build = build_tag(example1_cet)
        root_transitions = [
            t for t in build.tag.transitions if t.variables == ("X0",)
        ]
        assert len(root_transitions) == 1
        (root_t,) = root_transitions
        assert root_t.source == (0, 0)
        assert root_t.target == (1, 1)
        # Root transition resets every clock.
        assert root_t.resets == frozenset(build.tag.clocks)

    def test_accepting_state_is_all_chains_done(self, example1_cet):
        build = build_tag(example1_cet)
        (accepting,) = build.tag.accepting
        assert accepting == tuple(len(c) for c in build.chains)

    def test_root_symbol(self, example1_cet):
        assert build_tag(example1_cet).root_symbol == "IBM-rise"


class TestDegenerateShapes:
    def test_single_variable(self):
        structure = EventStructure(["A"], {})
        cet = ComplexEventType(structure, {"A": "ping"})
        build = build_tag(cet)
        assert len(build.tag.states) == 2
        assert build.tag.accepting == frozenset([(1,)])

    def test_pure_chain(self):
        structure = EventStructure(
            ["A", "B", "C"],
            {
                ("A", "B"): [TCG(0, 1, day())],
                ("B", "C"): [TCG(0, 2, hour())],
            },
        )
        cet = ComplexEventType(structure, {"A": "a", "B": "b", "C": "c"})
        build = build_tag(cet)
        assert len(build.chains) == 1
        assert len(build.tag.states) == 4  # positions 0..3

    def test_duplicate_event_types_allowed(self):
        """phi may map several variables to the same type."""
        structure = EventStructure(
            ["A", "B"], {("A", "B"): [TCG(0, 1, day())]}
        )
        cet = ComplexEventType(structure, {"A": "tick", "B": "tick"})
        build = build_tag(cet)
        tick_transitions = [
            t for t in build.tag.transitions if t.symbol == "tick"
        ]
        assert len(tick_transitions) == 2  # one per variable

    def test_guard_reflects_tcgs(self):
        structure = EventStructure(
            ["A", "B"], {("A", "B"): [TCG(2, 4, hour())]}
        )
        cet = ComplexEventType(structure, {"A": "a", "B": "b"})
        build = build_tag(cet)
        (b_transition,) = [
            t for t in build.tag.transitions if t.variables == ("B",)
        ]
        clock = next(iter(build.tag.clocks))
        assert b_transition.guard.evaluate({clock: 2})
        assert b_transition.guard.evaluate({clock: 4})
        assert not b_transition.guard.evaluate({clock: 1})
        assert not b_transition.guard.evaluate({clock: 5})
