"""Property tests: dense TAG compilation replays the interpreter.

``compile_dense()`` renumbers states/symbols/clocks into transition
tables; these tests hold the compiled automaton to *state-trajectory*
equality with the interpreted :meth:`repro.automata.tag.TAG.step` -
every frontier along a run must match configuration for configuration
(which catches off-by-one guard evaluation and wrong reset wiring, not
just final match verdicts).  Coverage: the stock paper patterns, 200
builder-generated TAGs, and 200 raw random TAGs whose guards use the
full Phi(C) closure (Or / Not / nested And) that the builder never
emits.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata import TAG, TagMatcher, Transition, build_tag
from repro.automata.clocks import (
    And,
    Atom,
    Clock,
    Not,
    Or,
    TrueConstraint,
    evaluate_clocks,
)
from repro.automata.dense import DenseGuard, DenseTAG, compile_dense
from repro.constraints import TCG, ComplexEventType, EventStructure
from repro.granularity import standard_system

from ..strategies import rooted_dags

SYSTEM = standard_system()

RELAXED = settings(max_examples=200, deadline=None)


# ----------------------------------------------------------------------
# Trajectory replay
# ----------------------------------------------------------------------
def _to_dense_config(dense: DenseTAG, config):
    return (
        dense.state_index[config.state],
        tuple(
            config.reset_times[name] for name in dense.clock_names
        ),
    )


def _replay_trajectories(tag: TAG, word, strict: bool):
    """Step the interpreter and the table side by side over a timed
    word, comparing every frontier (deduped the matcher's way)."""
    dense = compile_dense(tag)
    start_time = word[0][1] if word else 0
    frontier = [tag.initial_configuration(start_time)]
    dense_frontier = [
        _to_dense_config(dense, config) for config in frontier
    ]
    for symbol, timestamp in word:
        successors = []
        seen = set()
        for config in frontier:
            for successor in tag.step(config, symbol, timestamp, strict):
                key = successor.frozen_key()
                if key not in seen:
                    seen.add(key)
                    successors.append(successor)
        dense_successors = []
        dense_seen = set()
        for state, resets in dense_frontier:
            for successor in dense.step(
                state, resets, symbol, timestamp, strict
            ):
                if successor not in dense_seen:
                    dense_seen.add(successor)
                    dense_successors.append(successor)
        expected = [
            _to_dense_config(dense, config) for config in successors
        ]
        assert dense_successors == expected, (
            "frontier diverged on (%s, %d)" % (symbol, timestamp)
        )
        # Acceptance must agree configuration for configuration.
        assert [
            config.state in tag.accepting for config in successors
        ] == [
            state in dense.accepting for state, _ in dense_successors
        ]
        frontier = successors
        dense_frontier = dense_successors
        if not frontier:
            break


@st.composite
def timed_words(draw, symbols, max_len=12, max_step=180000):
    length = draw(st.integers(0, max_len))
    time = draw(st.integers(0, 86400))
    word = []
    for _ in range(length):
        time += draw(st.integers(0, max_step))
        word.append((draw(st.sampled_from(symbols)), time))
    return word


# ----------------------------------------------------------------------
# Stock paper patterns
# ----------------------------------------------------------------------
def _stock_tags():
    bday = SYSTEM.get("b-day")
    hour = SYSTEM.get("hour")
    week = SYSTEM.get("week")
    month = SYSTEM.get("month")
    year = SYSTEM.get("year")
    figure_1a = EventStructure(
        ["X0", "X1", "X2", "X3"],
        {
            ("X0", "X1"): [TCG(1, 1, bday)],
            ("X1", "X3"): [TCG(0, 1, week)],
            ("X0", "X2"): [TCG(0, 5, bday)],
            ("X2", "X3"): [TCG(0, 8, hour)],
        },
    )
    figure_1b = EventStructure(
        ["X0", "X1", "X2", "X3"],
        {
            ("X0", "X1"): [TCG(11, 11, month), TCG(0, 0, year)],
            ("X0", "X2"): [TCG(0, 12, month)],
            ("X2", "X3"): [TCG(11, 11, month), TCG(0, 0, year)],
        },
    )
    chain = EventStructure(
        ["X0", "X1"], {("X0", "X1"): [TCG(0, 3, hour)]}
    )
    cases = []
    for name, structure, types in [
        ("figure-1a", figure_1a, ["a", "b", "c", "d"]),
        ("figure-1b", figure_1b, ["a", "b", "a", "b"]),
        ("chain", chain, ["a", "b"]),
    ]:
        assignment = dict(zip(structure.variables, types))
        cet = ComplexEventType(structure, assignment)
        cases.append((name, build_tag(cet, system=SYSTEM).tag))
    return cases


STOCK = _stock_tags()


class TestStockPatterns:
    @pytest.mark.parametrize(
        "name,tag", STOCK, ids=[name for name, _ in STOCK]
    )
    @given(data=st.data())
    @settings(max_examples=80, deadline=None)
    def test_stock_trajectories_equal(self, name, tag, data):
        symbols = sorted(tag.alphabet) + ["noise"]
        word = data.draw(timed_words(symbols))
        strict = data.draw(st.booleans())
        _replay_trajectories(tag, word, strict)

    @pytest.mark.parametrize(
        "name,tag", STOCK, ids=[name for name, _ in STOCK]
    )
    def test_dense_structure_is_bijective(self, name, tag):
        dense = compile_dense(tag)
        assert len(dense.states) == len(tag.states)
        assert set(dense.states) == set(tag.states)
        assert set(dense.symbols) == set(tag.alphabet)
        assert set(dense.clock_names) == set(tag.clocks)
        assert sum(len(ts) for ts in dense.by_source) == len(
            tag.transitions
        )
        # Per-state transition order preserved exactly.
        for state_id, state in enumerate(dense.states):
            assert [
                dense.states[t.target] for t in dense.by_source[state_id]
            ] == [t.target for t in tag.transitions_from(state)]


# ----------------------------------------------------------------------
# Builder-generated TAGs
# ----------------------------------------------------------------------
@st.composite
def built_tags(draw):
    structure = draw(rooted_dags(max_nodes=5))
    types = ["e%d" % i for i in range(draw(st.integers(1, 3)))]
    assignment = {
        variable: draw(st.sampled_from(types))
        for variable in structure.variables
    }
    cet = ComplexEventType(structure, assignment)
    return build_tag(cet, system=SYSTEM).tag


class TestGeneratedTags:
    @given(data=st.data())
    @RELAXED
    def test_built_tag_trajectories_equal(self, data):
        tag = data.draw(built_tags())
        symbols = sorted(tag.alphabet) + ["noise"]
        word = data.draw(timed_words(symbols))
        strict = data.draw(st.booleans())
        _replay_trajectories(tag, word, strict)


# ----------------------------------------------------------------------
# Raw random TAGs: the full guard closure
# ----------------------------------------------------------------------
@st.composite
def guards(draw, clock_names, depth=2):
    if depth == 0 or draw(st.integers(0, 3)) == 0:
        if draw(st.booleans()):
            return TrueConstraint()
        return Atom(
            draw(st.sampled_from(clock_names)),
            draw(st.sampled_from(["le", "ge"])),
            draw(st.integers(0, 6)),
        )
    kind = draw(st.sampled_from(["and", "or", "not"]))
    if kind == "not":
        return Not(draw(guards(clock_names, depth - 1)))
    parts = tuple(
        draw(guards(clock_names, depth - 1))
        for _ in range(draw(st.integers(1, 3)))
    )
    return And(parts) if kind == "and" else Or(parts)


@st.composite
def raw_tags(draw):
    granularities = [
        SYSTEM.get("hour"),
        SYSTEM.get("day"),
        SYSTEM.get("b-day"),
        SYSTEM.get("week"),
    ]
    n_states = draw(st.integers(1, 4))
    states = ["s%d" % i for i in range(n_states)]
    symbols = ["a", "b", "c"][: draw(st.integers(1, 3))]
    clock_names = ["c%d" % i for i in range(draw(st.integers(1, 3)))]
    clocks = [
        Clock(name, draw(st.sampled_from(granularities)))
        for name in clock_names
    ]
    transitions = []
    for _ in range(draw(st.integers(0, 8))):
        transitions.append(
            Transition(
                source=draw(st.sampled_from(states)),
                target=draw(st.sampled_from(states)),
                symbol=draw(st.sampled_from(symbols + ["*"])),
                resets=frozenset(
                    draw(
                        st.lists(
                            st.sampled_from(clock_names),
                            max_size=len(clock_names),
                            unique=True,
                        )
                    )
                ),
                guard=draw(guards(clock_names)),
            )
        )
    accepting = draw(
        st.lists(st.sampled_from(states), max_size=n_states, unique=True)
    )
    return TAG(
        alphabet=symbols,
        states=states,
        start_states=[states[0]],
        clocks=clocks,
        transitions=transitions,
        accepting=accepting,
    )


class TestRawTags:
    @given(data=st.data())
    @RELAXED
    def test_raw_tag_trajectories_equal(self, data):
        tag = data.draw(raw_tags())
        symbols = sorted(tag.alphabet) + ["noise"]
        word = data.draw(timed_words(symbols))
        strict = data.draw(st.booleans())
        _replay_trajectories(tag, word, strict)

    @given(data=st.data())
    @RELAXED
    def test_dense_guard_equals_object_guard(self, data):
        """DenseGuard (flat atoms or node tree) equals the object
        guard on every valuation, including undefined clock values."""
        clock_names = ["c0", "c1", "c2"]
        guard = data.draw(guards(clock_names, depth=3))
        clock_index = {name: i for i, name in enumerate(clock_names)}
        dense_guard = DenseGuard(guard, clock_index)
        values = [
            data.draw(
                st.one_of(st.none(), st.integers(0, 8))
            )
            for _ in clock_names
        ]
        mapping = dict(zip(clock_names, values))
        assert dense_guard.evaluate(values) == guard.evaluate(mapping)


class TestCompileDenseEntryPoint:
    def test_tag_method_matches_function(self):
        tag = STOCK[0][1]
        via_method = tag.compile_dense()
        assert isinstance(via_method, DenseTAG)
        assert via_method.states == compile_dense(tag).states
