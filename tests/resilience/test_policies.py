"""Anchor-overflow degradation policies."""

import pytest

from repro.automata import StreamingMatcher, build_tag
from repro.granularity.gregorian import SECONDS_PER_HOUR
from repro.resilience import apply_overflow, normalize_overflow_policy

H = SECONDS_PER_HOUR


class TestApplyOverflow:
    def test_under_cap_is_identity(self):
        anchors = [1, 2, 3]
        kept, shed = apply_overflow(anchors, 5, "shed-oldest")
        assert kept == [1, 2, 3] and shed == 0

    def test_shed_oldest_keeps_tail(self):
        kept, shed = apply_overflow(list(range(10)), 4, "shed-oldest")
        assert kept == [6, 7, 8, 9] and shed == 6

    def test_shed_newest_keeps_head(self):
        kept, shed = apply_overflow(list(range(10)), 4, "shed-newest")
        assert kept == [0, 1, 2, 3] and shed == 6

    def test_sample_is_evenly_spaced_and_deterministic(self):
        kept, shed = apply_overflow(list(range(10)), 4, "sample")
        assert kept == [0, 2, 5, 7] and shed == 6
        again, _ = apply_overflow(list(range(10)), 4, "sample")
        assert again == kept

    def test_raise_policy_raises(self):
        with pytest.raises(RuntimeError):
            apply_overflow(list(range(3)), 2, "raise")

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            normalize_overflow_policy("drop-everything")


class TestMatcherDegradation:
    def _flood(self, chain_cet, policy, cap=3, roots=10):
        matcher = StreamingMatcher(
            build_tag(chain_cet),
            max_live_anchors=cap,
            overflow_policy=policy,
        )
        for i in range(roots):
            matcher.feed("a", i)
        return matcher

    def test_raise_is_still_the_default(self, chain_cet):
        matcher = StreamingMatcher(build_tag(chain_cet), max_live_anchors=2)
        matcher.feed("a", 0)
        matcher.feed("a", 1)
        with pytest.raises(RuntimeError):
            matcher.feed("a", 2)

    def test_shed_oldest_keeps_newest_roots(self, chain_cet):
        matcher = self._flood(chain_cet, "shed-oldest")
        assert matcher.live_anchors == 3
        assert matcher.anchors_shed == 7
        matcher.feed("b", H)
        detections = matcher.feed("c", 2 * H)
        assert {d.anchor_time for d in detections} == {7, 8, 9}

    def test_shed_newest_keeps_oldest_roots(self, chain_cet):
        matcher = self._flood(chain_cet, "shed-newest")
        assert matcher.live_anchors == 3
        assert matcher.anchors_shed == 7
        matcher.feed("b", H)
        detections = matcher.feed("c", 2 * H)
        assert {d.anchor_time for d in detections} == {0, 1, 2}

    def test_sample_never_raises_and_is_deterministic(self, chain_cet):
        first = self._flood(chain_cet, "sample")
        second = self._flood(chain_cet, "sample")
        assert first.live_anchors == 3
        assert first.anchors_shed == 7
        first.feed("b", H)
        second.feed("b", H)
        anchors_a = {d.anchor_time for d in first.feed("c", 2 * H)}
        anchors_b = {d.anchor_time for d in second.feed("c", 2 * H)}
        assert anchors_a == anchors_b
        assert len(anchors_a) == 3

    def test_shed_counter_in_stats(self, chain_cet):
        matcher = self._flood(chain_cet, "shed-oldest")
        assert matcher.stats()["anchors_shed"] == 7

    def test_unknown_policy_rejected_at_construction(self, chain_cet):
        with pytest.raises(ValueError):
            StreamingMatcher(build_tag(chain_cet), overflow_policy="bogus")
