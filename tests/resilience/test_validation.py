"""Edge validation: one shared error type across matcher and store."""

import pytest

from repro.automata import StreamingMatcher, build_tag
from repro.granularity.gregorian import SECONDS_PER_HOUR
from repro.mining.events import Event
from repro.resilience import (
    EventValidationError,
    StreamFeedError,
    describe_invalid,
    validate_event,
)
from repro.store import EventStore

H = SECONDS_PER_HOUR

BAD_EVENTS = [
    ("", 10),
    (None, 10),
    (42, 10),
    ("ok", -1),
    ("ok", 1.5),
    ("ok", "10"),
    ("ok", True),
    ("ok", None),
]


class TestValidateEvent:
    @pytest.mark.parametrize("etype,time", BAD_EVENTS)
    def test_rejects(self, etype, time):
        with pytest.raises(EventValidationError):
            validate_event(etype, time)
        assert describe_invalid(etype, time) is not None

    def test_accepts_valid(self):
        validate_event("x", 0)
        validate_event("x", 10**12)
        assert describe_invalid("x", 0) is None

    def test_error_carries_offending_values(self):
        with pytest.raises(EventValidationError) as excinfo:
            validate_event("", 7)
        assert excinfo.value.etype == ""
        assert excinfo.value.time == 7

    def test_is_a_value_error(self):
        assert issubclass(EventValidationError, ValueError)


class TestMatcherEdge:
    @pytest.mark.parametrize("etype,time", BAD_EVENTS)
    def test_feed_rejects_with_shared_type(self, chain_cet, etype, time):
        matcher = StreamingMatcher(build_tag(chain_cet))
        with pytest.raises(EventValidationError):
            matcher.feed(etype, time)
        # State untouched: nothing counted, no anchors opened.
        assert matcher.events_received == 0
        assert matcher.live_anchors == 0

    def test_rejected_even_with_reorder_buffer(self, chain_cet):
        matcher = StreamingMatcher(build_tag(chain_cet), max_lateness=H)
        with pytest.raises(EventValidationError):
            matcher.feed("", 5)
        assert matcher.pending_reordered == 0


class TestStoreEdge:
    @pytest.mark.parametrize("etype,time", BAD_EVENTS)
    def test_extend_rejects_with_shared_type(self, etype, time):
        store = EventStore()
        with pytest.raises(EventValidationError):
            store.extend([("good", 1), (etype, time)])
        assert len(store) == 1  # events before the bad one stay

    def test_append_rejects_too(self):
        with pytest.raises(EventValidationError):
            EventStore().append("", 3)


class TestFeedSequenceProvenance:
    def test_wraps_validation_failure_with_position(self, chain_cet):
        matcher = StreamingMatcher(build_tag(chain_cet))
        events = [Event("a", 0), Event("b", H), ("", 2 * H)]
        with pytest.raises(StreamFeedError) as excinfo:
            matcher.feed_sequence(events)
        error = excinfo.value
        assert error.index == 2
        assert error.etype == ""
        assert error.time == 2 * H
        assert isinstance(error.__cause__, EventValidationError)
        assert "#2" in str(error)

    def test_wraps_out_of_order_failure(self, chain_cet):
        matcher = StreamingMatcher(build_tag(chain_cet))
        with pytest.raises(StreamFeedError) as excinfo:
            matcher.feed_sequence([("a", 100), ("b", 50)])
        assert excinfo.value.index == 1
        assert excinfo.value.time == 50
        assert isinstance(excinfo.value.__cause__, ValueError)

    def test_wraps_overflow_failure(self, chain_cet):
        matcher = StreamingMatcher(build_tag(chain_cet), max_live_anchors=1)
        with pytest.raises(StreamFeedError) as excinfo:
            matcher.feed_sequence([("a", 0), ("a", 1)])
        assert isinstance(excinfo.value.__cause__, RuntimeError)

    def test_is_a_value_error(self):
        assert issubclass(StreamFeedError, ValueError)

    def test_success_path_unchanged(self, chain_cet):
        matcher = StreamingMatcher(build_tag(chain_cet))
        detections = matcher.feed_sequence(
            [Event("a", 0), Event("b", H), Event("c", 2 * H)]
        )
        assert len(detections) == 1
