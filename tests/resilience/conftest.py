"""Shared fixtures for the resilience-layer tests."""

import pytest

from repro.constraints import TCG, ComplexEventType, EventStructure


@pytest.fixture
def chain_cet(system):
    """a -> b -> c, each hop within [0, 2] hours (the streaming-test
    workhorse pattern)."""
    hour = system.get("hour")
    structure = EventStructure(
        ["A", "B", "C"],
        {
            ("A", "B"): [TCG(0, 2, hour)],
            ("B", "C"): [TCG(0, 2, hour)],
        },
    )
    return ComplexEventType(structure, {"A": "a", "B": "b", "C": "c"})
