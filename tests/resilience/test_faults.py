"""The deterministic fault-injection harness itself."""

import pytest

from repro.resilience import FaultInjector, describe_invalid


def grid_stream(n=200, step=60):
    types = ["a", "b", "c", "n"]
    return [(types[i % 4], i * step) for i in range(n)]


class TestDeterminism:
    def test_same_seed_same_output(self):
        kwargs = dict(
            drop_rate=0.1,
            duplicate_rate=0.1,
            delay_rate=0.3,
            max_delay=600,
            corrupt_rate=0.1,
        )
        first = FaultInjector(42, **kwargs).inject(grid_stream())
        second = FaultInjector(42, **kwargs).inject(grid_stream())
        assert first.stream == second.stream
        assert first.clean == second.clean
        assert first.stats == second.stats

    def test_different_seeds_differ(self):
        kwargs = dict(drop_rate=0.2, delay_rate=0.3, max_delay=600)
        first = FaultInjector(1, **kwargs).inject(grid_stream())
        second = FaultInjector(2, **kwargs).inject(grid_stream())
        assert first.stream != second.stream


class TestBookkeeping:
    def test_stats_add_up(self):
        result = FaultInjector(
            5, drop_rate=0.2, duplicate_rate=0.2, corrupt_rate=0.2
        ).inject(grid_stream())
        stats = result.stats
        assert stats["total"] == 200
        assert stats["emitted"] == (
            stats["total"] - stats["dropped"] + stats["duplicated"]
        )
        assert len(result.stream) == stats["emitted"]
        assert len(result.clean) == stats["emitted"] - stats["corrupted"]

    def test_no_faults_is_identity(self):
        stream = grid_stream()
        result = FaultInjector(0).inject(stream)
        assert result.stream == stream
        assert result.clean == stream

    def test_clean_reference_is_time_sorted_survivors(self):
        result = FaultInjector(
            9, drop_rate=0.1, delay_rate=0.5, max_delay=900
        ).inject(grid_stream())
        stamps = [time for _, time in result.clean]
        assert stamps == sorted(stamps)

    def test_corrupt_records_fail_validation(self):
        result = FaultInjector(3, corrupt_rate=1.0).inject(grid_stream(50))
        assert result.stats["corrupted"] == 50
        for etype, time in result.stream:
            assert describe_invalid(etype, time) is not None
        assert result.clean == []

    def test_delay_bounded_by_max_delay(self):
        """Arrival lateness of valid events never exceeds max_delay."""
        max_delay = 600
        result = FaultInjector(
            11, delay_rate=0.5, max_delay=max_delay
        ).inject(grid_stream())
        max_seen = None
        for etype, time in result.stream:
            if max_seen is not None:
                assert max_seen - time <= max_delay
            max_seen = time if max_seen is None else max(max_seen, time)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            FaultInjector(0, drop_rate=1.5)
        with pytest.raises(ValueError):
            FaultInjector(0, max_delay=-1)
