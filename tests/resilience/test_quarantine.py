"""Quarantine (dead-letter) channel for malformed JSONL/CSV records."""

import io
import json

import pytest

from repro.io.csvlog import CsvFormatError, read_events
from repro.resilience import Quarantine
from repro.store import EventStore


GOOD = {"id": 0, "etype": "login", "time": 100, "attributes": {}}


def jsonl(*lines):
    return io.StringIO("\n".join(lines) + "\n")


class TestLoadJsonl:
    def test_strict_load_still_aborts(self):
        source = jsonl(json.dumps(GOOD), "{broken json")
        with pytest.raises(ValueError):
            EventStore.load_jsonl(source)

    def test_quarantine_collects_and_continues(self):
        source = jsonl(
            json.dumps(GOOD),
            "{broken json",
            json.dumps({"etype": "x", "time": 5}),  # missing id
            json.dumps({"id": 2, "etype": "", "time": 5}),  # empty type
            json.dumps({"id": 3, "etype": "ok", "time": -4}),  # bad time
            json.dumps({"id": 4, "etype": "logout", "time": 900}),
        )
        quarantine = Quarantine(source="events.jsonl")
        store = EventStore.load_jsonl(source, quarantine=quarantine)
        assert [r.etype for r in store] == ["login", "logout"]
        assert store._next_id == 5
        assert len(quarantine) == 4
        assert [r.line for r in quarantine] == [2, 3, 4, 5]
        for record in quarantine:
            assert record.reason
            assert record.source == "events.jsonl"

    def test_quarantined_raw_is_the_line_text(self):
        source = jsonl(json.dumps(GOOD), "oops")
        quarantine = Quarantine()
        EventStore.load_jsonl(source, quarantine=quarantine)
        (record,) = quarantine.records
        assert record.raw == "oops"

    def test_all_bad_lines_yield_empty_store(self):
        source = jsonl("nope", "also nope")
        quarantine = Quarantine()
        store = EventStore.load_jsonl(source, quarantine=quarantine)
        assert len(store) == 0
        assert len(quarantine) == 2


class TestReadEventsCsv:
    TEXT = (
        "event_type,timestamp\n"
        "a,100\n"
        "only-one-column\n"
        "b,not-a-stamp\n"
        ",300\n"
        "c,2000-01-02\n"
    )

    def test_strict_read_still_aborts(self):
        with pytest.raises(CsvFormatError):
            read_events(io.StringIO(self.TEXT))

    def test_quarantine_collects_and_continues(self):
        quarantine = Quarantine(source="log.csv")
        sequence = read_events(io.StringIO(self.TEXT), quarantine=quarantine)
        assert [e.etype for e in sequence] == ["a", "c"]
        assert len(quarantine) == 3
        assert [r.line for r in quarantine] == [3, 4, 5]
        reasons = " | ".join(r.reason for r in quarantine)
        assert "expected" in reasons  # column-count failure
        assert "unparseable timestamp" in reasons
        assert "empty event type" in reasons

    def test_from_csv_passthrough(self):
        quarantine = Quarantine()
        store = EventStore.from_csv(io.StringIO(self.TEXT), quarantine)
        assert [r.etype for r in store] == ["a", "c"]
        assert len(quarantine) == 3


class TestQuarantineChannel:
    def test_summary_and_reasons_histogram(self):
        quarantine = Quarantine()
        assert quarantine.summary() == "quarantine empty"
        quarantine.add("bad timestamp", raw="x,-1", line=1)
        quarantine.add("bad timestamp", raw="y,-2", line=2)
        quarantine.add("empty event type", raw=",3", line=3)
        assert quarantine.reasons() == {
            "bad timestamp": 2,
            "empty event type": 1,
        }
        summary = quarantine.summary()
        assert "3 record(s)" in summary
        assert "2 x bad timestamp" in summary

    def test_save_jsonl_roundtrips_through_json(self, tmp_path):
        quarantine = Quarantine(source="feed")
        quarantine.add("broken", raw={"id": object()}, line=7)
        quarantine.add("broken", raw=["plain", 1], line=8)
        path = tmp_path / "dead-letters.jsonl"
        quarantine.save_jsonl(str(path))
        lines = [
            json.loads(line)
            for line in path.read_text().splitlines()
        ]
        assert len(lines) == 2
        assert lines[0]["line"] == 7
        assert lines[1]["raw"] == ["plain", 1]

    def test_boolean_protocol(self):
        quarantine = Quarantine()
        assert not quarantine
        quarantine.add("x")
        assert quarantine
