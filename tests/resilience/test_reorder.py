"""Reorder buffer: watermarks, lateness accounting, matcher wiring."""

import random

import pytest

from repro.automata import StreamingMatcher, build_tag
from repro.granularity.gregorian import SECONDS_PER_HOUR
from repro.resilience import ReorderBuffer

H = SECONDS_PER_HOUR


class TestBufferUnit:
    def test_in_order_passthrough(self):
        buffer = ReorderBuffer(max_lateness=0)
        assert buffer.push("a", 10) == [("a", 10)]
        assert buffer.push("b", 20) == [("b", 20)]
        assert buffer.late_dropped == 0
        assert buffer.pending == 0

    def test_jitter_reordered(self):
        buffer = ReorderBuffer(max_lateness=100)
        released = []
        for etype, time in [("a", 50), ("b", 140), ("c", 90), ("d", 200)]:
            released.extend(buffer.push(etype, time))
        released.extend(buffer.flush())
        assert released == [("a", 50), ("c", 90), ("b", 140), ("d", 200)]
        assert buffer.late_dropped == 0

    def test_release_order_is_nondecreasing(self):
        rng = random.Random(3)
        buffer = ReorderBuffer(max_lateness=500)
        times = [rng.randrange(0, 5000) for _ in range(300)]
        released = []
        for time in times:
            released.extend(buffer.push("x", time))
        released.extend(buffer.flush())
        stamps = [time for _, time in released]
        assert stamps == sorted(stamps)
        assert len(released) + buffer.late_dropped == len(times)

    def test_too_late_dropped_and_counted(self):
        buffer = ReorderBuffer(max_lateness=50)
        buffer.push("a", 1000)
        assert buffer.push("late", 900) == []
        assert buffer.late_dropped == 1
        assert buffer.last_late == ("late", 900)

    def test_event_at_watermark_accepted(self):
        buffer = ReorderBuffer(max_lateness=100)
        buffer.push("a", 1000)
        assert buffer.watermark == 900
        released = buffer.push("edge", 900)
        assert ("edge", 900) in released
        assert buffer.late_dropped == 0

    def test_ties_release_in_arrival_order(self):
        buffer = ReorderBuffer(max_lateness=1000)
        buffer.push("first", 500)
        buffer.push("second", 500)
        assert buffer.flush() == [("first", 500), ("second", 500)]

    def test_watermark_none_before_first_event(self):
        buffer = ReorderBuffer(max_lateness=10)
        assert buffer.watermark is None

    def test_negative_lateness_rejected(self):
        with pytest.raises(ValueError):
            ReorderBuffer(max_lateness=-1)

    def test_checkpoint_roundtrip_mid_stream(self):
        buffer = ReorderBuffer(max_lateness=300)
        buffer.push("a", 100)
        buffer.push("b", 500)
        buffer.push("too-late", 50)
        restored = ReorderBuffer.from_dict(buffer.to_dict())
        assert restored.watermark == buffer.watermark
        assert restored.late_dropped == 1
        assert restored.flush() == buffer.flush()


class TestMatcherWithBuffer:
    def test_jittered_stream_matches_clean_run(self, chain_cet):
        events = [("a", 0), ("b", H), ("c", 2 * H), ("a", 3 * H),
                  ("b", 4 * H), ("c", 5 * H)]
        rng = random.Random(7)
        jittered = list(events)
        # Swap adjacent pairs: worst-case lateness is one grid step.
        for i in range(0, len(jittered) - 1, 2):
            if rng.random() < 0.8:
                jittered[i], jittered[i + 1] = jittered[i + 1], jittered[i]
        clean = StreamingMatcher(build_tag(chain_cet))
        expected = [d for e, t in events for d in clean.feed(e, t)]
        tolerant = StreamingMatcher(build_tag(chain_cet), max_lateness=2 * H)
        got = [d for e, t in jittered for d in tolerant.feed(e, t)]
        got.extend(tolerant.flush())
        assert got == expected
        assert tolerant.late_events_dropped == 0

    def test_out_of_order_no_longer_raises(self, chain_cet):
        matcher = StreamingMatcher(build_tag(chain_cet), max_lateness=H)
        matcher.feed("a", 10 * H)
        assert matcher.feed("b", 0) == []  # beyond lateness: dropped
        assert matcher.late_events_dropped == 1
        assert matcher.stats()["late_events_dropped"] == 1

    def test_strict_mode_unchanged(self, chain_cet):
        matcher = StreamingMatcher(build_tag(chain_cet))
        matcher.feed("a", 100)
        with pytest.raises(ValueError):
            matcher.feed("b", 50)
        assert matcher.flush() == []  # no buffer: flush is a no-op

    def test_watermark_exposed(self, chain_cet):
        matcher = StreamingMatcher(build_tag(chain_cet), max_lateness=60)
        assert matcher.watermark is None
        matcher.feed("a", 1000)
        assert matcher.watermark == 940
        assert matcher.pending_reordered == 1  # held until watermark passes

    def test_detection_waits_for_watermark(self, chain_cet):
        """Completions are only emitted once their events are final."""
        matcher = StreamingMatcher(build_tag(chain_cet), max_lateness=H)
        assert matcher.feed("a", 0) == []
        assert matcher.feed("b", H) == []
        detections = matcher.feed("c", 2 * H)  # c itself is not final yet
        later = matcher.feed("noise", 4 * H)  # advances watermark past c
        assert detections == []
        assert [d.anchor_time for d in later] == [0]
        assert matcher.flush() == []
