"""Checkpoint/restore of the streaming matcher."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata import StreamingMatcher, build_tag
from repro.constraints import TCG, ComplexEventType, EventStructure
from repro.granularity import standard_system
from repro.granularity.gregorian import SECONDS_PER_HOUR
from repro.io.serialize import (
    SerializationError,
    configuration_from_dict,
    configuration_to_dict,
    streaming_matcher_from_checkpoint,
)

H = SECONDS_PER_HOUR

SYSTEM = standard_system()


def _module_chain_cet():
    """Module-level twin of the ``chain_cet`` fixture, for Hypothesis
    tests (which cannot take function-scoped fixtures)."""
    hour = SYSTEM.get("hour")
    structure = EventStructure(
        ["A", "B", "C"],
        {
            ("A", "B"): [TCG(0, 2, hour)],
            ("B", "C"): [TCG(0, 2, hour)],
        },
    )
    return ComplexEventType(structure, {"A": "a", "B": "b", "C": "c"})


CHAIN_CET = _module_chain_cet()


def detections_as_json(detections):
    """Canonical byte form used for exact-equality assertions."""
    return json.dumps(
        [
            [d.anchor_time, d.detected_at, sorted(d.bindings.items())]
            for d in detections
        ],
        sort_keys=True,
    )


class TestConfigurationPayload:
    def test_roundtrip(self, chain_cet):
        build = build_tag(chain_cet)
        matcher = StreamingMatcher(build)
        matcher.feed("a", 0)
        matcher.feed("b", H)
        (anchor,) = matcher._anchors
        for config in anchor.configs:
            payload = json.loads(json.dumps(configuration_to_dict(config)))
            restored = configuration_from_dict(payload)
            assert restored == config

    def test_malformed_payload_rejected(self):
        with pytest.raises(SerializationError):
            configuration_from_dict({"state": {"bogus": 1}})


class TestCheckpointRestore:
    EVENTS = [
        ("a", 0), ("noise", 30 * 60), ("a", H), ("b", H + 1800),
        ("b", 2 * H), ("c", 3 * H), ("a", 5 * H), ("b", 6 * H),
        ("c", 7 * H), ("noise", 8 * H),
    ]

    @pytest.mark.parametrize("cut", [1, 3, 5, 7, 9])
    def test_resume_mid_stream_is_byte_identical(
        self, system, chain_cet, cut
    ):
        uninterrupted = StreamingMatcher(build_tag(chain_cet))
        full = [d for e, t in self.EVENTS for d in uninterrupted.feed(e, t)]

        first = StreamingMatcher(build_tag(chain_cet))
        collected = [
            d for e, t in self.EVENTS[:cut] for d in first.feed(e, t)
        ]
        # Serialise through real JSON text: crash + restart semantics.
        payload = json.loads(json.dumps(first.checkpoint()))
        resumed = streaming_matcher_from_checkpoint(payload, system)
        collected += [
            d for e, t in self.EVENTS[cut:] for d in resumed.feed(e, t)
        ]
        assert detections_as_json(collected) == detections_as_json(full)

    def test_counters_and_parameters_survive(self, system, chain_cet):
        matcher = StreamingMatcher(
            build_tag(chain_cet),
            horizon_seconds=4 * H,
            max_live_anchors=17,
            overflow_policy="shed-oldest",
            max_lateness=H,
        )
        for etype, time in [("a", 0), ("b", H), ("x", 3 * H)]:
            matcher.feed(etype, time)
        restored = StreamingMatcher.from_checkpoint(
            matcher.checkpoint(), system
        )
        assert restored.horizon_seconds == 4 * H
        assert restored.max_live_anchors == 17
        assert restored.overflow_policy == "shed-oldest"
        assert restored.max_lateness == H
        assert restored.stats() == matcher.stats()

    def test_reorder_buffer_contents_survive(self, system, chain_cet):
        matcher = StreamingMatcher(build_tag(chain_cet), max_lateness=2 * H)
        matcher.feed("a", 0)
        matcher.feed("b", H)      # still buffered (watermark at -H .. 0)
        matcher.feed("c", 2 * H)  # buffered too
        assert matcher.pending_reordered > 0
        restored = StreamingMatcher.from_checkpoint(
            matcher.checkpoint(), system
        )
        assert restored.pending_reordered == matcher.pending_reordered
        finished = restored.flush()
        reference = matcher.flush()
        assert detections_as_json(finished) == detections_as_json(reference)

    def test_strict_matcher_round_trips_without_buffer(
        self, system, chain_cet
    ):
        matcher = StreamingMatcher(build_tag(chain_cet))
        matcher.feed("a", 100)
        restored = StreamingMatcher.from_checkpoint(
            matcher.checkpoint(), system
        )
        assert restored.max_lateness is None
        # Strict ordering still enforced relative to the restored clock.
        with pytest.raises(ValueError):
            restored.feed("b", 50)

    def test_unsupported_version_rejected(self, system, chain_cet):
        matcher = StreamingMatcher(build_tag(chain_cet))
        payload = matcher.checkpoint()
        payload["version"] = 99
        with pytest.raises(SerializationError):
            streaming_matcher_from_checkpoint(payload, system)

    def test_checkpoint_is_pure_json(self, chain_cet, tmp_path):
        matcher = StreamingMatcher(build_tag(chain_cet), max_lateness=H)
        for etype, time in self.EVENTS:
            matcher.feed(etype, time)
        path = tmp_path / "ckpt.json"
        from repro.io.serialize import dump_json, load_json

        dump_json(matcher.checkpoint(), str(path))
        restored = StreamingMatcher.from_checkpoint(load_json(str(path)))
        assert restored.stats() == matcher.stats()


@st.composite
def checkpoint_scenarios(draw):
    """An in-order stream over the chain alphabet, a cut point, and
    matcher parameters: everything a crash/restart needs."""
    count = draw(st.integers(min_value=0, max_value=30))
    time = draw(st.integers(min_value=0, max_value=2 * H))
    events = []
    for _ in range(count):
        symbol = draw(st.sampled_from(["a", "b", "c", "noise"]))
        events.append((symbol, time))
        time += draw(st.integers(min_value=0, max_value=3 * H))
    cut = draw(st.integers(min_value=0, max_value=count))
    max_lateness = draw(
        st.one_of(st.none(), st.integers(min_value=0, max_value=4 * H))
    )
    horizon = draw(
        st.one_of(st.none(), st.integers(min_value=H, max_value=12 * H))
    )
    return events, cut, max_lateness, horizon


class TestCheckpointRoundTripProperty:
    """Hypothesis: checkpoint + restore at *any* cut point of *any*
    in-order stream is indistinguishable from never crashing."""

    @given(scenario=checkpoint_scenarios())
    @settings(max_examples=200, deadline=None)
    def test_resume_equals_uninterrupted(self, scenario):
        events, cut, max_lateness, horizon = scenario

        def fresh():
            return StreamingMatcher(
                build_tag(CHAIN_CET, system=SYSTEM),
                horizon_seconds=horizon,
                max_lateness=max_lateness,
            )

        uninterrupted = fresh()
        full = [d for e, t in events for d in uninterrupted.feed(e, t)]
        full.extend(uninterrupted.flush())

        first = fresh()
        collected = [d for e, t in events[:cut] for d in first.feed(e, t)]
        payload = json.loads(json.dumps(first.checkpoint()))
        resumed = streaming_matcher_from_checkpoint(payload, SYSTEM)
        collected += [d for e, t in events[cut:] for d in resumed.feed(e, t)]
        collected.extend(resumed.flush())

        assert detections_as_json(collected) == detections_as_json(full)
        assert resumed.stats() == uninterrupted.stats()

@st.composite
def shedding_scenarios(draw):
    """A jittered, anchor-heavy stream plus a tiny anchor budget and a
    shedding policy: the stressed configuration of ISSUE 6, where a
    mid-stream checkpoint must carry the reorder buffer, the shed
    counters and the high-water timestamp."""
    count = draw(st.integers(min_value=0, max_value=40))
    max_lateness = draw(st.integers(min_value=0, max_value=2 * H))
    monotone = draw(st.integers(min_value=2 * H, max_value=4 * H))
    events = []
    for _ in range(count):
        # Weighted toward roots so max_live_anchors overflows often.
        symbol = draw(st.sampled_from(["a", "a", "a", "b", "c", "noise"]))
        monotone += draw(st.integers(min_value=0, max_value=H))
        jitter = draw(st.integers(min_value=0, max_value=3 * H))
        events.append((symbol, max(0, monotone - jitter)))
    cut = draw(st.integers(min_value=0, max_value=count))
    policy = draw(st.sampled_from(["shed-oldest", "shed-newest", "sample"]))
    max_live = draw(st.integers(min_value=1, max_value=3))
    return events, cut, max_lateness, policy, max_live


class TestShedCheckpointProperty:
    """Hypothesis (ISSUE 6 satellite): a matcher checkpointed
    mid-stream while *shedding* - anchors over budget, events in the
    reorder buffer, late drops counted - restores to the same
    detection set and the same counters as never crashing."""

    @given(scenario=shedding_scenarios())
    @settings(max_examples=150, deadline=None)
    def test_resume_under_shedding_equals_uninterrupted(self, scenario):
        events, cut, max_lateness, policy, max_live = scenario

        def fresh():
            return StreamingMatcher(
                build_tag(CHAIN_CET, system=SYSTEM),
                max_lateness=max_lateness,
                overflow_policy=policy,
                max_live_anchors=max_live,
            )

        uninterrupted = fresh()
        full = [d for e, t in events for d in uninterrupted.feed(e, t)]
        full.extend(uninterrupted.flush())

        first = fresh()
        collected = [d for e, t in events[:cut] for d in first.feed(e, t)]
        mid_stats = first.stats()
        payload = json.loads(json.dumps(first.checkpoint()))
        resumed = streaming_matcher_from_checkpoint(payload, SYSTEM)
        # Everything operational survives the crash: pending reordered
        # events, shed/late counters, and the watermark lag.
        assert resumed.stats() == mid_stats
        collected += [d for e, t in events[cut:] for d in resumed.feed(e, t)]
        collected.extend(resumed.flush())

        assert detections_as_json(collected) == detections_as_json(full)
        assert resumed.stats() == uninterrupted.stats()


class TestWatermarkLagCheckpoint:
    def test_max_time_seen_round_trips(self, system, chain_cet):
        matcher = StreamingMatcher(build_tag(chain_cet), max_lateness=4 * H)
        matcher.feed("a", 10 * H)
        matcher.feed("b", 7 * H)  # late but within bounds
        assert matcher.watermark_lag > 0
        restored = StreamingMatcher.from_checkpoint(
            matcher.checkpoint(), system
        )
        assert restored.watermark_lag == matcher.watermark_lag
        assert restored._max_time_seen == matcher._max_time_seen

    def test_legacy_payload_falls_back_to_last_time(
        self, system, chain_cet
    ):
        """Checkpoints written before ``max_time_seen`` existed still
        restore; the lag resets to zero until the next event."""
        matcher = StreamingMatcher(build_tag(chain_cet))
        matcher.feed("a", 5 * H)
        payload = matcher.checkpoint()
        del payload["max_time_seen"]
        restored = streaming_matcher_from_checkpoint(payload, system)
        assert restored._max_time_seen == restored._last_time == 5 * H
        assert restored.watermark_lag == 0

    def test_shed_counters_round_trip(self, system, chain_cet):
        matcher = StreamingMatcher(
            build_tag(chain_cet),
            max_live_anchors=2,
            overflow_policy="shed-oldest",
            max_lateness=0,
        )
        for index in range(6):
            matcher.feed("a", index * H)
        matcher.feed("b", 2 * H)  # below the watermark: dropped
        assert matcher.anchors_shed > 0
        assert matcher.late_events_dropped > 0
        restored = StreamingMatcher.from_checkpoint(
            matcher.checkpoint(), system
        )
        assert restored.anchors_shed == matcher.anchors_shed
        assert restored.late_events_dropped == matcher.late_events_dropped


class TestCheckpointStability:
    @given(scenario=checkpoint_scenarios())
    @settings(max_examples=50, deadline=None)
    def test_checkpoint_of_restored_matcher_is_stable(self, scenario):
        """checkpoint(restore(checkpoint(m))) == checkpoint(m): the
        payload is a fixpoint of the round trip."""
        events, cut, max_lateness, horizon = scenario
        matcher = StreamingMatcher(
            build_tag(CHAIN_CET, system=SYSTEM),
            horizon_seconds=horizon,
            max_lateness=max_lateness,
        )
        for etype, time in events[:cut]:
            matcher.feed(etype, time)
        payload = json.loads(json.dumps(matcher.checkpoint()))
        restored = streaming_matcher_from_checkpoint(payload, SYSTEM)
        assert json.loads(json.dumps(restored.checkpoint())) == payload
