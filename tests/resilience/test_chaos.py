"""Chaos acceptance tests: detection under injected faults.

The contract (ISSUE 1): with seeded drop/duplicate/delay/corrupt
injection the matcher never raises, quarantines every corrupt record
with a reason, and emits the same detections as a clean run over the
surviving events for everything within the watermark; a checkpoint and
restore mid-stream yields byte-identical detections to an
uninterrupted run.
"""

import json
import random

import pytest

from repro.automata import StreamingMatcher, build_tag
from repro.resilience import (
    EventValidationError,
    FaultInjector,
    Quarantine,
)
from repro.io.serialize import streaming_matcher_from_checkpoint

STEP = 60  # seconds between consecutive stream events
MAX_DELAY = 10 * STEP  # arrival lateness bound the injector guarantees


def make_stream(seed, n=400):
    """A clean stream on a fixed time grid (unique timestamps)."""
    rng = random.Random(seed)
    types = ["a", "b", "c", "n"]
    return [(rng.choice(types), i * STEP) for i in range(n)]


def chaos_feed(matcher, stream, quarantine):
    """Feed a dirty stream; quarantine rejects instead of raising."""
    detections = []
    for position, (etype, time) in enumerate(stream):
        try:
            detections.extend(matcher.feed(etype, time))
        except EventValidationError as exc:
            quarantine.add(exc.reason, raw=(etype, time), line=position)
    detections.extend(matcher.flush())
    return detections


def reference_run(chain_cet, clean_events):
    """What an uninterrupted fault-free matcher detects."""
    matcher = StreamingMatcher(build_tag(chain_cet))
    return [d for e, t in clean_events for d in matcher.feed(e, t)]


def as_json(detections):
    return json.dumps(
        [
            [d.anchor_time, d.detected_at, sorted(d.bindings.items())]
            for d in detections
        ],
        sort_keys=True,
    )


class TestChaosAcceptance:
    @pytest.mark.parametrize("seed", range(5))
    def test_faulted_stream_matches_clean_reference(self, chain_cet, seed):
        injector = FaultInjector(
            seed,
            drop_rate=0.05,
            duplicate_rate=0.05,
            delay_rate=0.25,
            max_delay=MAX_DELAY,
            corrupt_rate=0.05,
        )
        result = injector.inject(make_stream(seed))
        matcher = StreamingMatcher(
            build_tag(chain_cet), max_lateness=MAX_DELAY
        )
        quarantine = Quarantine(source="chaos")
        detections = chaos_feed(matcher, result.stream, quarantine)

        # Never raised (we got here), every corrupt record quarantined
        # with a reason ...
        assert len(quarantine) == result.stats["corrupted"]
        assert all(record.reason for record in quarantine)
        # ... nothing fell past the watermark (lateness bound respected)
        assert matcher.late_events_dropped == 0
        # ... and detections equal the clean run over surviving events.
        expected = reference_run(chain_cet, result.clean)
        assert as_json(detections) == as_json(expected)

    @pytest.mark.parametrize("seed", range(3))
    def test_checkpoint_restore_mid_chaos_is_byte_identical(
        self, system, chain_cet, seed
    ):
        injector = FaultInjector(
            seed + 100,
            drop_rate=0.05,
            duplicate_rate=0.05,
            delay_rate=0.25,
            max_delay=MAX_DELAY,
            corrupt_rate=0.05,
        )
        result = injector.inject(make_stream(seed + 100))
        stream = result.stream
        cut = len(stream) // 2

        uninterrupted = StreamingMatcher(
            build_tag(chain_cet), max_lateness=MAX_DELAY
        )
        full = chaos_feed(uninterrupted, stream, Quarantine())

        first = StreamingMatcher(
            build_tag(chain_cet), max_lateness=MAX_DELAY
        )
        quarantine = Quarantine()
        collected = []
        for position, (etype, time) in enumerate(stream[:cut]):
            try:
                collected.extend(first.feed(etype, time))
            except EventValidationError as exc:
                quarantine.add(exc.reason, raw=(etype, time), line=position)
        # Crash: state survives only as JSON text.
        payload = json.loads(json.dumps(first.checkpoint()))
        resumed = streaming_matcher_from_checkpoint(payload, system)
        for position, (etype, time) in enumerate(stream[cut:], start=cut):
            try:
                collected.extend(resumed.feed(etype, time))
            except EventValidationError as exc:
                quarantine.add(exc.reason, raw=(etype, time), line=position)
        collected.extend(resumed.flush())

        assert as_json(collected) == as_json(full)
        assert len(quarantine) == result.stats["corrupted"]

    def test_lateness_beyond_watermark_degrades_not_raises(self, chain_cet):
        """With a too-small lateness bound events get dropped, counted,
        and every detection that still fires is one the clean run has."""
        injector = FaultInjector(
            7, delay_rate=0.4, max_delay=MAX_DELAY
        )
        result = injector.inject(make_stream(7))
        matcher = StreamingMatcher(
            build_tag(chain_cet), max_lateness=STEP  # far below MAX_DELAY
        )
        detections = chaos_feed(matcher, result.stream, Quarantine())
        assert matcher.late_events_dropped > 0
        # Dropping events can postpone or lose completions but never
        # invent anchors the clean run would not detect.
        expected = {
            d.anchor_time for d in reference_run(chain_cet, result.clean)
        }
        got = {d.anchor_time for d in detections}
        assert got <= expected

    def test_heavy_corruption_only_reduces_throughput(self, chain_cet):
        injector = FaultInjector(13, corrupt_rate=0.5)
        result = injector.inject(make_stream(13, n=200))
        matcher = StreamingMatcher(build_tag(chain_cet), max_lateness=0)
        quarantine = Quarantine()
        detections = chaos_feed(matcher, result.stream, quarantine)
        assert len(quarantine) == result.stats["corrupted"]
        assert matcher.events_processed == len(result.clean)
        expected = reference_run(chain_cet, result.clean)
        assert as_json(detections) == as_json(expected)
