"""Tests for incremental (streaming) discovery."""

import random

import pytest

from repro.constraints import TCG, ComplexEventType, EventStructure
from repro.granularity.gregorian import SECONDS_PER_DAY, SECONDS_PER_HOUR
from repro.mining import (
    EventDiscoveryProblem,
    IncrementalDiscovery,
    TypeConstraint,
    discover,
    planted_sequence,
)

D, H = SECONDS_PER_DAY, SECONDS_PER_HOUR


@pytest.fixture
def chain_problem(system):
    hour = system.get("hour")
    structure = EventStructure(
        ["A", "B"], {("A", "B"): [TCG(0, 2, hour)]}
    )
    return EventDiscoveryProblem(
        structure,
        0.6,
        "alert",
        {"B": frozenset(["ack", "page"])},
    )


class TestIncrementalDiscovery:
    def test_requires_candidate_sets(self, system):
        hour = system.get("hour")
        structure = EventStructure(
            ["A", "B"], {("A", "B"): [TCG(0, 2, hour)]}
        )
        problem = EventDiscoveryProblem(structure, 0.5, "alert")
        with pytest.raises(ValueError):
            IncrementalDiscovery(problem, system)

    def test_horizon_derived_from_propagation(self, system, chain_problem):
        incremental = IncrementalDiscovery(chain_problem, system)
        assert incremental.horizon_seconds is not None
        assert incremental.horizon_seconds <= 4 * H

    def test_frequencies_update_online(self, system, chain_problem):
        incremental = IncrementalDiscovery(chain_problem, system)
        for i in range(10):
            base = i * D
            incremental.feed("alert", base)
            incremental.feed("ack", base + H)
            if i % 2 == 0:
                incremental.feed("page", base + 90 * 60)
        frequencies = incremental.frequencies()
        ack_key = (("A", "alert"), ("B", "ack"))
        page_key = (("A", "alert"), ("B", "page"))
        assert frequencies[ack_key] == pytest.approx(1.0)
        assert frequencies[page_key] == pytest.approx(0.5)
        solutions = incremental.solutions()
        assert solutions[0][0].assignment["B"] == "ack"
        assert all(freq > 0.6 for _, freq in solutions)

    def test_type_constraints_filter_candidates(self, system):
        hour = system.get("hour")
        structure = EventStructure(
            ["R", "X", "Y"],
            {
                ("R", "X"): [TCG(0, 2, hour)],
                ("R", "Y"): [TCG(0, 2, hour)],
            },
        )
        problem = EventDiscoveryProblem(
            structure,
            0.5,
            "r",
            {"X": frozenset(["a", "b"]), "Y": frozenset(["a", "b"])},
            type_constraints=(TypeConstraint("distinct", ["X", "Y"]),),
        )
        incremental = IncrementalDiscovery(problem, system)
        assert len(incremental.candidates) == 2  # (a,b) and (b,a)

    def test_matches_batch_discovery(self, system, chain_problem):
        """Streaming counts equal the batch pipeline on the same data."""
        structure = chain_problem.structure
        cet = ComplexEventType(structure, {"A": "alert", "B": "ack"})
        rng = random.Random(13)
        sequence, _ = planted_sequence(
            cet,
            system,
            n_roots=14,
            confidence=0.8,
            rng=rng,
            noise_types=["page", "noise"],
            noise_events_per_root=4,
            root_spacing_seconds=3 * D,
        )
        batch = discover(chain_problem, sequence, system)
        incremental = IncrementalDiscovery(chain_problem, system)
        incremental.feed_sequence(sequence)
        batch_freqs = {
            tuple(sorted(cet.assignment.items())): freq
            for cet, freq in batch.frequencies.items()
        }
        online_freqs = incremental.frequencies()
        for key, freq in batch_freqs.items():
            assert online_freqs[key] == pytest.approx(freq)
