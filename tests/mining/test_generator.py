"""Tests for the synthetic workload generators."""

import random

import pytest

from repro.automata.structmatch import count_occurrences, find_occurrence
from repro.constraints import TCG, ComplexEventType, EventStructure
from repro.granularity.gregorian import SECONDS_PER_DAY
from repro.mining import (
    atm_sequence,
    instance_windows,
    plant_log_sequence,
    planted_sequence,
    random_noise,
    sample_instance,
    stock_sequence,
)


@pytest.fixture
def chain_cet(system):
    hour = system.get("hour")
    day = system.get("day")
    structure = EventStructure(
        ["A", "B", "C"],
        {
            ("A", "B"): [TCG(1, 1, day)],
            ("B", "C"): [TCG(0, 4, hour)],
        },
    )
    return ComplexEventType(structure, {"A": "x", "B": "y", "C": "z"})


class TestRandomNoise:
    def test_count_and_window(self):
        rng = random.Random(1)
        events = random_noise(["a", "b"], 100, 10_000, 25, rng)
        assert len(events) == 25
        assert all(100 - 60 < e.time <= 10_000 for e in events)
        assert all(e.time % 60 == 0 for e in events)

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            random_noise(["a"], 10, 5, 3, random.Random(0))


class TestSampleInstance:
    def test_instance_satisfies_structure(self, system, chain_cet):
        rng = random.Random(3)
        events = sample_instance(chain_cet, system, 9 * 3600, rng)
        assert events is not None
        times = {
            chain_cet.structure.variables[i]: events[i].time
            for i in range(len(events))
        }
        assert chain_cet.structure.is_satisfied_by(times)

    def test_types_follow_assignment(self, system, chain_cet):
        rng = random.Random(4)
        events = sample_instance(chain_cet, system, 9 * 3600, rng)
        assert [e.etype for e in events] == ["x", "y", "z"]

    def test_windows_cached_and_finite(self, system, chain_cet):
        first = instance_windows(chain_cet.structure, system)
        second = instance_windows(chain_cet.structure, system)
        assert first is second
        assert set(first) == {"B", "C"}
        assert all(lo <= hi for lo, hi in first.values())


class TestPlantedSequence:
    def test_confidence_controls_plants(self, system, chain_cet):
        rng = random.Random(11)
        seq, planted = planted_sequence(
            chain_cet,
            system,
            n_roots=20,
            confidence=0.75,
            rng=rng,
            root_spacing_seconds=5 * SECONDS_PER_DAY,
        )
        assert planted == 15
        assert seq.count("x") == 20

    def test_planted_patterns_actually_match(self, system, chain_cet):
        rng = random.Random(12)
        seq, planted = planted_sequence(
            chain_cet,
            system,
            n_roots=12,
            confidence=1.0,
            rng=rng,
            root_spacing_seconds=5 * SECONDS_PER_DAY,
        )
        assert count_occurrences(chain_cet, seq) >= planted

    def test_zero_confidence(self, system, chain_cet):
        rng = random.Random(13)
        seq, planted = planted_sequence(
            chain_cet, system, n_roots=5, confidence=0.0, rng=rng
        )
        assert planted == 0
        assert count_occurrences(chain_cet, seq) == 0

    def test_invalid_confidence_rejected(self, system, chain_cet):
        with pytest.raises(ValueError):
            planted_sequence(
                chain_cet, system, 5, confidence=1.5, rng=random.Random(0)
            )


class TestDomainGenerators:
    def test_stock_sequence_respects_market_days(self):
        seq = stock_sequence(days=14, rng=random.Random(5))
        for event in seq:
            weekday = (event.time // SECONDS_PER_DAY) % 7
            assert weekday not in (5, 6)

    def test_stock_sequence_on_grid(self):
        seq = stock_sequence(days=7, rng=random.Random(6))
        assert all(e.time % 900 == 0 for e in seq)

    def test_atm_sequence_types(self):
        seq = atm_sequence(days=5, rng=random.Random(7))
        assert seq.types() <= {
            "deposit",
            "withdrawal",
            "balance-check",
            "card-retained",
            "large-withdrawal",
        }
        assert len(seq) == 5 * 12

    def test_plant_log_types(self):
        seq = plant_log_sequence(days=5, rng=random.Random(8))
        assert len(seq) == 30
        assert "malfunction" in {e.etype for e in seq} or len(seq.types()) >= 2
