"""Tests for the MTV95 sliding-window episode semantics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mining import (
    EventSequence,
    SerialEpisode,
    frequent_episodes_sliding,
    sliding_window_count,
    sliding_window_frequency,
)


def brute_force_count(sequence, episode, window):
    """Reference implementation: test every window start explicitly."""
    if len(sequence) == 0:
        return 0, 0
    first, last = sequence.span()
    starts = range(first - window + 1, last + 1)
    contained = 0
    for t in starts:
        events = [e for e in sequence if t <= e.time < t + window]
        position = 0
        for etype in episode.types:
            while position < len(events) and events[position].etype != etype:
                position += 1
            if position == len(events):
                break
            position += 1
        else:
            contained += 1
    return contained, len(starts)


class TestSlidingWindowCount:
    def test_single_event(self):
        sequence = EventSequence([("a", 10)])
        covered, total = sliding_window_count(
            sequence, SerialEpisode(("a",)), 5
        )
        assert total == 5  # each event is in exactly w windows
        assert covered == 5

    def test_pair(self):
        sequence = EventSequence([("a", 0), ("b", 3)])
        covered, total = sliding_window_count(
            sequence, SerialEpisode(("a", "b")), 5
        )
        expected = brute_force_count(sequence, SerialEpisode(("a", "b")), 5)
        assert (covered, total) == expected

    def test_empty_sequence(self):
        assert sliding_window_count(
            EventSequence([]), SerialEpisode(("a",)), 5
        ) == (0, 0)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            sliding_window_count(
                EventSequence([("a", 1)]), SerialEpisode(("a",)), 0
            )

    @given(
        raw=st.lists(
            st.tuples(
                st.sampled_from(["a", "b", "c"]),
                st.integers(min_value=0, max_value=120),
            ),
            min_size=1,
            max_size=14,
        ),
        types=st.lists(
            st.sampled_from(["a", "b", "c"]), min_size=1, max_size=3
        ),
        window=st.integers(min_value=1, max_value=40),
    )
    @settings(max_examples=80, deadline=None)
    def test_matches_brute_force(self, raw, types, window):
        sequence = EventSequence(raw)
        episode = SerialEpisode(tuple(types))
        assert sliding_window_count(
            sequence, episode, window
        ) == brute_force_count(sequence, episode, window)


class TestFrequency:
    def test_frequency_between_zero_and_one(self):
        sequence = EventSequence([("a", 0), ("b", 2), ("a", 10)])
        frequency = sliding_window_frequency(
            sequence, SerialEpisode(("a", "b")), 6
        )
        assert 0 < frequency < 1

    def test_absent_episode(self):
        sequence = EventSequence([("a", 0)])
        assert sliding_window_frequency(
            sequence, SerialEpisode(("z",)), 5
        ) == 0.0


class TestAprioriSliding:
    def test_finds_dense_episode(self):
        events = []
        for i in range(30):
            events += [("a", i * 10), ("b", i * 10 + 2)]
        sequence = EventSequence(events)
        frequent = frequent_episodes_sliding(
            sequence, window_seconds=10, min_frequency=0.5, max_length=2
        )
        assert SerialEpisode(("a", "b")) in frequent

    def test_antimonotone_prefix(self):
        events = [("a", i * 7) for i in range(20)]
        events += [("b", i * 7 + 1) for i in range(0, 20, 4)]
        sequence = EventSequence(events)
        frequent = frequent_episodes_sliding(
            sequence, window_seconds=14, min_frequency=0.2, max_length=2
        )
        for episode in frequent:
            if len(episode) > 1:
                assert episode.prefix() in frequent

    def test_threshold_validated(self):
        with pytest.raises(ValueError):
            frequent_episodes_sliding(
                EventSequence([("a", 1)]), 5, min_frequency=-0.1
            )
