"""Tests for the plain-text reporting helpers."""

import random

import pytest

from repro.constraints import TCG, ComplexEventType, EventStructure, propagate
from repro.constraints.analysis import tightness_report
from repro.granularity.gregorian import SECONDS_PER_DAY
from repro.mining import EventDiscoveryProblem, discover, planted_sequence
from repro.mining.reporting import (
    discovery_report,
    format_table,
    propagation_report,
    tightness_table,
)


class TestFormatTable:
    def test_alignment(self):
        table = format_table(("a", "bb"), [("xxx", 1), ("y", 22)])
        lines = table.splitlines()
        assert lines[0].startswith("a    bb")
        assert lines[1].startswith("---")
        assert len(lines) == 4

    def test_empty_rows(self):
        table = format_table(("col",), [])
        assert "col" in table


class TestDiscoveryReport:
    @pytest.fixture
    def outcome(self, system):
        day = system.get("day")
        structure = EventStructure(
            ["A", "B"], {("A", "B"): [TCG(1, 1, day)]}
        )
        cet = ComplexEventType(structure, {"A": "ping", "B": "pong"})
        rng = random.Random(5)
        sequence, _ = planted_sequence(
            cet,
            system,
            n_roots=8,
            confidence=1.0,
            rng=rng,
            root_spacing_seconds=4 * SECONDS_PER_DAY,
        )
        problem = EventDiscoveryProblem(structure, 0.6, "ping")
        return discover(problem, sequence, system)

    def test_contains_solution_and_stats(self, outcome):
        report = discovery_report(outcome)
        assert "A=ping, B=pong" in report
        assert "anchors" in report
        assert "automaton starts" in report

    def test_inconsistent_message(self, system):
        bad = EventStructure(
            ["A", "B"],
            {
                ("A", "B"): [
                    TCG(10, 10, system.get("day")),
                    TCG(0, 0, system.get("week")),
                ]
            },
        )
        problem = EventDiscoveryProblem(bad, 0.5, "x")
        from repro.mining import EventSequence

        outcome = discover(
            problem, EventSequence([("x", 0)]), system
        )
        assert "inconsistent" in discovery_report(outcome)


class TestPropagationReport:
    def test_derived_rows(self, figure_1a, system):
        report = propagation_report(propagate(figure_1a, system))
        assert "consistent" in report
        assert "X0 -> X3" in report
        assert "[1,1]b-day" in report

    def test_inconsistent(self, system):
        bad = EventStructure(
            ["A", "B"],
            {
                ("A", "B"): [
                    TCG(10, 10, system.get("day")),
                    TCG(0, 0, system.get("week")),
                ]
            },
        )
        assert "INCONSISTENT" in propagation_report(propagate(bad, system))


class TestTightnessTable:
    def test_renders_rows(self, system):
        day = system.get("day")
        structure = EventStructure(
            ["A", "B"], {("A", "B"): [TCG(1, 3, day)]}
        )
        rows = tightness_report(
            structure, system, day, 60 * SECONDS_PER_DAY
        )
        table = tightness_table(rows)
        assert "A -> B" in table
        assert "tight" in table
