"""Tests for the individual pruning steps (Section 5, steps 1-4)."""

import random

import pytest

from repro.constraints import TCG, ComplexEventType, EventStructure
from repro.granularity.gregorian import SECONDS_PER_DAY
from repro.mining import (
    Event,
    EventSequence,
    consistency_gate,
    filter_reference_occurrences,
    planted_sequence,
    reduce_sequence,
    required_granularities,
    screen_candidates,
    seconds_windows,
)

D = SECONDS_PER_DAY


@pytest.fixture
def bday_structure(system):
    bday = system.get("b-day")
    return EventStructure(
        ["A", "B"], {("A", "B"): [TCG(1, 2, bday)]}
    )


class TestConsistencyGate:
    def test_consistent_passes(self, figure_1a, system):
        ok, result = consistency_gate(figure_1a, system)
        assert ok
        assert result.interval("X0", "X3", "second") is not None

    def test_inconsistent_blocks(self, system):
        day = system.get("day")
        bad = EventStructure(
            ["A", "B", "C"],
            {
                ("A", "B"): [TCG(5, 5, day)],
                ("B", "C"): [TCG(5, 5, day)],
                ("A", "C"): [TCG(0, 4, day)],
            },
        )
        ok, _ = consistency_gate(bad, system)
        assert not ok


class TestSecondsWindows:
    def test_windows_for_all_variables(self, figure_1a, system):
        _, result = consistency_gate(figure_1a, system)
        windows = seconds_windows(result)
        assert set(windows) == {"X1", "X2", "X3"}
        for lo, hi in windows.values():
            assert 0 <= lo <= hi


class TestRequiredGranularities:
    def test_incident_arcs_counted(self, figure_1a):
        required = required_granularities(figure_1a)
        assert {t.label for t in required["X0"]} == {"b-day"}
        assert {t.label for t in required["X3"]} == {"week", "hour"}
        assert {t.label for t in required["X2"]} == {"b-day", "hour"}


class TestReduceSequence:
    def test_drops_uncovered_events(self, bday_structure):
        seq = EventSequence(
            [
                Event("a", 0),          # Monday: can instantiate A or B
                Event("a", 5 * D),      # Saturday: uncovered by b-day
                Event("b", 7 * D),
            ]
        )
        reduced = reduce_sequence(
            bday_structure, seq, {"A": None, "B": None}
        )
        assert len(reduced) == 2

    def test_drops_wrong_types(self, bday_structure):
        seq = EventSequence(
            [Event("a", 0), Event("junk", D), Event("b", 2 * D)]
        )
        reduced = reduce_sequence(
            bday_structure,
            seq,
            {"A": frozenset(["a"]), "B": frozenset(["b"])},
        )
        assert reduced.types() == {"a", "b"}

    def test_unrestricted_keeps_covered(self, bday_structure):
        seq = EventSequence([Event("anything", 0)])
        reduced = reduce_sequence(bday_structure, seq, {"A": None, "B": None})
        assert len(reduced) == 1


class TestReferenceFiltering:
    def test_roots_without_followers_dropped(self, system, bday_structure):
        _, result = consistency_gate(bday_structure, system)
        windows = seconds_windows(result)
        seq = EventSequence(
            [
                Event("a", 0),           # has a 'b' next b-day
                Event("b", 1 * D),
                Event("a", 14 * D),      # nothing afterwards
            ]
        )
        roots = list(seq.occurrence_indices("a"))
        kept = filter_reference_occurrences(
            bday_structure, seq, roots, windows, {"A": None, "B": None}
        )
        assert kept == [0]

    def test_respects_candidate_types(self, system, bday_structure):
        _, result = consistency_gate(bday_structure, system)
        windows = seconds_windows(result)
        seq = EventSequence(
            [Event("a", 0), Event("x", 1 * D)]
        )
        kept = filter_reference_occurrences(
            bday_structure,
            seq,
            [0],
            windows,
            {"A": None, "B": frozenset(["b"])},
        )
        assert kept == []  # the only follower has a disallowed type


class TestScreening:
    def test_frequent_type_survives(self, system, bday_structure):
        _, result = consistency_gate(bday_structure, system)
        windows = seconds_windows(result)
        events = []
        for week in range(6):
            t0 = week * 7 * D
            events.append(Event("a", t0))          # Monday root
            events.append(Event("b", t0 + D))      # Tuesday follower
            if week == 0:
                events.append(Event("rare", t0 + D))
        seq = EventSequence(events)
        roots = list(seq.occurrence_indices("a"))
        survivors = screen_candidates(
            bday_structure,
            seq,
            roots,
            len(roots),
            windows,
            {"A": None, "B": None},
            min_confidence=0.5,
        )
        assert "b" in survivors["B"]
        assert "rare" not in survivors["B"]

    def test_anti_monotone_bound(self, system, figure_1a):
        """Screening must never remove a type used by a true solution:
        the window frequency upper-bounds the pattern frequency."""
        cet = ComplexEventType(
            figure_1a,
            {
                "X0": "IBM-rise",
                "X1": "IBM-earnings-report",
                "X2": "HP-rise",
                "X3": "IBM-fall",
            },
        )
        rng = random.Random(5)
        seq, _ = planted_sequence(
            cet,
            system,
            n_roots=10,
            confidence=1.0,
            rng=rng,
            noise_types=["HP-fall"],
            noise_events_per_root=4,
        )
        _, result = consistency_gate(figure_1a, system)
        windows = seconds_windows(result)
        roots = list(seq.occurrence_indices("IBM-rise"))
        survivors = screen_candidates(
            figure_1a,
            seq,
            roots,
            len(roots),
            windows,
            {"X1": None, "X2": None, "X3": None},
            min_confidence=0.8,
        )
        assert "IBM-earnings-report" in survivors["X1"]
        assert "HP-rise" in survivors["X2"]
        assert "IBM-fall" in survivors["X3"]
