"""Tests for Event and EventSequence."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mining import Event, EventSequence


def sample_sequence():
    return EventSequence(
        [
            Event("a", 10),
            Event("b", 5),
            Event("a", 20),
            Event("c", 20),
            Event("b", 30),
        ]
    )


class TestConstruction:
    def test_sorted_by_time(self):
        seq = sample_sequence()
        assert [e.time for e in seq] == [5, 10, 20, 20, 30]

    def test_accepts_tuples(self):
        seq = EventSequence([("a", 3), ("b", 1)])
        assert seq[0] == Event("b", 1)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventSequence([Event("a", -1)])

    def test_equality(self):
        assert sample_sequence() == sample_sequence()
        assert sample_sequence() != EventSequence([])


class TestQueries:
    def test_types(self):
        assert sample_sequence().types() == {"a", "b", "c"}

    def test_occurrence_indices(self):
        seq = sample_sequence()
        indices = seq.occurrence_indices("a")
        assert [seq[i].etype for i in indices] == ["a", "a"]
        assert [seq[i].time for i in indices] == [10, 20]
        assert seq.occurrence_indices("zz") == ()

    def test_count(self):
        assert sample_sequence().count("b") == 2
        assert sample_sequence().count("zz") == 0

    def test_window(self):
        seq = sample_sequence()
        assert [e.time for e in seq.window(10, 20)] == [10, 20, 20]
        assert seq.window(31, 99) == []

    def test_has_type_in_window(self):
        seq = sample_sequence()
        assert seq.has_type_in_window("a", 0, 10)
        assert seq.has_type_in_window("c", 20, 20)
        assert not seq.has_type_in_window("c", 0, 19)
        assert not seq.has_type_in_window("zz", 0, 100)

    def test_index_helpers(self):
        seq = sample_sequence()
        assert seq.first_index_at_or_after(11) == 2
        assert seq.last_index_at_or_before(20) == 4

    def test_filtered(self):
        seq = sample_sequence().filtered(lambda e: e.etype != "b")
        assert seq.types() == {"a", "c"}
        assert len(seq) == 3

    def test_span(self):
        assert sample_sequence().span() == (5, 30)
        with pytest.raises(ValueError):
            EventSequence([]).span()

    def test_merged_with(self):
        merged = sample_sequence().merged_with(
            EventSequence([Event("d", 7)])
        )
        assert len(merged) == 6
        assert merged[1] == Event("d", 7)

    def test_shifted(self):
        shifted = sample_sequence().shifted(100)
        assert [e.time for e in shifted] == [105, 110, 120, 120, 130]
        with pytest.raises(ValueError):
            sample_sequence().shifted(-100)  # would go negative

    def test_relabelled(self):
        renamed = sample_sequence().relabelled({"a": "alpha"})
        assert renamed.count("alpha") == 2
        assert renamed.count("a") == 0
        assert renamed.count("b") == 2

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["x", "y", "z"]),
                st.integers(min_value=0, max_value=1000),
            ),
            max_size=40,
        )
    )
    def test_window_agrees_with_scan(self, raw):
        seq = EventSequence([Event(t, s) for t, s in raw])
        lo, hi = 100, 600
        expected = sorted(
            (e for e in seq if lo <= e.time <= hi), key=lambda e: e.time
        )
        assert seq.window(lo, hi) == expected
        for etype in ("x", "y", "z"):
            assert seq.has_type_in_window(etype, lo, hi) == any(
                e.etype == etype for e in expected
            )
