"""Tests for event-discovery problems: naive vs optimised equivalence.

The paper's central claim for Section 5 is that steps 1-4 reduce work
without changing the answer; the equivalence tests here are the direct
check of that claim.
"""

import random

import pytest

from repro.constraints import TCG, ComplexEventType, EventStructure
from repro.granularity.gregorian import SECONDS_PER_DAY
from repro.mining import (
    EventDiscoveryProblem,
    EventSequence,
    discover,
    naive_discover,
    planted_sequence,
)


@pytest.fixture
def chain_structure(system):
    hour = system.get("hour")
    day = system.get("day")
    return EventStructure(
        ["A", "B", "C"],
        {
            ("A", "B"): [TCG(1, 1, day)],
            ("B", "C"): [TCG(0, 4, hour)],
        },
    )


@pytest.fixture
def planted(system, chain_structure):
    cet = ComplexEventType(
        chain_structure, {"A": "alert", "B": "probe", "C": "breach"}
    )
    rng = random.Random(99)
    sequence, n = planted_sequence(
        cet,
        system,
        n_roots=15,
        confidence=0.85,
        rng=rng,
        noise_types=["probe", "breach", "scan", "login"],
        noise_events_per_root=6,
        root_spacing_seconds=6 * SECONDS_PER_DAY,
    )
    return sequence, n, cet


class TestProblemValidation:
    def test_confidence_bounds(self, chain_structure):
        with pytest.raises(ValueError):
            EventDiscoveryProblem(chain_structure, 1.5, "alert")
        with pytest.raises(ValueError):
            EventDiscoveryProblem(chain_structure, -0.1, "alert")

    def test_unknown_candidate_variable_rejected(self, chain_structure):
        with pytest.raises(ValueError):
            EventDiscoveryProblem(
                chain_structure, 0.5, "alert", {"Z": frozenset(["x"])}
            )

    def test_root_candidates_rejected(self, chain_structure):
        with pytest.raises(ValueError):
            EventDiscoveryProblem(
                chain_structure, 0.5, "alert", {"A": frozenset(["x"])}
            )

    def test_allowed_types(self, chain_structure):
        problem = EventDiscoveryProblem(
            chain_structure, 0.5, "alert", {"B": frozenset(["probe"])}
        )
        allowed = problem.allowed_types()
        assert allowed["A"] == frozenset(["alert"])
        assert allowed["B"] == frozenset(["probe"])
        assert allowed["C"] is None


class TestDiscoveryOnPlantedData:
    def test_finds_planted_pattern(self, system, chain_structure, planted):
        sequence, n_planted, cet = planted
        problem = EventDiscoveryProblem(chain_structure, 0.7, "alert")
        outcome = discover(problem, sequence, system)
        assert dict(cet.assignment) in outcome.solution_assignments()

    def test_reports_frequency(self, system, chain_structure, planted):
        sequence, n_planted, cet = planted
        problem = EventDiscoveryProblem(chain_structure, 0.7, "alert")
        outcome = discover(problem, sequence, system)
        frequency = outcome.frequencies[outcome.solutions[0]]
        assert frequency >= n_planted / 15

    def test_high_threshold_filters_out(self, system, chain_structure, planted):
        sequence, _, _ = planted
        problem = EventDiscoveryProblem(chain_structure, 0.99, "alert")
        outcome = discover(problem, sequence, system)
        assert outcome.solutions == []

    def test_missing_reference_type(self, system, chain_structure):
        sequence = EventSequence([("x", 0), ("y", 10)])
        problem = EventDiscoveryProblem(chain_structure, 0.5, "alert")
        assert discover(problem, sequence, system).solutions == []
        assert naive_discover(problem, sequence, system).solutions == []

    def test_inconsistent_structure_short_circuits(self, system):
        day = system.get("day")
        week = system.get("week")
        bad = EventStructure(
            ["A", "B"],
            {("A", "B"): [TCG(10, 10, day), TCG(0, 0, week)]},
        )
        sequence = EventSequence([("alert", 0), ("x", 100)])
        problem = EventDiscoveryProblem(bad, 0.1, "alert")
        outcome = discover(problem, sequence, system)
        assert outcome.solutions == []
        assert not outcome.stats.consistent
        assert outcome.automaton_starts == 0


class TestNaiveOptimisedEquivalence:
    """Steps 1-4 must not change the solution set (anti-monotonicity)."""

    @pytest.mark.parametrize("confidence", [0.3, 0.6, 0.8])
    def test_equivalence_on_planted(
        self, system, chain_structure, planted, confidence
    ):
        sequence, _, _ = planted
        problem = EventDiscoveryProblem(chain_structure, confidence, "alert")
        naive = naive_discover(problem, sequence, system)
        for depth in (0, 1, 2):
            optimised = discover(
                problem, sequence, system, screen_depth=depth
            )
            assert sorted(
                map(str, naive.solution_assignments())
            ) == sorted(map(str, optimised.solution_assignments())), (
                "depth %d diverged" % depth
            )
            for cet, frequency in optimised.frequencies.items():
                assert naive.frequencies[cet] == pytest.approx(frequency)

    @pytest.mark.parametrize("seed", range(3))
    def test_equivalence_on_random_noise(self, system, seed):
        """Pure-noise sequences: both solvers find the same (usually
        empty) solution sets."""
        rng = random.Random(seed)
        hour = system.get("hour")
        structure = EventStructure(
            ["A", "B"], {("A", "B"): [TCG(0, 6, hour)]}
        )
        events = [
            ("t%d" % rng.randrange(3), rng.randrange(0, 5 * 86400))
            for _ in range(60)
        ]
        sequence = EventSequence(events)
        problem = EventDiscoveryProblem(structure, 0.5, "t0")
        naive = naive_discover(problem, sequence, system)
        optimised = discover(problem, sequence, system)
        assert sorted(map(str, naive.solution_assignments())) == sorted(
            map(str, optimised.solution_assignments())
        )

    def test_optimised_does_less_work(self, system, chain_structure, planted):
        sequence, _, _ = planted
        problem = EventDiscoveryProblem(chain_structure, 0.7, "alert")
        naive = naive_discover(problem, sequence, system)
        optimised = discover(problem, sequence, system)
        assert optimised.candidates_evaluated <= naive.candidates_evaluated
        assert optimised.automaton_starts <= naive.automaton_starts
