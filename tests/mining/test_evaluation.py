"""Tests for the evaluation utilities."""

import pytest

from repro.automata import TagMatcher, build_tag
from repro.constraints import TCG, ComplexEventType, EventStructure
from repro.granularity.gregorian import SECONDS_PER_DAY
from repro.mining import (
    Evaluation,
    evaluate_anchors,
    labelled_planted_workload,
)


class TestEvaluationMetrics:
    def test_perfect(self):
        e = Evaluation(5, 0, 0, 5)
        assert e.precision == 1.0
        assert e.recall == 1.0
        assert e.f1 == 1.0
        assert e.accuracy == 1.0

    def test_mixed(self):
        e = Evaluation(3, 1, 2, 4)
        assert e.precision == pytest.approx(0.75)
        assert e.recall == pytest.approx(0.6)
        assert e.f1 == pytest.approx(2 * 0.75 * 0.6 / 1.35)
        assert e.accuracy == pytest.approx(0.7)

    def test_degenerate_empty(self):
        e = Evaluation(0, 0, 0, 0)
        # Vacuous conventions: nothing predicted, nothing to find.
        assert e.precision == 1.0
        assert e.recall == 1.0
        assert e.f1 == 1.0
        assert e.accuracy == 1.0

    def test_str(self):
        assert "P=" in str(Evaluation(1, 0, 0, 0))


class TestEvaluateAnchors:
    def test_counts(self):
        truth = {1: True, 2: False, 3: True, 4: False}
        predictions = {1: True, 2: True, 3: False, 4: False}
        e = evaluate_anchors(truth, lambda anchor: predictions[anchor])
        assert (e.true_positives, e.false_positives) == (1, 1)
        assert (e.false_negatives, e.true_negatives) == (1, 1)


class TestLabelledWorkload:
    @pytest.fixture
    def cet(self, system):
        hour = system.get("hour")
        structure = EventStructure(
            ["A", "B"], {("A", "B"): [TCG(0, 2, hour)]}
        )
        return ComplexEventType(structure, {"A": "alert", "B": "ack"})

    def test_labels_are_exact(self, system, cet):
        sequence, truth = labelled_planted_workload(
            cet,
            system,
            n_roots=12,
            confidence=0.5,
            seed=4,
            root_spacing_seconds=4 * SECONDS_PER_DAY,
        )
        assert len(truth) == 12
        assert 0 < sum(truth.values()) < 12

    def test_exact_matcher_scores_perfectly(self, system, cet):
        """The TAG matcher must score P=R=1 against the exact labels -
        the tightest possible self-consistency check."""
        sequence, truth = labelled_planted_workload(
            cet,
            system,
            n_roots=15,
            confidence=0.6,
            seed=9,
            noise_types=["ack", "noise"],
            root_spacing_seconds=4 * SECONDS_PER_DAY,
        )
        matcher = TagMatcher(build_tag(cet))
        by_time = {
            sequence[i].time: i
            for i in sequence.occurrence_indices("alert")
        }
        evaluation = evaluate_anchors(
            truth, lambda t: matcher.occurs_at(sequence, by_time[t])
        )
        assert evaluation.precision == 1.0
        assert evaluation.recall == 1.0
