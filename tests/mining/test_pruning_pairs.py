"""Focused tests for depth-2 candidate screening (sub-chain pairs)."""

import pytest

from repro.constraints import TCG, EventStructure
from repro.granularity.gregorian import SECONDS_PER_DAY, SECONDS_PER_HOUR
from repro.mining import (
    Event,
    EventSequence,
    consistency_gate,
    screen_candidate_pairs,
)
from repro.mining.pruning import chain_pairs

D, H = SECONDS_PER_DAY, SECONDS_PER_HOUR


@pytest.fixture
def chain3(system):
    hour = system.get("hour")
    return EventStructure(
        ["R", "M", "L"],
        {
            ("R", "M"): [TCG(0, 2, hour)],
            ("M", "L"): [TCG(0, 2, hour)],
        },
    )


class TestChainPairs:
    def test_chain_structure_pairs(self, chain3):
        assert chain_pairs(chain3) == [("M", "L")]

    def test_diamond_pairs(self, figure_1a):
        pairs = set(chain_pairs(figure_1a))
        # X1/X3 and X2/X3 lie on common chains; X1/X2 never do.
        assert ("X1", "X3") in pairs or ("X2", "X3") in pairs
        assert ("X1", "X2") not in pairs


class TestScreenCandidatePairs:
    def _sequence(self):
        """Roots at days; 'good' pairs co-occur, 'bad' pairs never do."""
        events = []
        for i in range(8):
            base = i * D
            events.append(Event("r", base))
            events.append(Event("m-good", base + H))
            events.append(Event("l-good", base + 2 * H))
            # Distractors that individually pass depth-1 screening but
            # never appear in a *consistent* pair configuration:
            # m-bad always arrives too late for any l within 2 hours.
            events.append(Event("m-bad", base + 2 * H + 1800))
        return EventSequence(events)

    def test_pairs_screened_by_joint_frequency(self, system, chain3):
        sequence = self._sequence()
        ok, propagation = consistency_gate(chain3, system)
        assert ok
        roots = list(sequence.occurrence_indices("r"))
        survivors = {
            "M": {"m-good", "m-bad"},
            "L": {"l-good"},
        }
        allowed_pairs = screen_candidate_pairs(
            propagation,
            sequence,
            roots,
            len(roots),
            survivors,
            "r",
            min_confidence=0.5,
        )
        kept = allowed_pairs[("M", "L")]
        assert ("m-good", "l-good") in kept
        assert ("m-bad", "l-good") not in kept

    def test_large_pools_are_skipped(self, system, chain3):
        sequence = self._sequence()
        ok, propagation = consistency_gate(chain3, system)
        assert ok
        roots = list(sequence.occurrence_indices("r"))
        survivors = {
            "M": {"t%d" % i for i in range(30)},
            "L": {"t%d" % i for i in range(30)},
        }
        allowed_pairs = screen_candidate_pairs(
            propagation,
            sequence,
            roots,
            len(roots),
            survivors,
            "r",
            min_confidence=0.5,
            max_pair_candidates=100,
        )
        # 30 x 30 exceeds the cap: screening skips the pair (sound).
        assert ("M", "L") not in allowed_pairs

    def test_threshold_boundary(self, system, chain3):
        """Frequency must strictly exceed the threshold (paper: '>')."""
        sequence = self._sequence()
        ok, propagation = consistency_gate(chain3, system)
        roots = list(sequence.occurrence_indices("r"))
        survivors = {"M": {"m-good"}, "L": {"l-good"}}
        at_one = screen_candidate_pairs(
            propagation, sequence, roots, len(roots), survivors, "r", 1.0
        )
        assert at_one[("M", "L")] == set()  # 1.0 is not > 1.0
        just_below = screen_candidate_pairs(
            propagation, sequence, roots, len(roots), survivors, "r", 0.99
        )
        assert ("m-good", "l-good") in just_below[("M", "L")]
