"""Hypothesis-driven equivalence of naive and optimised discovery.

The mining layer's central invariant - Section 5's steps 1-4 never
change the solution set - checked over generated structures, candidate
restrictions and sequences, with hypothesis shrinking any divergence.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints import TCG, EventStructure
from repro.granularity import standard_system
from repro.mining import (
    EventDiscoveryProblem,
    EventSequence,
    discover,
    naive_discover,
)

SYSTEM = standard_system()
LABELS = ["hour", "day", "b-day"]


@st.composite
def discovery_cases(draw):
    # Small chain or fan structures keep the naive side fast.
    shape = draw(st.sampled_from(["chain2", "chain3", "fan"]))
    if shape == "chain2":
        names = ["R", "A"]
        arcs = [("R", "A")]
    elif shape == "chain3":
        names = ["R", "A", "B"]
        arcs = [("R", "A"), ("A", "B")]
    else:
        names = ["R", "A", "B"]
        arcs = [("R", "A"), ("R", "B")]
    constraints = {}
    for arc in arcs:
        label = draw(st.sampled_from(LABELS))
        m = draw(st.integers(min_value=0, max_value=2))
        span = draw(st.integers(min_value=0, max_value=3))
        constraints[arc] = [TCG(m, m + span, SYSTEM.get(label))]
    structure = EventStructure(names, constraints)
    types = ["t%d" % i for i in range(draw(st.integers(1, 3)))]
    slots = draw(
        st.lists(
            st.integers(min_value=0, max_value=12 * 24),  # 12 days, hourly
            min_size=3,
            max_size=25,
            unique=True,
        )
    )
    events = [
        ("r" if draw(st.booleans()) else draw(st.sampled_from(types)), s * 3600)
        for s in sorted(slots)
    ]
    confidence = draw(st.sampled_from([0.2, 0.5, 0.8]))
    problem = EventDiscoveryProblem(structure, confidence, "r")
    return problem, EventSequence(events)


class TestNaiveOptimisedEquivalenceHypothesis:
    @given(case=discovery_cases())
    @settings(max_examples=40, deadline=None)
    def test_solution_sets_identical(self, case):
        problem, sequence = case
        naive = naive_discover(problem, sequence, SYSTEM)
        for depth in (0, 1, 2):
            optimised = discover(problem, sequence, SYSTEM, screen_depth=depth)
            assert sorted(map(str, naive.solution_assignments())) == sorted(
                map(str, optimised.solution_assignments())
            ), (
                "depth %d diverged on %r / %r"
                % (depth, problem.structure, list(sequence))
            )

    @given(case=discovery_cases())
    @settings(max_examples=25, deadline=None)
    def test_frequencies_identical_for_solutions(self, case):
        problem, sequence = case
        naive = naive_discover(problem, sequence, SYSTEM)
        optimised = discover(problem, sequence, SYSTEM)
        naive_freqs = {
            str(sorted(cet.assignment.items())): freq
            for cet, freq in naive.frequencies.items()
        }
        for cet, freq in optimised.frequencies.items():
            key = str(sorted(cet.assignment.items()))
            assert naive_freqs[key] == pytest.approx(freq)
