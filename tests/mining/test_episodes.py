"""Tests for the MTV95-style serial-episode baseline, including the
paper's "same day is not 86400 seconds" discrimination argument."""

import pytest

from repro.constraints import TCG, ComplexEventType, EventStructure
from repro.automata.structmatch import occurs_at
from repro.granularity import day
from repro.granularity.gregorian import SECONDS_PER_DAY, SECONDS_PER_HOUR
from repro.mining import (
    Event,
    EventSequence,
    SerialEpisode,
    episode_frequency,
    frequent_serial_episodes,
    occurs_within,
)

D, H = SECONDS_PER_DAY, SECONDS_PER_HOUR


class TestSerialEpisode:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            SerialEpisode(())

    def test_prefix(self):
        episode = SerialEpisode(("a", "b", "c"))
        assert episode.prefix() == SerialEpisode(("a", "b"))
        assert len(episode) == 3
        assert str(episode) == "a -> b -> c"


class TestOccurrence:
    def test_in_order_within_window(self):
        seq = EventSequence([("a", 0), ("b", 100), ("c", 200)])
        assert occurs_within(seq, SerialEpisode(("a", "b", "c")), 0, 300)
        assert not occurs_within(seq, SerialEpisode(("a", "c", "b")), 0, 300)

    def test_window_excludes_late_events(self):
        seq = EventSequence([("a", 0), ("b", 500)])
        assert not occurs_within(seq, SerialEpisode(("a", "b")), 0, 100)
        assert occurs_within(seq, SerialEpisode(("a", "b")), 0, 500)

    def test_anchor_must_match_first_type(self):
        seq = EventSequence([("x", 0), ("b", 10)])
        assert not occurs_within(seq, SerialEpisode(("a", "b")), 0, 100)

    def test_frequency(self):
        seq = EventSequence(
            [("a", 0), ("b", 10), ("a", 100), ("a", 200), ("b", 205)]
        )
        frequency = episode_frequency(seq, SerialEpisode(("a", "b")), 50)
        assert frequency == pytest.approx(2 / 3)

    def test_frequency_no_anchor(self):
        seq = EventSequence([("b", 10)])
        assert episode_frequency(seq, SerialEpisode(("a", "b")), 50) == 0.0


class TestApriori:
    def test_finds_planted_episode(self):
        events = []
        for i in range(10):
            t0 = i * 1000
            events += [("a", t0), ("b", t0 + 100), ("c", t0 + 200)]
        seq = EventSequence(events)
        frequent = frequent_serial_episodes(
            seq, window_seconds=300, min_frequency=0.8, anchor_type="a"
        )
        assert SerialEpisode(("a", "b", "c")) in frequent

    def test_threshold_validation(self):
        seq = EventSequence([("a", 0)])
        with pytest.raises(ValueError):
            frequent_serial_episodes(seq, 100, min_frequency=2.0)

    def test_rare_suffix_pruned(self):
        events = [("a", i * 1000) for i in range(10)]
        events.append(("b", 50))  # follows only the first anchor
        seq = EventSequence(events)
        frequent = frequent_serial_episodes(
            seq, window_seconds=100, min_frequency=0.5, anchor_type="a"
        )
        assert SerialEpisode(("a", "b")) not in frequent
        assert SerialEpisode(("a",)) in frequent


class TestGranularityDiscrimination:
    """The paper's motivating example: 'same day' patterns cannot be
    expressed by any fixed-seconds window."""

    def _sequences(self):
        # Same-day pair: 08:00 -> 20:00 (12h apart, same day).
        same_day = EventSequence([("a", 8 * H), ("b", 20 * H)])
        # Cross-midnight pair: 23:00 -> 04:00 next day (5h apart).
        cross_midnight = EventSequence([("a", 23 * H), ("b", D + 4 * H)])
        return same_day, cross_midnight

    def test_tcg_separates_the_cases(self, system):
        structure = EventStructure(
            ["A", "B"], {("A", "B"): [TCG(0, 0, day())]}
        )
        cet = ComplexEventType(structure, {"A": "a", "B": "b"})
        same_day, cross_midnight = self._sequences()
        assert occurs_at(cet, same_day, 0)
        assert not occurs_at(cet, cross_midnight, 0)

    def test_no_window_separates_the_cases(self):
        """Any window accepting the same-day pair (12h apart) also
        accepts the cross-midnight pair (5h apart)."""
        episode = SerialEpisode(("a", "b"))
        same_day, cross_midnight = self._sequences()
        for window in (5 * H, 12 * H, 24 * H - 1, 24 * H):
            accepts_same_day = occurs_within(same_day, episode, 0, window)
            accepts_cross = occurs_within(cross_midnight, episode, 0, window)
            if accepts_same_day:
                assert accepts_cross, (
                    "window %d would separate the cases" % window
                )
