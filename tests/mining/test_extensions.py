"""Tests for the Section 6 extensions."""

import random

import pytest

from repro.automata import TagMatcher, build_tag
from repro.constraints import TCG, ComplexEventType, EventStructure
from repro.granularity import week
from repro.granularity.gregorian import SECONDS_PER_DAY, SECONDS_PER_HOUR
from repro.mining import (
    Event,
    EventDiscoveryProblem,
    EventSequence,
    TypeConstraint,
    constrained_assignments,
    discover_any_reference,
    tick_anchor_events,
    unroll,
    unrolled_assignment,
    with_anchors,
)

D, H = SECONDS_PER_DAY, SECONDS_PER_HOUR


class TestAnchorEvents:
    def test_week_anchors(self):
        anchors = tick_anchor_events(week(), 0, 21 * D)
        assert [e.time for e in anchors] == [0, 7 * D, 14 * D, 21 * D]
        assert all(e.etype == "@week" for e in anchors)

    def test_custom_name_and_window(self):
        anchors = tick_anchor_events(week(), D, 13 * D, etype="week-start")
        assert [e.time for e in anchors] == [7 * D]
        assert anchors[0].etype == "week-start"

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            tick_anchor_events(week(), 10, 5)

    def test_with_anchors_merges(self):
        sequence = EventSequence([("a", D), ("b", 8 * D)])
        merged = with_anchors(sequence, week())
        # Only week boundaries inside the span [D, 8D]: the 7D start.
        assert merged.count("@week") == 1
        assert merged.count("a") == 1

    def test_what_happens_in_most_weeks(self, system):
        """The paper's 'what happens in most of the weeks?' query: use
        week-start anchors as the reference type."""
        day = system.get("day")
        structure = EventStructure(
            ["W", "E"], {("W", "E"): [TCG(0, 2, day)]}
        )
        events = []
        for week_index in range(8):
            base = week_index * 7 * D
            if week_index != 3:  # one quiet week
                events.append(Event("standup", base + D + 9 * H))
        sequence = with_anchors(EventSequence(events), week())
        cet = ComplexEventType(structure, {"W": "@week", "E": "standup"})
        matcher = TagMatcher(build_tag(cet))
        total = sequence.count("@week")
        matched = matcher.count_occurrences(sequence)
        assert matched == total - 1  # all but the quiet week


class TestMultiReference:
    def test_union_of_references(self, system):
        hour = system.get("hour")
        structure = EventStructure(
            ["R", "F"], {("R", "F"): [TCG(0, 2, hour)]}
        )
        events = []
        # Every rise OR spike is followed by a 'follow' within 2 hours.
        for i, etype in enumerate(["rise", "spike", "rise", "spike"]):
            base = i * D
            events.append(Event(etype, base))
            events.append(Event("follow", base + H))
        sequence = EventSequence(events)
        results = discover_any_reference(
            structure,
            0.9,
            ["rise", "spike"],
            sequence,
            system,
            candidates={"F": frozenset(["follow"])},
        )
        assert results == {(("F", "follow"),): 1.0}

    def test_partial_coverage_counts_union(self, system):
        hour = system.get("hour")
        structure = EventStructure(
            ["R", "F"], {("R", "F"): [TCG(0, 2, hour)]}
        )
        events = [
            Event("rise", 0),
            Event("follow", H),
            Event("spike", D),  # no follower
        ]
        sequence = EventSequence(events)
        results = discover_any_reference(
            structure, 0.3, ["rise", "spike"], sequence, system,
            candidates={"F": frozenset(["follow"])},
        )
        assert results[(("F", "follow"),)] == pytest.approx(0.5)

    def test_empty_reference_set_rejected(self, system):
        structure = EventStructure(["R"], {})
        with pytest.raises(ValueError):
            discover_any_reference(
                structure, 0.5, [], EventSequence([]), system
            )


class TestTypeConstraints:
    def test_validation(self):
        with pytest.raises(ValueError):
            TypeConstraint("equal", ["a", "b"])
        with pytest.raises(ValueError):
            TypeConstraint("same", ["a"])

    def test_satisfaction(self):
        same = TypeConstraint("same", ["A", "B"])
        distinct = TypeConstraint("distinct", ["A", "B", "C"])
        assert same.is_satisfied({"A": "x", "B": "x"})
        assert not same.is_satisfied({"A": "x", "B": "y"})
        assert distinct.is_satisfied({"A": "x", "B": "y", "C": "z"})
        assert not distinct.is_satisfied({"A": "x", "B": "y", "C": "x"})

    def test_constrained_assignments(self, system):
        hour = system.get("hour")
        structure = EventStructure(
            ["R", "A", "B"],
            {
                ("R", "A"): [TCG(0, 2, hour)],
                ("R", "B"): [TCG(0, 2, hour)],
            },
        )
        sequence = EventSequence(
            [("r", 0), ("x", 10), ("y", 20)]
        )
        problem = EventDiscoveryProblem(structure, 0.1, "r")
        unconstrained = list(constrained_assignments(problem, sequence, []))
        same = list(
            constrained_assignments(
                problem, sequence, [TypeConstraint("same", ["A", "B"])]
            )
        )
        distinct = list(
            constrained_assignments(
                problem, sequence, [TypeConstraint("distinct", ["A", "B"])]
            )
        )
        assert len(unconstrained) == 9  # 3 types x 3 types
        assert len(same) == 3
        assert len(distinct) == 6
        assert all(a["A"] == a["B"] for a in same)
        assert all(a["A"] != a["B"] for a in distinct)

    def test_solvers_honour_problem_constraints(self, system):
        """Both solvers respect EventDiscoveryProblem.type_constraints
        and stay equivalent."""
        from repro.mining import discover, naive_discover

        hour = system.get("hour")
        structure = EventStructure(
            ["R", "A", "B"],
            {
                ("R", "A"): [TCG(0, 2, hour)],
                ("R", "B"): [TCG(0, 2, hour)],
            },
        )
        sequence = EventSequence(
            [("r", 0), ("x", 10), ("x", 20), ("r", D), ("x", D + 10), ("x", D + 20)]
        )
        same = EventDiscoveryProblem(
            structure,
            0.5,
            "r",
            type_constraints=(TypeConstraint("same", ["A", "B"]),),
        )
        distinct = EventDiscoveryProblem(
            structure,
            0.5,
            "r",
            type_constraints=(TypeConstraint("distinct", ["A", "B"]),),
        )
        same_naive = naive_discover(same, sequence, system)
        same_opt = discover(same, sequence, system)
        assert same_naive.solution_assignments() == [
            {"R": "r", "A": "x", "B": "x"}
        ]
        assert sorted(map(str, same_naive.solution_assignments())) == sorted(
            map(str, same_opt.solution_assignments())
        )
        # No two distinct types co-occur: the distinct variant is empty.
        assert naive_discover(distinct, sequence, system).solutions == []
        assert discover(distinct, sequence, system).solutions == []

    def test_problem_validates_constraint_variables(self, system):
        structure = EventStructure(["R"], {})
        with pytest.raises(ValueError):
            EventDiscoveryProblem(
                structure,
                0.5,
                "r",
                type_constraints=(TypeConstraint("same", ["R", "Z"]),),
            )

    def test_unknown_variable_rejected(self, system):
        structure = EventStructure(["R"], {})
        problem = EventDiscoveryProblem(structure, 0.1, "r")
        with pytest.raises(ValueError):
            list(
                constrained_assignments(
                    EventDiscoveryProblem(structure, 0.1, "r"),
                    EventSequence([("r", 0)]),
                    [TypeConstraint("same", ["R", "Z"])],
                )
            )


class TestUnroll:
    @pytest.fixture
    def base_structure(self, system):
        hour = system.get("hour")
        return EventStructure(
            ["A", "B"], {("A", "B"): [TCG(0, 2, hour)]}
        )

    def test_shapes(self, system, base_structure):
        day = system.get("day")
        unrolled = unroll(base_structure, 3, [TCG(1, 1, day)])
        assert unrolled.root == "A@0"
        assert len(unrolled.variables) == 6
        assert ("A@0", "A@1") in unrolled.constraints
        assert ("A@1", "A@2") in unrolled.constraints
        assert ("A@1", "B@1") in unrolled.constraints

    def test_single_copy_is_isomorphic(self, base_structure):
        unrolled = unroll(base_structure, 1, [])
        assert set(unrolled.variables) == {"A@0", "B@0"}

    def test_validation(self, system, base_structure):
        day = system.get("day")
        with pytest.raises(ValueError):
            unroll(base_structure, 0, [TCG(1, 1, day)])
        with pytest.raises(ValueError):
            unroll(base_structure, 2, [])

    def test_unrolled_assignment(self):
        assignment = unrolled_assignment({"A": "x", "B": "y"}, 2)
        assert assignment == {
            "A@0": "x",
            "B@0": "y",
            "A@1": "x",
            "B@1": "y",
        }

    def test_repetition_matching(self, system, base_structure):
        """Three daily repetitions of 'a then b within 2 hours'."""
        day = system.get("day")
        unrolled = unroll(base_structure, 3, [TCG(1, 1, day)])
        cet = ComplexEventType(
            unrolled, unrolled_assignment({"A": "a", "B": "b"}, 3)
        )
        matcher = TagMatcher(build_tag(cet))
        good = EventSequence(
            [
                ("a", 9 * H), ("b", 10 * H),
                ("a", D + 9 * H), ("b", D + 10 * H),
                ("a", 2 * D + 9 * H), ("b", 2 * D + 10 * H),
            ]
        )
        assert matcher.occurs_at(good, 0)
        broken = EventSequence(
            [
                ("a", 9 * H), ("b", 10 * H),
                ("a", D + 9 * H),  # second repetition misses its b
                ("a", 2 * D + 9 * H), ("b", 2 * D + 10 * H),
            ]
        )
        assert not matcher.occurs_at(broken, 0)
