"""Tests for the command-line interface."""

import json
import os

import pytest

from repro.cli import main
from repro.constraints import TCG, ComplexEventType, EventStructure
from repro.granularity import standard_system
from repro.granularity.gregorian import SECONDS_PER_DAY, SECONDS_PER_HOUR
from repro.io import (
    complex_event_type_to_dict,
    dump_json,
    problem_to_dict,
    structure_to_dict,
    write_events,
)
from repro.mining import EventDiscoveryProblem, EventSequence

D, H = SECONDS_PER_DAY, SECONDS_PER_HOUR


@pytest.fixture
def pair_structure(system):
    return EventStructure(
        ["A", "B"], {("A", "B"): [TCG(0, 0, system.get("day"))]}
    )


@pytest.fixture
def structure_file(tmp_path, pair_structure):
    path = str(tmp_path / "structure.json")
    dump_json(structure_to_dict(pair_structure), path)
    return path


@pytest.fixture
def pattern_file(tmp_path, pair_structure):
    cet = ComplexEventType(pair_structure, {"A": "login", "B": "logout"})
    path = str(tmp_path / "pattern.json")
    dump_json(complex_event_type_to_dict(cet), path)
    return path


@pytest.fixture
def events_file(tmp_path):
    sequence = EventSequence(
        [
            ("login", 8 * H),
            ("logout", 20 * H),          # same day -> match
            ("login", D + 23 * H),
            ("logout", 2 * D + 1 * H),   # crosses midnight -> no match
        ]
    )
    path = str(tmp_path / "events.csv")
    write_events(sequence, path)
    return path


class TestCheck:
    def test_consistent(self, structure_file, capsys):
        assert main(["check", structure_file]) == 0
        assert "CONSISTENT" in capsys.readouterr().out

    def test_verbose_prints_derived(self, structure_file, capsys):
        assert main(["check", structure_file, "-v"]) == 0
        out = capsys.readouterr().out
        assert "A -> B" in out

    def test_inconsistent(self, tmp_path, system, capsys):
        bad = EventStructure(
            ["A", "B"],
            {
                ("A", "B"): [
                    TCG(10, 10, system.get("day")),
                    TCG(0, 0, system.get("week")),
                ]
            },
        )
        path = str(tmp_path / "bad.json")
        dump_json(structure_to_dict(bad), path)
        assert main(["check", path]) == 1
        assert "INCONSISTENT" in capsys.readouterr().out


class TestMatch:
    def test_match_reports_bindings_and_frequency(
        self, pattern_file, events_file, capsys
    ):
        assert main(["match", pattern_file, events_file]) == 0
        out = capsys.readouterr().out
        assert "match at t=%d" % (8 * H) in out
        assert "1/2 login occurrences matched" in out
        assert "frequency 0.500" in out


class TestMine:
    def test_mine_finds_solution(
        self, tmp_path, pair_structure, events_file, capsys
    ):
        problem = EventDiscoveryProblem(pair_structure, 0.3, "login")
        path = str(tmp_path / "problem.json")
        dump_json(problem_to_dict(problem), path)
        assert main(["mine", path, events_file]) == 0
        out = capsys.readouterr().out
        solutions = [json.loads(line.split("  ", 1)[1])
                     for line in out.strip().splitlines() if "  " in line]
        assert {"A": "login", "B": "logout"} in solutions


class TestConvert:
    def test_convert_day_to_seconds(self, capsys):
        assert main(["convert", "0", "0", "day", "second"]) == 0
        assert "[0,86399]second" in capsys.readouterr().out

    def test_convert_with_expression(self, capsys):
        assert main(["convert", "1", "1", "group(month,3)", "month"]) == 0
        out = capsys.readouterr().out
        assert "3-month" in out and "month" in out

    def test_infeasible_conversion(self, capsys):
        assert main(["convert", "0", "1", "day", "b-day"]) == 1
        assert "no implied constraint" in capsys.readouterr().out

    def test_parse_error(self, capsys):
        assert main(["convert", "0", "1", "lunar(3)", "day"]) == 2


class TestErrorHandling:
    def test_missing_file_exits_2(self, capsys):
        assert main(["check", "/nonexistent/structure.json"]) == 2
        assert "file not found" in capsys.readouterr().err

    def test_malformed_json_exits_2(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        assert main(["check", str(path)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_payload_exits_2(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text('{"variables": ["A"]}')
        assert main(["check", str(path)]) == 2

    def test_bad_csv_exits_2(self, tmp_path, pattern_file, capsys):
        events = tmp_path / "bad.csv"
        # First row may pass as a header; the second row is malformed.
        events.write_text("event_type,timestamp\nonly-one-column\n")
        assert main(["match", pattern_file, str(events)]) == 2


class TestMineReport:
    def test_report_flag(self, tmp_path, pair_structure, events_file, capsys):
        problem = EventDiscoveryProblem(pair_structure, 0.3, "login")
        path = str(tmp_path / "problem.json")
        dump_json(problem_to_dict(problem), path)
        assert main(["mine", path, events_file, "--report"]) == 0
        out = capsys.readouterr().out
        assert "freq" in out and "anchors" in out


class TestParserRobustness:
    def test_no_command_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_help_paths(self, capsys):
        for args in (["--help"], ["mine", "--help"], ["convert", "--help"]):
            with pytest.raises(SystemExit) as excinfo:
                main(args)
            assert excinfo.value.code == 0
            assert capsys.readouterr().out

    def test_bad_screen_depth_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["mine", "p.json", "e.csv", "--screen-depth", "7"])


class TestAnalyze:
    def test_tightness_and_disjunctions(self, tmp_path, system, capsys):
        month = system.get("month")
        year = system.get("year")
        gadget = EventStructure(
            ["X0", "X1", "X2", "X3"],
            {
                ("X0", "X1"): [TCG(11, 11, month), TCG(0, 0, year)],
                ("X0", "X2"): [TCG(0, 12, month)],
                ("X2", "X3"): [TCG(11, 11, month), TCG(0, 0, year)],
            },
        )
        path = str(tmp_path / "gadget.json")
        dump_json(structure_to_dict(gadget), path)
        assert main(
            [
                "analyze",
                path,
                "--granularity",
                "month",
                "--window-days",
                "1098",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "X0 -> X2" in out
        assert "hidden disjunctions" in out
        assert "[0, 12]" in out

    def test_no_disjunctions_message(self, structure_file, capsys):
        assert main(
            ["analyze", structure_file, "--window-days", "30"]
        ) == 0
        assert "no hidden disjunctions" in capsys.readouterr().out


class TestGenerate:
    def test_generate_then_mine_roundtrip(
        self, tmp_path, pair_structure, pattern_file, capsys
    ):
        out_csv = str(tmp_path / "generated.csv")
        assert main(
            [
                "generate",
                pattern_file,
                out_csv,
                "--roots",
                "10",
                "--confidence",
                "1.0",
                "--seed",
                "3",
                "--noise",
                "chatter,ping",
            ]
        ) == 0
        # The generated log feeds straight back into `match`.
        assert main(["match", pattern_file, out_csv]) == 0
        out = capsys.readouterr().out
        assert "10/10 login occurrences matched" in out


class TestDot:
    def test_structure_dot(self, structure_file, capsys):
        assert main(["dot", structure_file]) == 0
        assert capsys.readouterr().out.startswith("digraph")

    def test_pattern_tag_dot(self, pattern_file, capsys):
        assert main(["dot", pattern_file, "--tag"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")
        assert "login" in out

    def test_pattern_structure_dot(self, pattern_file, capsys):
        assert main(["dot", pattern_file]) == 0
        assert '"A"' in capsys.readouterr().out


class TestGranInfo:
    def test_compiled_type_prints_normal_form(self, capsys):
        assert main(["gran", "info", "b-day"]) == 0
        out = capsys.readouterr().out
        assert "granularity: b-day" in out
        assert "normal form: scanned" in out
        assert "period: 5 ticks / 604800 seconds" in out
        assert "exact instant cover: yes" in out

    def test_structural_type(self, capsys):
        assert main(["gran", "info", "group(minute,15)"]) == 0
        out = capsys.readouterr().out
        assert "normal form: scanned" in out or "structural" in out
        assert "period:" in out

    def test_month_reports_gregorian_cycle(self, capsys):
        assert main(["gran", "info", "month"]) == 0
        out = capsys.readouterr().out
        assert "normal form: algebra" in out
        assert "compiled by: gregorian-cycle" in out
        assert "period: 4800 ticks / 12622780800 seconds" in out
        assert "exact instant cover: yes" in out

    def test_non_lowering_type_reports_sweep(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_NF_MAX_PERIOD", "16")
        assert main(["gran", "info", "month"]) == 0
        out = capsys.readouterr().out
        assert "normal form: none" in out
        assert "reason: over-budget" in out
        assert "backend: sweep" in out

    def test_backend_env_is_reported(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SIZETABLE", "compiled")
        assert main(["gran", "info", "second"]) == 0
        assert "REPRO_SIZETABLE=compiled" in capsys.readouterr().out

    def test_parse_error_exits_2(self, capsys):
        assert main(["gran", "info", "lunar(3)"]) == 2
        assert "error" in capsys.readouterr().err

    def test_invalid_backend_env_exits_2(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SIZETABLE", "turbo")
        assert main(["gran", "info", "second"]) == 2
        assert "error" in capsys.readouterr().err

    def test_missing_subcommand_exits(self):
        with pytest.raises(SystemExit):
            main(["gran"])


@pytest.fixture
def tenant_events_file(tmp_path):
    path = str(tmp_path / "tenants.csv")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(
            "tenant,event_type,timestamp,sequence_key\n"
            "acme,login,%d,web\n"
            "beta,login,%d,web\n"
            "acme,logout,%d,web\n"
            "beta,logout,%d,web\n"
            % (8 * H, 9 * H, 20 * H, D + H)
        )
    return path


class TestServe:
    @pytest.fixture(autouse=True)
    def _service_on(self, monkeypatch):
        # The CLI honours the kill switch, so pin the layer on; the
        # kill-switch test below overrides this per-test.
        monkeypatch.setenv("REPRO_SERVICE", "on")

    def test_routes_per_tenant(
        self, pattern_file, tenant_events_file, capsys
    ):
        assert main(["serve", pattern_file, tenant_events_file]) == 0
        captured = capsys.readouterr()
        # acme's pair lands on the same day; beta's crosses midnight.
        assert "acme/web#2: detected anchor t=%d" % (8 * H) in captured.out
        assert "beta" not in captured.out
        assert "tenants 2" in captured.err
        assert "detections 1" in captured.err

    def test_bad_row_exits_2_without_skip(
        self, pattern_file, tmp_path, capsys
    ):
        path = str(tmp_path / "tenants.csv")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("acme,login,%d\ngarbage-row\n" % (8 * H))
        assert main(["serve", pattern_file, path]) == 2
        assert "error" in capsys.readouterr().err

    def test_skip_bad_rows_quarantines(
        self, pattern_file, tmp_path, capsys
    ):
        path = str(tmp_path / "tenants.csv")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(
                "acme,login,%d\ngarbage-row\nacme,logout,%d\n"
                % (8 * H, 20 * H)
            )
        assert main(
            ["serve", pattern_file, path, "--skip-bad-rows"]
        ) == 0
        captured = capsys.readouterr()
        assert "acme/default#2: detected" in captured.out
        assert "quarantined 1 record(s)" in captured.err

    def test_kill_switch_exits_2(
        self, pattern_file, tenant_events_file, capsys, monkeypatch
    ):
        monkeypatch.setenv("REPRO_SERVICE", "off")
        assert main(["serve", pattern_file, tenant_events_file]) == 2
        assert "REPRO_SERVICE" in capsys.readouterr().err

    def test_checkpoint_dir_persists_sessions(
        self, pattern_file, tenant_events_file, tmp_path, capsys
    ):
        ckpt = str(tmp_path / "ckpt")
        assert main(
            [
                "serve", pattern_file, tenant_events_file,
                "--checkpoint-dir", ckpt, "--max-resident", "1",
            ]
        ) == 0
        captured = capsys.readouterr()
        assert "acme/web#2: detected" in captured.out
        assert os.path.isdir(ckpt) and os.listdir(ckpt)
